"""Content-addressed artifact cache for the compile service.

A cache *key* is the sha256 of everything that determines an allocation
result: the source text, the allocator name, the register count, the
schedule flag, the pipeline configuration, the wire-format version
(:data:`repro.interp.serialize.FORMAT_VERSION`), and a fingerprint of
the compiler's *own source code* (:func:`source_fingerprint`).  Two
requests with equal keys are guaranteed the same artifact bytes, so the
server can answer the second one without running a single compiler
stage — and, because the programs here take no runtime input, the
cached execution output is equally reusable.

The code fingerprint closes the stale-artifact hole for long-lived
deployments: the disk tier survives restarts, so without it a change
inside an allocator would silently reuse artifacts produced by the old
code.  Any edit to a ``.py`` file under ``src/repro`` changes every
key, which simply makes the persisted tier cold — the same degradation
semantics as a ``FORMAT_VERSION`` bump.

The store itself is a thread-safe LRU over a byte budget: entries are
charged ``len(blob) + len(canonical meta json)``, the least recently
*used* entry is evicted first, and hit/miss/eviction counters are
maintained for the server's ``stats`` endpoint and the load generator's
report.  With ``persist_dir`` set, every entry is also written to disk
as one JSON file per key; a restarted server finds them there on a
memory miss (eviction never deletes the disk copy — memory is the hot
tier, disk the warm one).  Persisted payloads from an older wire format
are ignored: a version bump simply makes the disk tier cold.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

from ..interp.serialize import FORMAT_VERSION
from ..resilience.pipeline import PipelineConfig

#: Default in-memory budget: generous for this repository's programs
#: (a serialized bench image is a few tens of KB).
DEFAULT_MAX_BYTES = 64 * 1024 * 1024

#: Memoized :func:`source_fingerprint` for the installed package tree.
_SOURCE_FINGERPRINT: Optional[str] = None


def source_fingerprint(root: Optional[str] = None) -> str:
    """A sha256 digest of the compiler's own source code.

    Hashes every ``.py`` file under ``root`` (default: the installed
    ``repro`` package directory) as ``relpath ‖ NUL ‖ bytes ‖ NUL`` in
    sorted path order, so the digest is stable across filesystems and
    walk orders but changes when any file's content, name, or location
    does.  The default-root digest is computed once per process — the
    code cannot change under a running server.
    """
    global _SOURCE_FINGERPRINT
    if root is None and _SOURCE_FINGERPRINT is not None:
        return _SOURCE_FINGERPRINT
    base = root or os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    hasher = hashlib.sha256()
    for dirpath, dirnames, filenames in os.walk(base):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(f for f in filenames if f.endswith(".py")):
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, base)
            hasher.update(rel.encode("utf-8"))
            hasher.update(b"\0")
            with open(path, "rb") as handle:
                hasher.update(handle.read())
            hasher.update(b"\0")
    digest = hasher.hexdigest()
    if root is None:
        _SOURCE_FINGERPRINT = digest
    return digest


def config_fingerprint(config: Optional[PipelineConfig]) -> Dict[str, Any]:
    """The pipeline-config portion of a cache key, as plain data.

    Every :class:`PipelineConfig` field participates: flipping any
    verification switch, the granularity, or the cycle budget must
    produce a different key (a cached artifact proven under different
    obligations is a different artifact).
    """
    return asdict(config or PipelineConfig())


def cache_key(
    source: str,
    allocator: str,
    k: int,
    schedule: bool = False,
    config: Optional[PipelineConfig] = None,
    code_fingerprint: Optional[str] = None,
) -> str:
    """``sha256(source ‖ allocator ‖ k ‖ schedule ‖ pipeline-config ‖
    code-fingerprint)``.

    ``code_fingerprint`` defaults to :func:`source_fingerprint` of the
    running package; tests pass an explicit value to simulate a code
    version bump without editing files.
    """
    payload = {
        "format": FORMAT_VERSION,
        "source": source,
        "allocator": allocator,
        "k": k,
        "schedule": bool(schedule),
        "config": config_fingerprint(config),
        "code": code_fingerprint or source_fingerprint(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheEntry:
    """One immutable cached artifact.

    ``blob`` is the canonical :func:`repro.interp.serialize.dumps_image`
    byte form of the allocated program image; ``meta`` carries everything
    else the server needs to answer without recompiling (allocator used,
    fallback events, execution output and counters, per-stage telemetry,
    the blob's own sha256).  Frozen on purpose: entries are shared across
    server worker threads, so nothing may mutate them after insertion.
    """

    key: str
    blob: bytes
    meta: Dict[str, Any]

    @property
    def size(self) -> int:
        return len(self.blob) + len(
            json.dumps(self.meta, sort_keys=True, separators=(",", ":"))
        )


class ArtifactCache:
    """Thread-safe content-addressed LRU store with optional disk tier."""

    def __init__(
        self,
        max_bytes: int = DEFAULT_MAX_BYTES,
        persist_dir: Optional[str] = None,
    ):
        self.max_bytes = max_bytes
        self.persist_dir = persist_dir
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0
        if persist_dir:
            os.makedirs(persist_dir, exist_ok=True)

    # -- lookup ---------------------------------------------------------------

    def get(self, key: str) -> Optional[CacheEntry]:
        """The entry for ``key``, or None (a miss).

        A memory hit refreshes LRU recency.  On a memory miss the disk
        tier (when configured) is consulted; a disk hit is promoted back
        into memory — possibly evicting colder entries — and counted as
        both a hit and a ``disk_hit``.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
            entry = self._load_persisted(key)
            if entry is not None:
                self._insert(entry)
                self.hits += 1
                self.disk_hits += 1
                return entry
            self.misses += 1
            return None

    # -- insertion ------------------------------------------------------------

    def put(self, key: str, blob: bytes, meta: Dict[str, Any]) -> CacheEntry:
        """Store an artifact; returns the (frozen) entry.

        Re-putting an existing key replaces the entry (last write wins —
        identical by construction, since the key covers every input).
        An entry larger than the whole budget is persisted to disk but
        not held in memory.
        """
        entry = CacheEntry(key, bytes(blob), dict(meta))
        with self._lock:
            self._persist(entry)
            if entry.size > self.max_bytes:
                old = self._entries.pop(key, None)
                if old is not None:
                    self._bytes -= old.size
                return entry
            self._insert(entry)
        return entry

    def _insert(self, entry: CacheEntry) -> None:
        old = self._entries.pop(entry.key, None)
        if old is not None:
            self._bytes -= old.size
        self._entries[entry.key] = entry
        self._bytes += entry.size
        while self._bytes > self.max_bytes and len(self._entries) > 1:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.size
            self.evictions += 1
        # A single entry over budget was rejected by put(); anything that
        # survives to this point fits.
        if self._bytes > self.max_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.size
            self.evictions += 1

    # -- the disk tier --------------------------------------------------------

    def _path(self, key: str) -> str:
        assert self.persist_dir is not None
        return os.path.join(self.persist_dir, f"{key}.json")

    def _persist(self, entry: CacheEntry) -> None:
        if not self.persist_dir:
            return
        document = {"meta": entry.meta, "image": entry.blob.decode("utf-8")}
        path = self._path(entry.key)
        tmp = f"{path}.tmp.{threading.get_ident()}"
        with open(tmp, "w") as handle:
            json.dump(document, handle, sort_keys=True)
        os.replace(tmp, path)  # atomic: readers see old or new, never torn

    def _load_persisted(self, key: str) -> Optional[CacheEntry]:
        if not self.persist_dir:
            return None
        path = self._path(key)
        if not os.path.exists(path):
            return None
        try:
            with open(path) as handle:
                document = json.load(handle)
            blob = document["image"].encode("utf-8")
            if json.loads(document["image"]).get("version") != FORMAT_VERSION:
                return None  # older wire format: cold, not corrupt
            return CacheEntry(key, blob, document["meta"])
        except (OSError, ValueError, KeyError):
            return None  # unreadable file == cache miss, never a crash

    # -- accounting -----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
                "evictions": self.evictions,
                "code_fingerprint": source_fingerprint(),
                "hit_rate": (
                    self.hits / (self.hits + self.misses)
                    if (self.hits + self.misses)
                    else 0.0
                ),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._bytes
