"""Content-addressed, shard-locked artifact cache for the compile service.

A cache *key* is the sha256 of everything that determines an allocation
result: the source text, the allocator name, the register count, the
schedule flag, the pipeline configuration, the wire-format version
(:data:`repro.interp.serialize.FORMAT_VERSION`), and a fingerprint of
the compiler's *own source code* (:func:`source_fingerprint`).  Two
requests with equal keys are guaranteed the same artifact bytes, so the
server can answer the second one without running a single compiler
stage — and, because the programs here take no runtime input, the
cached execution output is equally reusable.

The code fingerprint closes the stale-artifact hole for long-lived
deployments: the disk tier survives restarts, so without it a change
inside an allocator would silently reuse artifacts produced by the old
code.  Any edit to a ``.py`` file under ``src/repro`` changes every
key, which simply makes the persisted tier cold — the same degradation
semantics as a ``FORMAT_VERSION`` bump.

Sharding
--------

The store is split into :data:`~repro.service.defaults.CACHE_SHARDS`
independent shards routed by key prefix (the leading hex digits of the
sha256 key), each with its **own lock, LRU order, byte budget, and
counters**.  A single lock used to serialize the whole warm path:
every parent-side cache hit — the thing the service exists to make
fast — queued behind every other hit *and* behind disk-tier writes
happening under the same lock.  With per-shard locks, hits on
different shards never contend, and a cold ``put`` writing its disk
file blocks only the 1/N of the keyspace that hashes beside it.  The
byte budget divides evenly across shards, so eviction pressure is
local: each shard runs its own LRU over ``max_bytes / shards``.

Each shard is a thread-safe LRU over its byte budget: entries are
charged ``len(blob) + len(canonical meta json)``, the least recently
*used* entry is evicted first, and hit/miss/eviction counters are
maintained per shard and aggregated for the server's ``stats`` endpoint
and the load generator's report.  With ``persist_dir`` set, every entry
is also written to disk as one JSON file per key; a restarted server
finds them there on a memory miss (eviction never deletes the disk copy
— memory is the hot tier, disk the warm one).  Persisted payloads from
an older wire format are ignored: a version bump simply makes the disk
tier cold.

Miss observability
------------------

A miss rate alone cannot tell an operator *why* the cache is cold: a
fresh deploy (code-fingerprint churn), a config flip (pipeline-config
churn), and a genuinely new workload (source churn) all look identical.
When callers pass the key's *components* (:func:`key_components`) along
with the key, every miss is classified against what this cache has seen
before:

* ``code`` — the same (source, allocator, k, schedule, config) was
  cached under a **different code fingerprint**: a deploy made the
  tier cold, recompiles will warm it back;
* ``config`` — the same request was cached under a **different
  pipeline config**: someone flipped a verification switch or the
  granularity;
* ``source`` — this (source, parameters) combination has never been
  seen: workload churn, the miss is honest;
* ``corrupt`` — a disk-tier file for this key existed but failed its
  checksum (bit flip, truncation, torn write survived by the
  filesystem): the store healed itself by treating it as a miss, but
  the operator should know the disk is eating artifacts;
* ``unclassified`` — the caller did not supply components.

The breakdown is reported by :meth:`ArtifactCache.stats` under
``miss_kinds`` and surfaced by the server's ``stats`` op — see
docs/OPERATIONS.md for how to read it.  Classification state is
per-process (a restarted daemon starts with an empty history), which is
exactly the horizon an operator watching a live daemon cares about.

Disk-tier integrity
-------------------

Every persisted file carries a sha256 of its payload in the header
(``{"sha256": ..., "meta": ..., "image": ...}``), folded in at write
time.  A read recomputes and compares: a mismatch — or a file that no
longer parses — is a **classified ``corrupt`` miss**, never a crash and
never an ``unclassified`` one.  A cache constructed over a persist
directory also runs a **startup scrub**: every ``*.json`` file is
verified once, corrupt files are deleted (the replication layer above
re-supplies them; a corrupt file kept on disk would just re-fail every
read), and the result is reported under ``stats()["scrub"]``.  Files
written by an older format version fail the scrub as ``stale`` and are
left in place — stale is cold, not corrupt.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..interp.serialize import FORMAT_VERSION
from ..resilience.pipeline import PipelineConfig
from . import defaults

#: Default in-memory budget: generous for this repository's programs
#: (a serialized bench image is a few tens of KB).
DEFAULT_MAX_BYTES = defaults.CACHE_BYTES

#: Default shard count (single-sourced in repro.service.defaults).
DEFAULT_SHARDS = defaults.CACHE_SHARDS

#: Memoized :func:`source_fingerprint` for the installed package tree.
_SOURCE_FINGERPRINT: Optional[str] = None


def source_fingerprint(root: Optional[str] = None) -> str:
    """A sha256 digest of the compiler's own source code.

    Hashes every ``.py`` file under ``root`` (default: the installed
    ``repro`` package directory) as ``relpath ‖ NUL ‖ bytes ‖ NUL`` in
    sorted path order, so the digest is stable across filesystems and
    walk orders but changes when any file's content, name, or location
    does.  The default-root digest is computed once per process — the
    code cannot change under a running server.
    """
    global _SOURCE_FINGERPRINT
    if root is None and _SOURCE_FINGERPRINT is not None:
        return _SOURCE_FINGERPRINT
    base = root or os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    hasher = hashlib.sha256()
    for dirpath, dirnames, filenames in os.walk(base):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(f for f in filenames if f.endswith(".py")):
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, base)
            hasher.update(rel.encode("utf-8"))
            hasher.update(b"\0")
            with open(path, "rb") as handle:
                hasher.update(handle.read())
            hasher.update(b"\0")
    digest = hasher.hexdigest()
    if root is None:
        _SOURCE_FINGERPRINT = digest
    return digest


def config_fingerprint(config: Optional[PipelineConfig]) -> Dict[str, Any]:
    """The pipeline-config portion of a cache key, as plain data.

    Every :class:`PipelineConfig` field participates: flipping any
    verification switch, the granularity, or the cycle budget must
    produce a different key (a cached artifact proven under different
    obligations is a different artifact).
    """
    return asdict(config or PipelineConfig())


def _digest(payload: Any) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _document_digest(meta: Dict[str, Any], image: str) -> str:
    """The disk-tier integrity checksum: sha256 over the canonical JSON
    of the payload (meta + image), excluding the checksum field itself."""
    return _digest({"image": image, "meta": meta})


def verify_document(document: Any) -> Optional[str]:
    """Why a parsed disk-tier document cannot be served, or None if it
    can: ``"corrupt"`` (shape damage or checksum mismatch — the file
    does not say what it said when written) vs ``"stale"`` (written by
    an older format: pre-checksum header, or an older wire version —
    cold by design, not damaged)."""
    if not isinstance(document, dict):
        return "corrupt"
    meta = document.get("meta")
    image = document.get("image")
    recorded = document.get("sha256")
    if not isinstance(meta, dict) or not isinstance(image, str):
        return "corrupt"
    if recorded is None:
        return "stale"
    if _document_digest(meta, image) != recorded:
        return "corrupt"
    try:
        if json.loads(image).get("version") != FORMAT_VERSION:
            return "stale"
    except (ValueError, AttributeError):
        return "corrupt"
    return None


def key_components(
    source: str,
    allocator: str,
    k: int,
    schedule: bool = False,
    config: Optional[PipelineConfig] = None,
    code_fingerprint: Optional[str] = None,
) -> Dict[str, str]:
    """The cache key's inputs, each digested separately.

    Passed alongside the key to :meth:`ArtifactCache.get` so a miss can
    be attributed to the component that actually changed (source vs
    config vs code churn) instead of counting as an opaque miss.
    ``params`` folds together the request shape that is neither source
    nor config: allocator, k, schedule, and the wire-format version.
    """
    return {
        "source": _digest(source),
        "params": _digest(
            {
                "format": FORMAT_VERSION,
                "allocator": allocator,
                "k": k,
                "schedule": bool(schedule),
            }
        ),
        "config": _digest(config_fingerprint(config)),
        "code": code_fingerprint or source_fingerprint(),
    }


def cache_key(
    source: str,
    allocator: str,
    k: int,
    schedule: bool = False,
    config: Optional[PipelineConfig] = None,
    code_fingerprint: Optional[str] = None,
) -> str:
    """``sha256(source ‖ allocator ‖ k ‖ schedule ‖ pipeline-config ‖
    code-fingerprint)``.

    ``code_fingerprint`` defaults to :func:`source_fingerprint` of the
    running package; tests pass an explicit value to simulate a code
    version bump without editing files.
    """
    payload = {
        "format": FORMAT_VERSION,
        "source": source,
        "allocator": allocator,
        "k": k,
        "schedule": bool(schedule),
        "config": config_fingerprint(config),
        "code": code_fingerprint or source_fingerprint(),
    }
    return _digest(payload)


@dataclass(frozen=True)
class CacheEntry:
    """One immutable cached artifact.

    ``blob`` is the canonical :func:`repro.interp.serialize.dumps_image`
    byte form of the allocated program image; ``meta`` carries everything
    else the server needs to answer without recompiling (allocator used,
    fallback events, execution output and counters, per-stage telemetry,
    the blob's own sha256).  Frozen on purpose: entries are shared across
    server worker threads, so nothing may mutate them after insertion.
    """

    key: str
    blob: bytes
    meta: Dict[str, Any]

    @property
    def size(self) -> int:
        return len(self.blob) + len(
            json.dumps(self.meta, sort_keys=True, separators=(",", ":"))
        )


class _Shard:
    """One lock domain: an LRU memory tier over a private byte budget
    plus the shard's slice of the shared disk directory.  Keys never
    move between shards (routing is a pure function of the key), so no
    cross-shard coordination exists anywhere."""

    def __init__(self, max_bytes: int, persist_dir: Optional[str]):
        self.max_bytes = max_bytes
        self.persist_dir = persist_dir
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0
        self.corrupt = 0

    # -- lookup ---------------------------------------------------------------

    def get(self, key: str) -> Tuple[Optional[CacheEntry], Optional[str]]:
        """``(entry, miss_cause)``: the entry and None on a hit, or None
        and why the disk tier could not help (``"absent"`` / ``"stale"``
        / ``"corrupt"``) on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry, None
            entry, cause = self._load_persisted(key)
            if entry is not None:
                self._insert(entry)
                self.hits += 1
                self.disk_hits += 1
                return entry, None
            if cause == "corrupt":
                self.corrupt += 1
            self.misses += 1
            return None, cause

    def peek(self, key: str) -> Optional[CacheEntry]:
        """Memory-tier lookup with no side effects: no counter bump, no
        LRU refresh, no disk read.  The replication/drain machinery uses
        it to enumerate entries without distorting hit accounting."""
        with self._lock:
            return self._entries.get(key)

    def fetch(self, key: str) -> Optional[CacheEntry]:
        """Both tiers, no hit/miss accounting: the ``cache-get`` path.
        Replication reads are plumbing, not workload — they must not
        distort the hit-rate operators (and tests) reason about.  A
        corrupt disk file still counts ``corrupt`` (integrity is worth
        counting no matter who noticed), and a disk hit still promotes
        into memory (a replica asked for it; it is hot somewhere)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                return entry
            entry, cause = self._load_persisted(key)
            if entry is not None:
                self._insert(entry)
                return entry
            if cause == "corrupt":
                self.corrupt += 1
            return None

    # -- insertion ------------------------------------------------------------

    def put(self, key: str, blob: bytes, meta: Dict[str, Any]) -> CacheEntry:
        entry = CacheEntry(key, bytes(blob), dict(meta))
        with self._lock:
            self._persist(entry)
            if entry.size > self.max_bytes:
                old = self._entries.pop(key, None)
                if old is not None:
                    self._bytes -= old.size
                return entry
            self._insert(entry)
        return entry

    def _insert(self, entry: CacheEntry) -> None:
        old = self._entries.pop(entry.key, None)
        if old is not None:
            self._bytes -= old.size
        self._entries[entry.key] = entry
        self._bytes += entry.size
        while self._bytes > self.max_bytes and len(self._entries) > 1:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.size
            self.evictions += 1
        # A single entry over budget was rejected by put(); anything that
        # survives to this point fits.
        if self._bytes > self.max_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.size
            self.evictions += 1

    # -- the disk tier --------------------------------------------------------

    def _path(self, key: str) -> str:
        assert self.persist_dir is not None
        return os.path.join(self.persist_dir, f"{key}.json")

    def _persist(self, entry: CacheEntry) -> None:
        if not self.persist_dir:
            return
        image = entry.blob.decode("utf-8")
        document = {
            "sha256": _document_digest(entry.meta, image),
            "meta": entry.meta,
            "image": image,
        }
        path = self._path(entry.key)
        tmp = f"{path}.tmp.{threading.get_ident()}"
        with open(tmp, "w") as handle:
            json.dump(document, handle, sort_keys=True)
        os.replace(tmp, path)  # atomic: readers see old or new, never torn

    def _load_persisted(
        self, key: str
    ) -> Tuple[Optional[CacheEntry], Optional[str]]:
        """``(entry, miss_cause)``; causes mirror :func:`verify_document`."""
        if not self.persist_dir:
            return None, "absent"
        path = self._path(key)
        if not os.path.exists(path):
            return None, "absent"
        try:
            with open(path) as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            # Truncated or bit-flipped beyond parsing: corrupt, and the
            # store must say so — never a crash, never "unclassified".
            return None, "corrupt"
        cause = verify_document(document)
        if cause is not None:
            return None, cause
        blob = document["image"].encode("utf-8")
        return CacheEntry(key, blob, document["meta"]), None

    # -- accounting -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
                "evictions": self.evictions,
                "corrupt": self.corrupt,
            }

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop every memory-tier entry (disk files stay).  Counters are
        kept: a wipe is an event in a cache's life, not a new cache."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._bytes


class ArtifactCache:
    """Thread-safe content-addressed store: ``shards`` independent LRU
    shards (per-shard locks and byte budgets) over an optional shared
    disk tier, with per-component miss classification.

    ``max_bytes`` is the *total* memory budget, divided evenly across
    shards; ``shards=1`` recovers the historical single-lock behavior
    (one global LRU order), which some accounting tests rely on.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_MAX_BYTES,
        persist_dir: Optional[str] = None,
        shards: int = DEFAULT_SHARDS,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.max_bytes = max_bytes
        self.persist_dir = persist_dir
        self.shards = shards
        if persist_dir:
            os.makedirs(persist_dir, exist_ok=True)
        per_shard = max(1, max_bytes // shards)
        self._shards = [_Shard(per_shard, persist_dir) for _ in range(shards)]
        # Miss-classification history: tiny dict lookups under a
        # dedicated lock — never held across disk IO or shard work.
        self._ident_lock = threading.Lock()
        self._code_by_ident: Dict[str, str] = {}
        self._config_by_ident: Dict[str, str] = {}
        self._miss_kinds = {
            "source": 0,
            "config": 0,
            "code": 0,
            "corrupt": 0,
            "unclassified": 0,
        }
        self._scrub = self.scrub() if persist_dir else None

    # -- shard routing --------------------------------------------------------

    def shard_of(self, key: str) -> int:
        """The shard index for ``key``: its leading hex digits modulo
        the shard count.  Non-hex keys (tests, ad-hoc callers) fall
        back to hashing the whole key — still a pure function."""
        try:
            value = int(key[:8], 16)
        except ValueError:
            value = int.from_bytes(
                hashlib.sha256(key.encode("utf-8")).digest()[:4], "big"
            )
        return value % self.shards

    def _shard(self, key: str) -> _Shard:
        return self._shards[self.shard_of(key)]

    # -- lookup ---------------------------------------------------------------

    def get(
        self, key: str, components: Optional[Dict[str, str]] = None
    ) -> Optional[CacheEntry]:
        """The entry for ``key``, or None (a miss).

        A memory hit refreshes the shard's LRU recency.  On a memory
        miss the disk tier (when configured) is consulted; a disk hit
        is promoted back into memory — possibly evicting colder entries
        of the same shard — and counted as both a hit and a
        ``disk_hit``.  ``components`` (from :func:`key_components`)
        lets a miss be classified by the input that changed; a disk file
        that failed its checksum classifies as ``corrupt`` regardless.
        """
        entry, cause = self._shard(key).get(key)
        if entry is None:
            kind = (
                "corrupt"
                if cause == "corrupt"
                else self._classify_miss(components)
            )
            with self._ident_lock:
                self._miss_kinds[kind] += 1
        return entry

    def peek(self, key: str) -> Optional[CacheEntry]:
        """Side-effect-free memory-tier lookup (no counters, no LRU
        refresh, no disk promotion) — see :meth:`_Shard.peek`."""
        return self._shard(key).peek(key)

    def fetch(self, key: str) -> Optional[CacheEntry]:
        """Both tiers, without hit/miss accounting — the replication
        read path (see :meth:`_Shard.fetch`)."""
        return self._shard(key).fetch(key)

    # -- insertion ------------------------------------------------------------

    def put(
        self,
        key: str,
        blob: bytes,
        meta: Dict[str, Any],
        components: Optional[Dict[str, str]] = None,
    ) -> CacheEntry:
        """Store an artifact; returns the (frozen) entry.

        Re-putting an existing key replaces the entry (last write wins —
        identical by construction, since the key covers every input).
        An entry larger than its shard's budget is persisted to disk but
        not held in memory.  ``components`` feed the miss-classification
        history so later misses can be attributed.
        """
        if components is not None:
            self._record_components(components)
        return self._shard(key).put(key, blob, meta)

    # -- miss classification --------------------------------------------------

    @staticmethod
    def _idents(components: Dict[str, str]) -> Any:
        base = components["source"] + "\0" + components["params"]
        return (
            base + "\0" + components["config"],  # identity sans code
            base + "\0" + components["code"],  # identity sans config
        )

    def _record_components(self, components: Dict[str, str]) -> None:
        ident_sans_code, ident_sans_config = self._idents(components)
        with self._ident_lock:
            self._code_by_ident[ident_sans_code] = components["code"]
            self._config_by_ident[ident_sans_config] = components["config"]

    def _classify_miss(self, components: Optional[Dict[str, str]]) -> str:
        if components is None:
            return "unclassified"
        ident_sans_code, ident_sans_config = self._idents(components)
        with self._ident_lock:
            known_code = self._code_by_ident.get(ident_sans_code)
            if known_code is not None and known_code != components["code"]:
                return "code"
            known_config = self._config_by_ident.get(ident_sans_config)
            if (
                known_config is not None
                and known_config != components["config"]
            ):
                return "config"
        return "source"

    # -- the startup scrub ----------------------------------------------------

    def scrub(self) -> Dict[str, int]:
        """Verify every persisted artifact file once, deleting corrupt
        ones (a corrupt file would re-fail every future read; deleting
        it lets the replication tier above re-supply the key).  Returns
        the tally: ``scanned`` / ``ok`` / ``stale`` (older format, left
        in place — cold, not damaged) / ``corrupt`` (deleted).
        Automatically run by the constructor when ``persist_dir`` is
        set; callable again for a live re-scan (the result replaces the
        ``scrub`` block in :meth:`stats`)."""
        tally = {"scanned": 0, "ok": 0, "stale": 0, "corrupt": 0}
        if not self.persist_dir:
            return tally
        try:
            names = sorted(os.listdir(self.persist_dir))
        except OSError:
            return tally
        for name in names:
            # Artifact files live at ``<sha256-hex>.json``; anything
            # else in the directory (``quarantine.json``, tmp files
            # mid-replace) is a sidecar, not ours to judge or delete.
            stem, dot, ext = name.partition(".")
            if ext != "json" or len(stem) != 64 or any(
                c not in "0123456789abcdef" for c in stem
            ):
                continue
            path = os.path.join(self.persist_dir, name)
            tally["scanned"] += 1
            try:
                with open(path) as handle:
                    document = json.load(handle)
                cause = verify_document(document)
            except (OSError, ValueError):
                cause = "corrupt"
            if cause is None:
                tally["ok"] += 1
            elif cause == "stale":
                tally["stale"] += 1
            else:
                tally["corrupt"] += 1
                try:
                    os.remove(path)
                except OSError:
                    pass
        self._scrub = tally
        return tally

    # -- accounting -----------------------------------------------------------

    @property
    def hits(self) -> int:
        return sum(shard.hits for shard in self._shards)

    @property
    def misses(self) -> int:
        return sum(shard.misses for shard in self._shards)

    @property
    def evictions(self) -> int:
        return sum(shard.evictions for shard in self._shards)

    @property
    def disk_hits(self) -> int:
        return sum(shard.disk_hits for shard in self._shards)

    def miss_kinds(self) -> Dict[str, int]:
        with self._ident_lock:
            return dict(self._miss_kinds)

    def keys(self) -> List[str]:
        """Every key currently held in memory, across all shards."""
        return [key for shard in self._shards for key in shard.keys()]

    def clear(self) -> None:
        """Drop the whole memory tier (persisted files stay on disk) —
        an operator reset, and the test harness's simulated cold cache."""
        for shard in self._shards:
            shard.clear()

    def stats(self) -> Dict[str, Any]:
        snapshots = [shard.snapshot() for shard in self._shards]
        totals = {
            field: sum(snap[field] for snap in snapshots)
            for field in ("entries", "bytes", "hits", "misses", "disk_hits",
                          "evictions", "corrupt")
        }
        hits, misses = totals["hits"], totals["misses"]
        stats = {
            **totals,
            "max_bytes": self.max_bytes,
            "shard_count": self.shards,
            "shards": snapshots,
            "miss_kinds": self.miss_kinds(),
            "code_fingerprint": source_fingerprint(),
            "hit_rate": hits / (hits + misses) if (hits + misses) else 0.0,
        }
        if self._scrub is not None:
            stats["scrub"] = dict(self._scrub)
        return stats

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    @property
    def total_bytes(self) -> int:
        return sum(shard.total_bytes for shard in self._shards)
