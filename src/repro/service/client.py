"""Client library for the compile service, and ``python -m repro request``.

:class:`ServiceClient` holds one TCP connection and speaks the JSON-lines
protocol of :mod:`repro.service.server`.  Failed requests raise
:class:`ServiceError`; when the failure was a pipeline stage, the thawed
:class:`~repro.resilience.errors.StageError` (correct subclass included)
rides on ``ServiceError.stage_error``, so callers can inspect the remote
stage/allocator/k context exactly as if the pipeline had run in-process.

Protocol-level failures are typed too — nothing below the JSON layer
escapes raw:

* ``transport`` — the connection died (reset, refused, closed mid-read);
* ``timeout`` — the socket timed out waiting for the response;
* ``protocol`` — the server answered, but not with parseable JSON.

Retry semantics
---------------

``ServiceClient(retries=N, backoff=B)`` retries *safe* failures up to N
times with exponential backoff and jitter (delay ~ ``B * 2**attempt``,
jittered).  Safe means the request can be replayed without changing the
outcome — true for every compile because artifacts are content-addressed
and compiles are idempotent: replaying a request that actually succeeded
server-side just hits the cache.  Retried failures are connection
establishment, ``transport``/``timeout`` protocol failures (with an
automatic reconnect), and the server-side kinds in
:data:`RETRYABLE_KINDS` (``admission`` — the queue was momentarily full;
``worker-crash`` — the worker died, possibly through no fault of the
request).  ``worker-timeout`` and ``poison-pill`` are deliberately *not*
retried: the server has evidence the request itself is pathological.
``replica-miss`` is not retried either — it is not a failure at all but
the router replication protocol's "this backend is cold" answer to a
``warm_only`` probe, and only the router should ever see it.
"""

from __future__ import annotations

import argparse
import json
import random
import socket
import sys
import time
from typing import Any, Dict, Optional

from ..resilience.errors import StageError
from . import defaults

_PIPELINE_KINDS = {
    "stage",
    "miscompile",
    "motion-validation",
    "schedule-validation",
    "peephole-validation",
}

#: Server-answered error kinds that are safe to retry: transient
#: conditions where replaying an idempotent compile can succeed.
#: ``no-backend`` is the router's "every ring node was down" answer —
#: retried because backends respawn/recover underneath a live router.
RETRYABLE_KINDS = frozenset({"admission", "worker-crash", "no-backend"})

#: Client-synthesized kinds for failures below the response layer.
_CONNECTION_KINDS = frozenset({"transport", "timeout"})


class ServiceError(Exception):
    """A failed request, server-answered or protocol-level.

    ``kind`` is the frozen payload's kind — ``admission`` / ``deadline``
    / ``request`` / ``worker-crash`` / ``worker-timeout`` /
    ``poison-pill`` for service-level failures, a pipeline kind for
    stage failures, or the client-synthesized ``transport`` /
    ``timeout`` / ``protocol`` when the failure happened below the
    response layer.  ``stage_error`` is the thawed exception for
    pipeline kinds, None otherwise; ``payload`` is the raw error
    object.
    """

    def __init__(self, payload: Dict[str, Any]):
        self.payload = payload
        self.kind = payload.get("kind", "unknown")
        self.stage_error: Optional[StageError] = None
        if self.kind in _PIPELINE_KINDS:
            try:
                self.stage_error = StageError.thaw(payload)
            except (KeyError, TypeError):
                pass
        super().__init__(
            str(self.stage_error)
            if self.stage_error is not None
            else f"[{self.kind}] {payload.get('message', '')}"
        )

    @property
    def retryable(self) -> bool:
        """True when replaying the (idempotent) request may succeed."""
        return self.kind in RETRYABLE_KINDS or self.kind in _CONNECTION_KINDS


def _protocol_error(kind: str, message: str) -> ServiceError:
    return ServiceError(
        {
            "kind": kind,
            "message": message,
            "context": {"stage": kind},
            "cause": None,
        }
    )


class ServiceClient:
    """One connection to the daemon; usable as a context manager.

    ``retries``/``backoff`` arm the retry loop in :meth:`checked` (and
    everything built on it) — see the module docstring for which
    failures are replayed.  ``retries=0`` (the default) keeps the
    historical fail-fast behavior.
    """

    def __init__(self, host: str = defaults.HOST, port: int = defaults.PORT,
                 timeout: float = defaults.CLIENT_TIMEOUT_S,
                 retries: int = defaults.CLIENT_RETRIES,
                 backoff: float = defaults.CLIENT_BACKOFF_S):
        self._host = host
        self._port = port
        self._timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._connect()

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        self._file = self._sock.makefile("rwb")

    def _reconnect(self) -> None:
        self.close()
        self._connect()

    def close(self) -> None:
        if self._file is None:
            return
        try:
            self._file.close()
        except OSError:
            pass
        finally:
            self._file = None
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- raw protocol ---------------------------------------------------------

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object, return the raw response object.

        Never raises a raw socket/JSON error: failures below the
        response layer surface as :class:`ServiceError` with the typed
        kinds ``transport`` (connection died), ``timeout`` (socket
        timeout), or ``protocol`` (unparseable response line).
        """
        if self._file is None:
            raise _protocol_error("transport", "client is closed")
        try:
            self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
            self._file.flush()
            line = self._file.readline()
        except socket.timeout as err:
            raise _protocol_error(
                "timeout", f"no response within {self._timeout:g}s"
            ) from err
        except (ConnectionError, OSError) as err:
            raise _protocol_error(
                "transport", f"connection failed: {err}"
            ) from err
        if not line:
            raise _protocol_error(
                "transport", "server closed the connection"
            )
        try:
            return json.loads(line.decode("utf-8"))
        except ValueError as err:
            raise _protocol_error(
                "protocol", f"unparseable response line: {err}"
            ) from err

    def _checked_once(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        response = self.request(payload)
        if not response.get("ok"):
            raise ServiceError(response.get("error") or {})
        return response

    def checked(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Like :meth:`request`, but raises :class:`ServiceError` on
        ``ok: false`` responses — retrying retryable failures up to
        ``self.retries`` times with exponential backoff + jitter."""
        attempt = 0
        while True:
            try:
                return self._checked_once(payload)
            except ServiceError as err:
                if not err.retryable or attempt >= self.retries:
                    raise
                if err.kind in _CONNECTION_KINDS:
                    try:
                        self._reconnect()
                    except OSError as reconnect_err:
                        if attempt + 1 >= self.retries:
                            raise _protocol_error(
                                "transport",
                                f"reconnect failed: {reconnect_err}",
                            ) from reconnect_err
                delay = self.backoff * (2 ** attempt)
                time.sleep(delay * (0.5 + random.random()))  # full-ish jitter
                attempt += 1

    # -- operations -----------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("ok"))

    def stats(self) -> Dict[str, Any]:
        return self.checked({"op": "stats"})

    def cache_get(self, key: str) -> Dict[str, Any]:
        """Fetch raw artifact bytes by cache key (``replica-miss`` when
        the backend does not hold them) — the replication read op."""
        return self.checked({"op": "cache-get", "key": key})

    def cache_put(
        self, key: str, blob: str, meta: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Install raw artifact bytes under ``key`` without compiling —
        the replication write op.  The backend refuses blobs that do not
        match ``meta["image_sha256"]``."""
        return self.checked(
            {"op": "cache-put", "key": key, "blob": blob, "meta": meta}
        )

    def cache_keys(self) -> Dict[str, Any]:
        """Enumerate the backend's memory-tier artifact keys (with
        routing affinity and byte size) — what a drain streams."""
        return self.checked({"op": "cache-keys"})

    def compile(
        self,
        source: str,
        allocator: str = defaults.ALLOCATOR,
        k: int = defaults.K,
        schedule: bool = False,
        execute: bool = True,
        entry: str = "main",
        deadline_ms: Optional[float] = None,
        max_cycles: Optional[int] = None,
        filename: Optional[str] = None,
        chaos: Optional[str] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "op": "compile",
            "source": source,
            "allocator": allocator,
            "k": k,
            "schedule": schedule,
            "execute": execute,
            "entry": entry,
        }
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if max_cycles is not None:
            payload["max_cycles"] = max_cycles
        if filename is not None:
            payload["filename"] = filename
        if chaos is not None:
            payload["chaos"] = chaos
        return self.checked(payload)


def connect_with_retry(
    host: str,
    port: int,
    timeout: float = defaults.CLIENT_TIMEOUT_S,
    retries: int = defaults.CLIENT_RETRIES,
    backoff: float = defaults.CLIENT_BACKOFF_S,
) -> ServiceClient:
    """Build a :class:`ServiceClient`, retrying connection establishment
    itself — for clients racing a daemon that is still binding its port
    (the chaos harness, CI smoke jobs)."""
    attempt = 0
    while True:
        try:
            return ServiceClient(
                host, port, timeout=timeout, retries=retries, backoff=backoff
            )
        except OSError as err:
            if attempt >= retries:
                raise _protocol_error(
                    "transport", f"cannot connect to {host}:{port}: {err}"
                ) from err
            delay = backoff * (2 ** attempt)
            time.sleep(delay * (0.5 + random.random()))
            attempt += 1


def build_request_parser() -> argparse.ArgumentParser:
    """The ``repro request`` argument parser (defaults single-sourced in
    :mod:`repro.service.defaults`; see :func:`..server.build_serve_parser`
    for why this is a factory)."""
    parser = argparse.ArgumentParser(
        prog="repro request", description="send one compile request"
    )
    parser.add_argument("file", help="Mini-C source file")
    parser.add_argument("--host", default=defaults.HOST)
    parser.add_argument("--port", type=int, default=defaults.PORT)
    parser.add_argument(
        "--allocator",
        choices=("gra", "rap", "ssaspill", "linearscan", "spillall"),
        default=defaults.ALLOCATOR,
    )
    parser.add_argument("-k", type=int, default=defaults.K)
    parser.add_argument("--schedule", action="store_true")
    parser.add_argument("--no-execute", action="store_true")
    parser.add_argument("--deadline-ms", type=float, default=None)
    parser.add_argument("--entry", default="main")
    parser.add_argument(
        "--retries", type=int, default=defaults.CLIENT_RETRIES,
        help="retry transient failures (admission, worker-crash, "
             "no-backend, transport) this many times",
    )
    parser.add_argument(
        "--backoff", type=float, default=defaults.CLIENT_BACKOFF_S,
        help="base retry delay in seconds (doubles per attempt, jittered)",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the raw response object"
    )
    return parser


def request_main(argv: Optional[Any] = None) -> int:
    """``python -m repro request FILE``: one compile against a daemon."""
    args = build_request_parser().parse_args(argv)

    with open(args.file) as handle:
        source = handle.read()
    try:
        with connect_with_retry(
            args.host, args.port, retries=args.retries, backoff=args.backoff
        ) as client:
            response = client.compile(
                source,
                allocator=args.allocator,
                k=args.k,
                schedule=args.schedule,
                execute=not args.no_execute,
                entry=args.entry,
                deadline_ms=args.deadline_ms,
                filename=args.file,
            )
    except ServiceError as err:
        if err.stage_error is not None:
            print(err.stage_error.render(), file=sys.stderr)
        else:
            print(f"error: {err}", file=sys.stderr)
        return 1
    except OSError as err:
        print(f"error: cannot reach service: {err}", file=sys.stderr)
        return 1

    if args.json:
        json.dump(response, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    for value in response.get("output", []):
        print(value)
    summary = (
        f"{response['allocator_used']} k={response['k']}"
        f" cache={response['cache']}"
        f" wall={response['wall_ms']:.1f}ms"
        f" image={response['image_sha256'][:12]}"
    )
    if "cycles" in response:
        summary += f" cycles={response['cycles']}"
    print(summary, file=sys.stderr)
    if response.get("fallbacks"):
        for event in response["fallbacks"]:
            print(
                f"fallback: {event['allocator']} failed at "
                f"{event['stage']}: {event['reason']}",
                file=sys.stderr,
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(request_main())
