"""Client library for the compile service, and ``python -m repro request``.

:class:`ServiceClient` holds one TCP connection and speaks the JSON-lines
protocol of :mod:`repro.service.server`.  Failed requests raise
:class:`ServiceError`; when the failure was a pipeline stage, the thawed
:class:`~repro.resilience.errors.StageError` (correct subclass included)
rides on ``ServiceError.stage_error``, so callers can inspect the remote
stage/allocator/k context exactly as if the pipeline had run in-process.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
from typing import Any, Dict, Optional

from ..resilience.errors import StageError

_PIPELINE_KINDS = {
    "stage",
    "miscompile",
    "motion-validation",
    "schedule-validation",
    "peephole-validation",
}


class ServiceError(Exception):
    """A request the server answered with ``ok: false``.

    ``kind`` is the frozen payload's kind (``admission`` / ``deadline`` /
    ``request`` for service-level failures, or a pipeline kind);
    ``stage_error`` is the thawed exception for pipeline kinds, None
    otherwise; ``payload`` is the raw error object.
    """

    def __init__(self, payload: Dict[str, Any]):
        self.payload = payload
        self.kind = payload.get("kind", "unknown")
        self.stage_error: Optional[StageError] = None
        if self.kind in _PIPELINE_KINDS:
            try:
                self.stage_error = StageError.thaw(payload)
            except (KeyError, TypeError):
                pass
        super().__init__(
            str(self.stage_error)
            if self.stage_error is not None
            else f"[{self.kind}] {payload.get('message', '')}"
        )


class ServiceClient:
    """One connection to the daemon; usable as a context manager."""

    def __init__(self, host: str = "127.0.0.1", port: int = 9363,
                 timeout: float = 600.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- raw protocol ---------------------------------------------------------

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object, return the raw response object."""
        self._file.write(json.dumps(payload).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line.decode("utf-8"))

    def checked(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Like :meth:`request`, but raises :class:`ServiceError` on
        ``ok: false`` responses."""
        response = self.request(payload)
        if not response.get("ok"):
            raise ServiceError(response.get("error") or {})
        return response

    # -- operations -----------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("ok"))

    def stats(self) -> Dict[str, Any]:
        return self.checked({"op": "stats"})

    def compile(
        self,
        source: str,
        allocator: str = "rap",
        k: int = 5,
        schedule: bool = False,
        execute: bool = True,
        entry: str = "main",
        deadline_ms: Optional[float] = None,
        max_cycles: Optional[int] = None,
        filename: Optional[str] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "op": "compile",
            "source": source,
            "allocator": allocator,
            "k": k,
            "schedule": schedule,
            "execute": execute,
            "entry": entry,
        }
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if max_cycles is not None:
            payload["max_cycles"] = max_cycles
        if filename is not None:
            payload["filename"] = filename
        return self.checked(payload)


def request_main(argv: Optional[Any] = None) -> int:
    """``python -m repro request FILE``: one compile against a daemon."""
    parser = argparse.ArgumentParser(
        prog="repro request", description="send one compile request"
    )
    parser.add_argument("file", help="Mini-C source file")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9363)
    parser.add_argument(
        "--allocator",
        choices=("gra", "rap", "linearscan", "spillall"),
        default="rap",
    )
    parser.add_argument("-k", type=int, default=5)
    parser.add_argument("--schedule", action="store_true")
    parser.add_argument("--no-execute", action="store_true")
    parser.add_argument("--deadline-ms", type=float, default=None)
    parser.add_argument("--entry", default="main")
    parser.add_argument(
        "--json", action="store_true", help="print the raw response object"
    )
    args = parser.parse_args(argv)

    with open(args.file) as handle:
        source = handle.read()
    try:
        with ServiceClient(args.host, args.port) as client:
            response = client.compile(
                source,
                allocator=args.allocator,
                k=args.k,
                schedule=args.schedule,
                execute=not args.no_execute,
                entry=args.entry,
                deadline_ms=args.deadline_ms,
                filename=args.file,
            )
    except ServiceError as err:
        if err.stage_error is not None:
            print(err.stage_error.render(), file=sys.stderr)
        else:
            print(f"error: {err}", file=sys.stderr)
        return 1
    except OSError as err:
        print(f"error: cannot reach service: {err}", file=sys.stderr)
        return 1

    if args.json:
        json.dump(response, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    for value in response.get("output", []):
        print(value)
    summary = (
        f"{response['allocator_used']} k={response['k']}"
        f" cache={response['cache']}"
        f" wall={response['wall_ms']:.1f}ms"
        f" image={response['image_sha256'][:12]}"
    )
    if "cycles" in response:
        summary += f" cycles={response['cycles']}"
    print(summary, file=sys.stderr)
    if response.get("fallbacks"):
        for event in response["fallbacks"]:
            print(
                f"fallback: {event['allocator']} failed at "
                f"{event['stage']}: {event['reason']}",
                file=sys.stderr,
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(request_main())
