"""Compile-as-a-service: a long-lived compile-and-execute daemon.

The rest of the repository is batch-shaped: every ``python -m repro run``
pays the interpreter start-up, parse, semantic analysis, PDG build, and
allocation from scratch.  This package keeps one warm process around
instead:

* :mod:`repro.service.cache` — a content-addressed artifact store.
  Results are keyed on ``sha256(source ‖ allocator ‖ k ‖ schedule ‖
  pipeline-config)``, held under an LRU byte budget, and optionally
  persisted to disk, so a repeat request skips parse -> sema ->
  pdg-build -> allocate entirely.
* :mod:`repro.service.server` — a threaded JSON-over-TCP server (stdlib
  only) whose workers reuse the resilient
  :class:`~repro.resilience.pipeline.PassPipeline` and the allocator
  fallback ladder.  Admission control is a bounded earliest-deadline-
  first queue; a request's deadline also selects how ambitious an
  allocator rung to start from (tight deadlines go straight to linear
  scan, generous ones run full RAP).
* :mod:`repro.service.client` — the client library behind
  ``python -m repro request``.
* :mod:`repro.service.loadgen` — a closed-loop load generator reporting
  latency percentiles, throughput, and cache hit rate.

See docs/SERVICE.md for the protocol and the operational semantics
(cache keys, deadline policy, drain behaviour).
"""

from .cache import ArtifactCache, cache_key
from .client import ServiceClient, ServiceError
from .server import CompileService, serve

__all__ = [
    "ArtifactCache",
    "cache_key",
    "CompileService",
    "ServiceClient",
    "ServiceError",
    "serve",
]
