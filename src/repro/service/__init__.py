"""Compile-as-a-service: a long-lived compile-and-execute daemon.

The rest of the repository is batch-shaped: every ``python -m repro run``
pays the interpreter start-up, parse, semantic analysis, PDG build, and
allocation from scratch.  This package keeps one warm process around
instead — and, with the router, N of them behind one address:

* :mod:`repro.service.cache` — a content-addressed artifact store.
  Results are keyed on ``sha256(source ‖ allocator ‖ k ‖ schedule ‖
  pipeline-config ‖ code-fingerprint)``, held across per-shard-locked
  LRU shards under a byte budget, and optionally persisted to disk, so
  a repeat request skips parse -> sema -> pdg-build -> allocate
  entirely.  Misses are classified by the key component that changed
  (source vs config vs code churn) for the ``stats`` op.
* :mod:`repro.service.server` — a JSON-over-TCP server (stdlib only)
  whose workers reuse the resilient
  :class:`~repro.resilience.pipeline.PassPipeline` and the allocator
  fallback ladder.  Admission control is a bounded earliest-deadline-
  first queue; a request's deadline also selects how ambitious an
  allocator rung to start from (tight deadlines go straight to linear
  scan, generous ones run full RAP).
* :mod:`repro.service.workers` — the supervised **process** worker tier
  (the ``serve`` default): crash-isolated child processes under a
  per-job watchdog, exponential respawn backoff, a restart-storm
  circuit breaker (``degraded`` health + rung demotion), and
  poison-pill quarantine of compile keys that kill workers.
* :mod:`repro.service.router` — the consistent-hash front end
  (``python -m repro router``): sha256 ring with virtual nodes over N
  backend daemons, background health probes, transport-failover to the
  ring successor, and deployment-wide ``stats`` aggregation.
* :mod:`repro.service.client` — the client library behind
  ``python -m repro request``, with typed protocol errors and
  opt-in retry (exponential backoff + jitter) of transient failures.
* :mod:`repro.service.loadgen` — a closed-loop load generator reporting
  latency percentiles, throughput, and cache hit rate; a ``--chaos``
  mode that injects worker crashes, hangs, and malformed requests
  mid-run and asserts every request is answered exactly once; and a
  ``--saturate`` mode that steps concurrency to find the knee of the
  latency/throughput curve.
* :mod:`repro.service.defaults` — the single source of truth for every
  service-facing default (ports, budgets, deadlines, supervision).

See docs/SERVICE.md for the protocol and the operational semantics
(cache keys, deadline policy, supervision, drain behaviour),
docs/OPERATIONS.md for deployment topologies and runbooks, and
docs/ROBUSTNESS.md for the failure-mode matrix.
"""

from .cache import ArtifactCache, cache_key, key_components, source_fingerprint
from .client import ServiceClient, ServiceError, connect_with_retry
from .router import HashRing, RouterService, router_main
from .server import CompileService, serve
from .workers import Supervision

__all__ = [
    "ArtifactCache",
    "cache_key",
    "key_components",
    "source_fingerprint",
    "CompileService",
    "ServiceClient",
    "ServiceError",
    "connect_with_retry",
    "HashRing",
    "RouterService",
    "router_main",
    "Supervision",
    "serve",
]
