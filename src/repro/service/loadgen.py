"""Closed-loop load generator for the compile service.

``python -m repro loadgen`` drives a running daemon with N concurrent
workers, each holding one connection and issuing the next request the
moment the previous one completes (closed-loop: offered load adapts to
service capacity, so the queue is exercised without being flooded).  The
request mix cycles through bench-suite programs plus the committed fuzz
corpus (``tests/corpus/``) — the same inputs the rest of the repository
measures and replays.

The report gives client-observed latency percentiles (p50/p95/p99),
throughput, error counts, and the cache hit rate *as seen by this run's
responses*, plus a determinism check: every response for the same cache
key must carry the same image sha256 and execution output; any
disagreement is counted as a mismatch (and fails the CI smoke job).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .client import ServiceClient, ServiceError

#: Small, fast bench programs — the default mix base.
DEFAULT_PROGRAMS = ("sieve", "hanoi")


def default_mix(
    programs: Sequence[str] = DEFAULT_PROGRAMS,
    corpus: bool = True,
) -> List[Tuple[str, str]]:
    """(name, source) pairs: bench suite programs plus the fuzz corpus."""
    from ..bench.suite import program

    mix: List[Tuple[str, str]] = [
        (name, program(name).source()) for name in programs
    ]
    if corpus:
        from ..resilience.corpus import DEFAULT_CORPUS_DIR, load_corpus

        loaded = load_corpus(DEFAULT_CORPUS_DIR)
        for entry in loaded.entries:
            with open(entry.path(loaded.directory)) as handle:
                mix.append((f"corpus:{entry.file}", handle.read()))
    return mix


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = math.ceil(q / 100.0 * len(sorted_values))
    return sorted_values[max(0, min(len(sorted_values) - 1, rank - 1))]


@dataclass
class LoadgenReport:
    """One load-generation run, summarized."""

    requests: int = 0
    ok: int = 0
    errors: int = 0
    hits: int = 0
    misses: int = 0
    mismatches: int = 0
    wall_s: float = 0.0
    latencies_ms: List[float] = field(default_factory=list, repr=False)
    error_kinds: Dict[str, int] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        answered = self.hits + self.misses
        return self.hits / answered if answered else 0.0

    @property
    def throughput_rps(self) -> float:
        return self.ok / self.wall_s if self.wall_s else 0.0

    def percentiles(self) -> Dict[str, float]:
        values = sorted(self.latencies_ms)
        return {
            "p50_ms": percentile(values, 50.0),
            "p95_ms": percentile(values, 95.0),
            "p99_ms": percentile(values, 99.0),
        }

    def as_dict(self) -> Dict[str, Any]:
        out = {
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "hits": self.hits,
            "misses": self.misses,
            "mismatches": self.mismatches,
            "hit_rate": round(self.hit_rate, 4),
            "wall_s": round(self.wall_s, 3),
            "throughput_rps": round(self.throughput_rps, 2),
            "error_kinds": dict(self.error_kinds),
        }
        out.update(
            {name: round(value, 3) for name, value in self.percentiles().items()}
        )
        return out

    def render(self, stream=None) -> None:
        stream = stream or sys.stdout
        pct = self.percentiles()
        print(
            f"[loadgen] {self.ok}/{self.requests} ok, "
            f"{self.errors} errors, "
            f"{self.throughput_rps:.1f} req/s over {self.wall_s:.2f}s",
            file=stream,
        )
        print(
            f"[loadgen] latency p50={pct['p50_ms']:.1f}ms "
            f"p95={pct['p95_ms']:.1f}ms p99={pct['p99_ms']:.1f}ms",
            file=stream,
        )
        print(
            f"[loadgen] cache: {self.hits} hits / {self.misses} misses "
            f"({100.0 * self.hit_rate:.1f}% hit rate), "
            f"{self.mismatches} determinism mismatches",
            file=stream,
        )


def run_loadgen(
    host: str = "127.0.0.1",
    port: int = 9363,
    requests: int = 40,
    workers: int = 4,
    mix: Optional[List[Tuple[str, str]]] = None,
    allocator: str = "rap",
    k: int = 5,
    schedule: bool = False,
    deadline_ms: Optional[float] = None,
    stream=None,
) -> LoadgenReport:
    """Drive the daemon with a closed loop of ``workers`` clients.

    Request ``i`` uses ``mix[i % len(mix)]``, so repeated runs offer an
    identical, fully repeatable request stream — the property the warm
    throughput comparison in CI relies on.
    """
    mix = mix if mix is not None else default_mix()
    if not mix:
        raise ValueError("empty request mix")
    report = LoadgenReport(requests=requests)
    lock = threading.Lock()
    next_index = [0]
    #: cache key -> (image sha, output) seen first; responses must agree.
    observed: Dict[str, Tuple[str, str]] = {}

    def worker() -> None:
        try:
            client = ServiceClient(host, port)
        except OSError:
            with lock:
                report.errors += 1
                report.error_kinds["connect"] = (
                    report.error_kinds.get("connect", 0) + 1
                )
            return
        with client:
            while True:
                with lock:
                    index = next_index[0]
                    if index >= requests:
                        return
                    next_index[0] = index + 1
                name, source = mix[index % len(mix)]
                started = time.perf_counter()
                try:
                    response = client.compile(
                        source,
                        allocator=allocator,
                        k=k,
                        schedule=schedule,
                        deadline_ms=deadline_ms,
                        filename=name,
                    )
                except ServiceError as err:
                    with lock:
                        report.errors += 1
                        report.error_kinds[err.kind] = (
                            report.error_kinds.get(err.kind, 0) + 1
                        )
                    continue
                except (OSError, ConnectionError):
                    with lock:
                        report.errors += 1
                        report.error_kinds["transport"] = (
                            report.error_kinds.get("transport", 0) + 1
                        )
                    return
                elapsed_ms = (time.perf_counter() - started) * 1000.0
                fingerprint = (
                    response.get("image_sha256", ""),
                    json.dumps(response.get("output", []), sort_keys=True),
                )
                with lock:
                    report.ok += 1
                    report.latencies_ms.append(elapsed_ms)
                    if response.get("cache") == "hit":
                        report.hits += 1
                    else:
                        report.misses += 1
                    seen = observed.setdefault(response["key"], fingerprint)
                    if seen != fingerprint:
                        report.mismatches += 1

    started = time.perf_counter()
    threads = [
        threading.Thread(target=worker, name=f"loadgen-{i}", daemon=True)
        for i in range(max(1, workers))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_s = time.perf_counter() - started
    if stream is not None:
        report.render(stream)
    return report


def loadgen_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro loadgen", description="closed-loop service load generator"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9363)
    parser.add_argument("--requests", type=int, default=40)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--programs", nargs="*", default=list(DEFAULT_PROGRAMS),
        help="bench-suite programs in the mix",
    )
    parser.add_argument(
        "--no-corpus", action="store_true",
        help="leave the fuzz corpus out of the mix",
    )
    parser.add_argument(
        "--allocator",
        choices=("gra", "rap", "linearscan", "spillall"),
        default="rap",
    )
    parser.add_argument("-k", type=int, default=5)
    parser.add_argument("--schedule", action="store_true")
    parser.add_argument("--deadline-ms", type=float, default=None)
    parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the report as JSON",
    )
    args = parser.parse_args(argv)

    report = run_loadgen(
        host=args.host,
        port=args.port,
        requests=args.requests,
        workers=args.workers,
        mix=default_mix(args.programs, corpus=not args.no_corpus),
        allocator=args.allocator,
        k=args.k,
        schedule=args.schedule,
        deadline_ms=args.deadline_ms,
        stream=sys.stdout,
    )
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0 if report.errors == 0 and report.mismatches == 0 else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(loadgen_main())
