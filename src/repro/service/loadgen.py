"""Closed-loop load generator for the compile service.

``python -m repro loadgen`` drives a running daemon with N concurrent
workers, each holding one connection and issuing the next request the
moment the previous one completes (closed-loop: offered load adapts to
service capacity, so the queue is exercised without being flooded).  The
request mix cycles through bench-suite programs plus the committed fuzz
corpus (``tests/corpus/``) — the same inputs the rest of the repository
measures and replays.

The report gives client-observed latency percentiles (p50/p95/p99),
throughput, error counts, and the cache hit rate *as seen by this run's
responses*, plus a determinism check: every response for the same cache
key must carry the same image sha256 and execution output; any
disagreement is counted as a mismatch (and fails the CI smoke job).
The ``artifacts`` map in the JSON report (cache key -> image sha256)
lets two runs be compared for byte-identical warm paths — the chaos
smoke job diffs a chaos run against a chaos-free one.

Chaos mode
----------

``--chaos`` (requires a daemon started with ``serve --chaos``)
interleaves failure probes with the normal closed-loop mix:

* **crash probes** — requests carrying ``chaos: "crash"`` that make the
  worker process exit hard mid-compile; the expected answer is a typed
  ``worker-crash`` error;
* **hang probes** — ``chaos: "hang"`` wedges the worker until the
  watchdog SIGKILLs it; the expected answer is ``worker-timeout``
  within watchdog + grace (the probe's client-observed latency is
  reported so CI can assert it beat the socket timeout);
* **malformed probes** — protocol garbage (missing source, unknown op,
  unparseable JSON) that must come back as typed ``request`` errors,
  never a hung connection or a traceback.

Each probe uses a *distinct* source text so chaos strikes land on
dedicated cache keys and never quarantine the normal mix.  Normal
workers run with client retries armed (``--retries``), so transient
``worker-crash``/``admission`` answers are replayed — safe because
compiles are idempotent.  The invariant under test: **every request
gets exactly one typed answer** — ``unanswered`` (a raw socket error or
a request with no response) must end at zero, errors included, and the
run fails otherwise.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from . import defaults
from .client import ServiceClient, ServiceError, connect_with_retry

#: Small, fast bench programs — the default mix base.
DEFAULT_PROGRAMS = ("sieve", "hanoi")

#: Base source for chaos probes; each probe appends a distinguishing
#: comment so every probe owns a unique cache key (strikes must never
#: quarantine the normal mix, and two crash probes must not pool
#: strikes into a quarantine that would hide the worker-crash path).
_PROBE_SOURCE = "int main() { return 0; }\n"


def default_mix(
    programs: Sequence[str] = DEFAULT_PROGRAMS,
    corpus: bool = True,
) -> List[Tuple[str, str]]:
    """(name, source) pairs: bench suite programs plus the fuzz corpus."""
    from ..bench.suite import program

    mix: List[Tuple[str, str]] = [
        (name, program(name).source()) for name in programs
    ]
    if corpus:
        from ..resilience.corpus import DEFAULT_CORPUS_DIR, load_corpus

        loaded = load_corpus(DEFAULT_CORPUS_DIR)
        for entry in loaded.entries:
            with open(entry.path(loaded.directory)) as handle:
                mix.append((f"corpus:{entry.file}", handle.read()))
    return mix


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = math.ceil(q / 100.0 * len(sorted_values))
    return sorted_values[max(0, min(len(sorted_values) - 1, rank - 1))]


@dataclass
class LoadgenReport:
    """One load-generation run, summarized."""

    requests: int = 0
    ok: int = 0
    errors: int = 0
    hits: int = 0
    misses: int = 0
    mismatches: int = 0
    #: Requests that got no typed answer at all (raw socket failure
    #: after retries, missing response).  Must be zero: this is the
    #: exactly-one-typed-answer invariant, seen from the client.
    unanswered: int = 0
    wall_s: float = 0.0
    latencies_ms: List[float] = field(default_factory=list, repr=False)
    error_kinds: Dict[str, int] = field(default_factory=dict)
    #: cache key -> image sha256, for cross-run byte-identity diffs.
    artifacts: Dict[str, str] = field(default_factory=dict, repr=False)
    #: interpreter-tier census over executing cold responses (cache hits
    #: replay a stored result and report no tier; empty when ``execute``
    #: was off for the whole run).
    interp_tiers: Dict[str, int] = field(default_factory=dict)
    #: chaos-mode probe accounting (empty when chaos was off).
    chaos: Dict[str, Any] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        answered = self.hits + self.misses
        return self.hits / answered if answered else 0.0

    @property
    def throughput_rps(self) -> float:
        return self.ok / self.wall_s if self.wall_s else 0.0

    def percentiles(self) -> Dict[str, float]:
        values = sorted(self.latencies_ms)
        return {
            "p50_ms": percentile(values, 50.0),
            "p95_ms": percentile(values, 95.0),
            "p99_ms": percentile(values, 99.0),
        }

    def as_dict(self) -> Dict[str, Any]:
        out = {
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "hits": self.hits,
            "misses": self.misses,
            "mismatches": self.mismatches,
            "unanswered": self.unanswered,
            "hit_rate": round(self.hit_rate, 4),
            "wall_s": round(self.wall_s, 3),
            "throughput_rps": round(self.throughput_rps, 2),
            "error_kinds": dict(self.error_kinds),
            "artifacts": dict(self.artifacts),
        }
        if self.interp_tiers:
            out["interp_tiers"] = dict(sorted(self.interp_tiers.items()))
        if self.chaos:
            out["chaos"] = dict(self.chaos)
        out.update(
            {name: round(value, 3) for name, value in self.percentiles().items()}
        )
        return out

    def render(self, stream=None) -> None:
        stream = stream or sys.stdout
        pct = self.percentiles()
        print(
            f"[loadgen] {self.ok}/{self.requests} ok, "
            f"{self.errors} errors, {self.unanswered} unanswered, "
            f"{self.throughput_rps:.1f} req/s over {self.wall_s:.2f}s",
            file=stream,
        )
        print(
            f"[loadgen] latency p50={pct['p50_ms']:.1f}ms "
            f"p95={pct['p95_ms']:.1f}ms p99={pct['p99_ms']:.1f}ms",
            file=stream,
        )
        print(
            f"[loadgen] cache: {self.hits} hits / {self.misses} misses "
            f"({100.0 * self.hit_rate:.1f}% hit rate), "
            f"{self.mismatches} determinism mismatches",
            file=stream,
        )
        if self.interp_tiers:
            census = ", ".join(
                f"{tier}={count}"
                for tier, count in sorted(self.interp_tiers.items())
            )
            print(f"[loadgen] interp tiers (cold executes): {census}", file=stream)
        if self.chaos:
            print(
                f"[loadgen] chaos: {self.chaos['probes']} probes "
                f"({self.chaos['crashes']} crash, {self.chaos['hangs']} hang, "
                f"{self.chaos['malformed']} malformed), "
                f"{self.chaos['unanswered']} unanswered, "
                f"kinds {self.chaos['answer_kinds']}",
                file=stream,
            )


def _count(report: LoadgenReport, lock: threading.Lock, kind: str) -> None:
    with lock:
        report.errors += 1
        report.error_kinds[kind] = report.error_kinds.get(kind, 0) + 1


def _run_chaos_probes(
    host: str,
    port: int,
    report: LoadgenReport,
    lock: threading.Lock,
    crashes: int,
    hangs: int,
    malformed: int,
    allocator: str,
    k: int,
    probe_gap_s: float,
) -> None:
    """Fire failure probes while the normal mix churns.

    Every probe must get exactly one typed answer; anything else counts
    as chaos-unanswered (and fails the run).  Probes never retry: the
    typed error *is* the expected answer.
    """
    chaos: Dict[str, Any] = {
        "probes": 0,
        "crashes": crashes,
        "hangs": hangs,
        "malformed": malformed,
        "unanswered": 0,
        "answer_kinds": {},
        "hang_latency_ms": [],
    }

    def answer(kind: str) -> None:
        chaos["answer_kinds"][kind] = chaos["answer_kinds"].get(kind, 0) + 1

    #: (chaos directive, probe tag) per probe; malformed probes are raw
    #: payloads exercising the protocol layer instead.
    plan: List[Tuple[str, int]] = (
        [("crash", i) for i in range(crashes)]
        + [("hang", i) for i in range(hangs)]
    )
    try:
        client = connect_with_retry(host, port, retries=3, backoff=0.1)
        # Connection retries only: a retried crash probe would strike
        # its own key into poison-pill quarantine and mask the
        # worker-crash answer the probe exists to observe.
        client.retries = 0
    except ServiceError:
        with lock:
            chaos["unanswered"] += len(plan) + malformed
            report.chaos = chaos
        return
    with client:
        for directive, index in plan:
            chaos["probes"] += 1
            source = f"{_PROBE_SOURCE}// chaos {directive} probe #{index}\n"
            started = time.perf_counter()
            try:
                client.compile(
                    source,
                    allocator=allocator,
                    k=k,
                    chaos=directive,
                    filename=f"chaos:{directive}:{index}",
                )
                answer("ok")  # chaos disabled server-side: still typed
            except ServiceError as err:
                answer(err.kind)
                if err.kind in ("transport", "timeout", "protocol"):
                    chaos["unanswered"] += 1
                    try:
                        client._reconnect()
                    except OSError:
                        break
                elif directive == "hang":
                    chaos["hang_latency_ms"].append(
                        round((time.perf_counter() - started) * 1000.0, 1)
                    )
            time.sleep(probe_gap_s)
        for index in range(malformed):
            chaos["probes"] += 1
            payload = (
                {"op": "compile", "k": k}  # missing source
                if index % 2 == 0
                else {"op": f"no-such-op-{index}"}
            )
            try:
                client.checked(payload)
                answer("ok")
            except ServiceError as err:
                answer(err.kind)
                if err.kind in ("transport", "timeout", "protocol"):
                    chaos["unanswered"] += 1
            time.sleep(probe_gap_s)
    with lock:
        report.chaos = chaos


def run_loadgen(
    host: str = defaults.HOST,
    port: int = defaults.PORT,
    requests: int = 40,
    workers: int = 4,
    mix: Optional[List[Tuple[str, str]]] = None,
    allocator: str = defaults.ALLOCATOR,
    k: int = defaults.K,
    schedule: bool = False,
    deadline_ms: Optional[float] = None,
    retries: int = 0,
    chaos: bool = False,
    chaos_crashes: int = 2,
    chaos_hangs: int = 1,
    chaos_malformed: int = 2,
    chaos_probe_gap_s: float = 0.05,
    stream=None,
) -> LoadgenReport:
    """Drive the daemon with a closed loop of ``workers`` clients.

    Request ``i`` uses ``mix[i % len(mix)]``, so repeated runs offer an
    identical, fully repeatable request stream — the property the warm
    throughput comparison in CI relies on.  With ``chaos=True`` a probe
    thread interleaves crash/hang/malformed probes with the normal mix
    (see the module docstring).
    """
    mix = mix if mix is not None else default_mix()
    if not mix:
        raise ValueError("empty request mix")
    report = LoadgenReport(requests=requests)
    lock = threading.Lock()
    next_index = [0]
    #: cache key -> (image sha, output) seen first; responses must agree.
    observed: Dict[str, Tuple[str, str]] = {}

    def worker() -> None:
        try:
            client = connect_with_retry(
                host, port, retries=retries, backoff=0.05
            )
        except (ServiceError, OSError):
            with lock:
                report.errors += 1
                report.unanswered += 1
                report.error_kinds["connect"] = (
                    report.error_kinds.get("connect", 0) + 1
                )
            return
        client.retries = retries
        with client:
            while True:
                with lock:
                    index = next_index[0]
                    if index >= requests:
                        return
                    next_index[0] = index + 1
                name, source = mix[index % len(mix)]
                started = time.perf_counter()
                try:
                    response = client.compile(
                        source,
                        allocator=allocator,
                        k=k,
                        schedule=schedule,
                        deadline_ms=deadline_ms,
                        filename=name,
                    )
                except ServiceError as err:
                    _count(report, lock, err.kind)
                    if err.kind in ("transport", "timeout", "protocol"):
                        # Below the response layer: no typed answer from
                        # the server reached us even after retries.
                        with lock:
                            report.unanswered += 1
                        try:
                            client._reconnect()
                        except OSError:
                            return
                    continue
                except (OSError, ConnectionError):
                    _count(report, lock, "transport")
                    with lock:
                        report.unanswered += 1
                    return
                elapsed_ms = (time.perf_counter() - started) * 1000.0
                fingerprint = (
                    response.get("image_sha256", ""),
                    json.dumps(response.get("output", []), sort_keys=True),
                )
                with lock:
                    report.ok += 1
                    report.latencies_ms.append(elapsed_ms)
                    if response.get("cache") == "hit":
                        report.hits += 1
                    else:
                        report.misses += 1
                    seen = observed.setdefault(response["key"], fingerprint)
                    if seen != fingerprint:
                        report.mismatches += 1
                    report.artifacts[response["key"]] = response.get(
                        "image_sha256", ""
                    )
                    tier = response.get("interp_tier")
                    if tier:
                        report.interp_tiers[tier] = (
                            report.interp_tiers.get(tier, 0) + 1
                        )

    started = time.perf_counter()
    threads = [
        threading.Thread(target=worker, name=f"loadgen-{i}", daemon=True)
        for i in range(max(1, workers))
    ]
    if chaos:
        threads.append(
            threading.Thread(
                target=_run_chaos_probes,
                args=(
                    host, port, report, lock,
                    chaos_crashes, chaos_hangs, chaos_malformed,
                    allocator, k, chaos_probe_gap_s,
                ),
                name="loadgen-chaos",
                daemon=True,
            )
        )
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_s = time.perf_counter() - started
    if stream is not None:
        report.render(stream)
    return report


def run_saturation(
    host: str = defaults.HOST,
    port: int = defaults.PORT,
    steps: Sequence[int] = defaults.SATURATE_STEPS,
    requests_per_step: int = defaults.SATURATE_REQUESTS_PER_STEP,
    mix: Optional[List[Tuple[str, str]]] = None,
    allocator: str = defaults.ALLOCATOR,
    k: int = defaults.K,
    schedule: bool = False,
    deadline_ms: Optional[float] = None,
    retries: int = 0,
    warmup: bool = True,
    knee_fraction: float = defaults.SATURATE_KNEE_FRACTION,
    stream=None,
) -> Dict[str, Any]:
    """Step closed-loop concurrency to find the knee of the
    latency/throughput curve.

    Runs the same repeatable request stream at each concurrency in
    ``steps`` and reports throughput + latency percentiles per step.
    Closed-loop saturation looks like throughput flattening while
    latency keeps climbing (each new client only adds queueing); the
    *knee* is the smallest concurrency already delivering
    ``knee_fraction`` of the best observed throughput — past it, extra
    concurrency buys latency, not work.  An optional warmup pass
    populates the artifact cache first, so the sweep measures the
    steady (warm) state rather than cold-compile cost; cold behavior is
    visible in each step's ``hit_rate``.
    """
    if not steps:
        raise ValueError("need at least one concurrency step")
    mix = mix if mix is not None else default_mix()
    common: Dict[str, Any] = {
        "host": host, "port": port, "mix": mix, "allocator": allocator,
        "k": k, "schedule": schedule, "deadline_ms": deadline_ms,
        "retries": retries,
    }
    if warmup:
        if stream is not None:
            print(f"[saturate] warmup: {len(mix)} requests", file=stream)
        run_loadgen(requests=len(mix), workers=2, **common)
    results: List[Dict[str, Any]] = []
    for concurrency in steps:
        report = run_loadgen(
            requests=requests_per_step, workers=concurrency, **common
        )
        pct = report.percentiles()
        step = {
            "concurrency": concurrency,
            "requests": report.requests,
            "ok": report.ok,
            "errors": report.errors,
            "unanswered": report.unanswered,
            "throughput_rps": round(report.throughput_rps, 2),
            "hit_rate": round(report.hit_rate, 4),
            **{name: round(value, 3) for name, value in pct.items()},
        }
        results.append(step)
        if stream is not None:
            print(
                f"[saturate] c={concurrency}: "
                f"{step['throughput_rps']:.1f} req/s, "
                f"p50={step['p50_ms']:.1f}ms p95={step['p95_ms']:.1f}ms, "
                f"{step['errors']} errors",
                file=stream,
            )
    max_throughput = max(step["throughput_rps"] for step in results)
    knee = next(
        (
            step["concurrency"]
            for step in results
            if step["throughput_rps"] >= knee_fraction * max_throughput
        ),
        results[-1]["concurrency"],
    )
    # A router target reports its backend count; a plain daemon counts 1.
    backends = 1
    try:
        with ServiceClient(host, port, timeout=30.0) as client:
            stats = client.stats()
            if "router" in stats:
                backends = len(stats.get("backends", ())) or 1
    except (ServiceError, OSError):
        pass
    summary = {
        "target": f"{host}:{port}",
        "backends": backends,
        "mix_size": len(mix),
        "requests_per_step": requests_per_step,
        "knee_fraction": knee_fraction,
        "steps": results,
        "max_throughput_rps": max_throughput,
        "knee_concurrency": knee,
    }
    if stream is not None:
        print(
            f"[saturate] knee at c={knee} "
            f"(max {max_throughput:.1f} req/s across {backends} backend(s))",
            file=stream,
        )
    return summary


def _free_port(host: str) -> int:
    """A port the OS just handed out — raceable in principle, fine for
    a drill that owns the machine it runs on."""
    import socket

    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def _drill_mix(programs: Sequence[str]) -> List[Tuple[str, str]]:
    """A compact, fully deterministic mix for the drill: bench programs
    plus synthetic variants, enough distinct keys to spread across
    every backend's arcs without dragging the whole corpus through
    three restarts."""
    mix = default_mix(programs, corpus=False)
    for index in range(6):
        mix.append(
            (
                f"drill:{index}",
                f"int main() {{ return {index} + {index}; }}\n",
            )
        )
    return mix


def _spawn_backend(host: str, port: int) -> "subprocess.Popen":
    """One ``repro serve`` daemon as a child process (thread workers:
    the drill exercises replication, not crash isolation)."""
    import os
    import subprocess
    from pathlib import Path

    import repro

    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing
        else package_root + os.pathsep + existing
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--host", host, "--port", str(port),
            "--worker-mode", "thread", "--workers", "2",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_for_backend(host: str, port: int, timeout_s: float = 30.0) -> None:
    """Block until the daemon answers a ping (it may still be binding)."""
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            with connect_with_retry(host, port, timeout=5.0, retries=0) as client:
                if client.ping():
                    return
        except (ServiceError, OSError):
            pass
        if time.monotonic() > deadline:
            raise RuntimeError(f"backend {host}:{port} never came up")
        time.sleep(0.1)


def run_rolling_restart(
    backends: int = defaults.DRILL_BACKENDS,
    requests_per_phase: int = defaults.DRILL_REQUESTS_PER_PHASE,
    warm_hit_rate: float = defaults.DRILL_WARM_HIT_RATE,
    replication: int = defaults.ROUTER_REPLICATION,
    host: str = defaults.HOST,
    programs: Sequence[str] = DEFAULT_PROGRAMS,
    retries: int = 4,
    stream=None,
) -> Dict[str, Any]:
    """The rolling-restart drill: restart every backend under load.

    Spawns ``backends`` serve daemons plus an in-process router with
    replication on, warms the cache, then — with a closed-loop load
    thread running the whole time — walks the fleet one backend at a
    time: ``backend-drain`` (artifacts stream to their new owners),
    SIGTERM, wait for exit, restart on the same port, ``backend-add``.
    The drill passes iff **zero** requests were lost (no errors, no
    unanswered, no determinism mismatches in any phase), every artifact
    stayed byte-identical to the warm baseline, and the final pass —
    after every backend restarted — still answers warm at
    ``warm_hit_rate`` or better.  That final number is the whole point:
    before replication, each restart threw its share of the cache away.
    """
    import subprocess

    from .router import RouterServer, RouterService

    if backends < 2:
        raise ValueError("the drill needs at least 2 backends")
    mix = _drill_mix(programs)
    ports = []
    while len(ports) < backends:
        port = _free_port(host)
        if port not in ports:
            ports.append(port)
    procs: Dict[int, "subprocess.Popen"] = {}
    summary: Dict[str, Any] = {
        "backends": backends,
        "replication": replication,
        "mix_size": len(mix),
        "restarts": [],
        "ok": False,
    }

    def say(message: str) -> None:
        if stream is not None:
            print(f"[drill] {message}", file=stream)

    server = None
    load_thread = None
    stop = threading.Event()
    background = {
        "requests": 0, "ok": 0, "errors": 0, "unanswered": 0,
        "mismatches": 0, "error_kinds": {},
    }
    background_lock = threading.Lock()
    baseline: Dict[str, str] = {}

    def background_load(router_port: int) -> None:
        """Closed-loop requests for the whole restart window; every one
        must come back typed, correct, and byte-identical."""
        try:
            client = connect_with_retry(
                host, router_port, retries=5, backoff=0.1
            )
        except (ServiceError, OSError):
            with background_lock:
                background["unanswered"] += 1
            return
        client.retries = retries
        index = 0
        with client:
            while not stop.is_set():
                name, source = mix[index % len(mix)]
                index += 1
                with background_lock:
                    background["requests"] += 1
                try:
                    response = client.compile(source, filename=name)
                except ServiceError as err:
                    with background_lock:
                        background["errors"] += 1
                        background["error_kinds"][err.kind] = (
                            background["error_kinds"].get(err.kind, 0) + 1
                        )
                        if err.kind in ("transport", "timeout", "protocol"):
                            background["unanswered"] += 1
                    try:
                        client._reconnect()
                    except OSError:
                        return
                    continue
                except OSError:
                    with background_lock:
                        background["errors"] += 1
                        background["unanswered"] += 1
                    return
                sha = response.get("image_sha256", "")
                with background_lock:
                    background["ok"] += 1
                    if baseline.setdefault(response["key"], sha) != sha:
                        background["mismatches"] += 1
                time.sleep(0.01)

    try:
        say(f"spawning {backends} backends on ports {ports}")
        for port in ports:
            procs[port] = _spawn_backend(host, port)
        for port in ports:
            _wait_for_backend(host, port)
        router = RouterService(
            [(host, port) for port in ports],
            probe_interval_s=0.2,
            probe_failures=2,
            timeout=60.0,
            replication=replication,
        )
        server = RouterServer((host, 0), router)
        router_port = server.server_address[1]
        server_thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
        )
        server_thread.start()
        say(f"router on {host}:{router_port} (R={replication})")

        warm = run_loadgen(
            host=host, port=router_port,
            requests=max(requests_per_phase, len(mix)),
            workers=2, mix=mix, retries=retries,
        )
        baseline.update(warm.artifacts)
        summary["warm"] = {
            "requests": warm.requests, "ok": warm.ok,
            "errors": warm.errors, "unanswered": warm.unanswered,
            "mismatches": warm.mismatches,
        }
        say(
            f"warm pass: {warm.ok}/{warm.requests} ok, "
            f"{len(baseline)} distinct artifacts"
        )
        if warm.errors or warm.unanswered:
            return summary

        load_thread = threading.Thread(
            target=background_load, args=(router_port,), daemon=True
        )
        load_thread.start()

        with connect_with_retry(host, router_port, retries=3) as admin:
            for port in ports:
                name = f"{host}:{port}"
                record: Dict[str, Any] = {"backend": name}
                started = time.monotonic()
                drained = admin.request(
                    {"op": "backend-drain", "backend": name}
                )
                record["drain_ok"] = bool(drained.get("ok"))
                record["streamed"] = drained.get("streamed", 0)
                record["stream_failed"] = drained.get("stream_failed", 0)
                say(
                    f"drained {name}: streamed {record['streamed']} "
                    f"artifacts (ok={record['drain_ok']})"
                )
                proc = procs[port]
                proc.terminate()
                try:
                    proc.wait(timeout=30.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=10.0)
                procs[port] = _spawn_backend(host, port)
                _wait_for_backend(host, port)
                added = admin.request({"op": "backend-add", "backend": name})
                record["add_ok"] = bool(added.get("ok"))
                record["ring_generation"] = added.get("ring_generation")
                record["window_s"] = round(time.monotonic() - started, 2)
                say(
                    f"restarted {name} in {record['window_s']}s "
                    f"(ring generation {record['ring_generation']})"
                )
                summary["restarts"].append(record)
                if not (record["drain_ok"] and record["add_ok"]):
                    return summary

        stop.set()
        load_thread.join(timeout=60.0)
        summary["background"] = dict(background)
        say(
            f"background load: {background['ok']}/{background['requests']} "
            f"ok, {background['errors']} errors, "
            f"{background['unanswered']} unanswered, "
            f"{background['mismatches']} mismatches"
        )

        final = run_loadgen(
            host=host, port=router_port,
            requests=max(requests_per_phase, len(mix)),
            workers=2, mix=mix, retries=retries,
        )
        drifted = sum(
            1
            for key, sha in final.artifacts.items()
            if baseline.get(key, sha) != sha
        )
        summary["final"] = {
            "requests": final.requests, "ok": final.ok,
            "errors": final.errors, "unanswered": final.unanswered,
            "mismatches": final.mismatches,
            "hit_rate": round(final.hit_rate, 4),
            "artifacts_drifted": drifted,
        }
        summary["post_restart_hit_rate"] = round(final.hit_rate, 4)
        say(
            f"final pass: {final.ok}/{final.requests} ok, "
            f"hit rate {100.0 * final.hit_rate:.1f}% "
            f"(floor {100.0 * warm_hit_rate:.0f}%), "
            f"{drifted} artifacts drifted"
        )
        summary["ok"] = (
            warm.errors == 0 and warm.unanswered == 0
            and warm.mismatches == 0
            and background["errors"] == 0
            and background["unanswered"] == 0
            and background["mismatches"] == 0
            and final.errors == 0 and final.unanswered == 0
            and final.mismatches == 0
            and drifted == 0
            and final.hit_rate >= warm_hit_rate
        )
        say("PASS" if summary["ok"] else "FAIL")
        return summary
    finally:
        stop.set()
        if load_thread is not None and load_thread.is_alive():
            load_thread.join(timeout=10.0)
        if server is not None:
            server.drain_and_shutdown()
            server.server_close()
        for proc in procs.values():
            if proc.poll() is None:
                proc.terminate()
        for proc in procs.values():
            try:
                proc.wait(timeout=15.0)
            except Exception:
                proc.kill()


def build_loadgen_parser() -> argparse.ArgumentParser:
    """The ``repro loadgen`` argument parser (defaults single-sourced in
    :mod:`repro.service.defaults`)."""
    parser = argparse.ArgumentParser(
        prog="repro loadgen", description="closed-loop service load generator"
    )
    parser.add_argument("--host", default=defaults.HOST)
    parser.add_argument("--port", type=int, default=defaults.PORT)
    parser.add_argument("--requests", type=int, default=40)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--programs", nargs="*", default=list(DEFAULT_PROGRAMS),
        help="bench-suite programs in the mix",
    )
    parser.add_argument(
        "--no-corpus", action="store_true",
        help="leave the fuzz corpus out of the mix",
    )
    parser.add_argument(
        "--allocator",
        choices=("gra", "rap", "ssaspill", "linearscan", "spillall"),
        default=defaults.ALLOCATOR,
    )
    parser.add_argument("-k", type=int, default=defaults.K)
    parser.add_argument("--schedule", action="store_true")
    parser.add_argument("--deadline-ms", type=float, default=None)
    parser.add_argument(
        "--retries", type=int, default=defaults.CLIENT_RETRIES,
        help="client retries for transient failures (admission, "
             "worker-crash, no-backend, transport)",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="interleave crash/hang/malformed probes (daemon must run "
             "with serve --chaos)",
    )
    parser.add_argument("--chaos-crashes", type=int, default=2)
    parser.add_argument("--chaos-hangs", type=int, default=1)
    parser.add_argument("--chaos-malformed", type=int, default=2)
    parser.add_argument(
        "--saturate", action="store_true",
        help="step closed-loop concurrency to find the knee of the "
             "latency/throughput curve instead of one fixed run",
    )
    parser.add_argument(
        "--saturate-steps", type=int, nargs="*",
        default=list(defaults.SATURATE_STEPS), metavar="N",
        help="concurrency steps for --saturate "
             f"(default: {' '.join(str(s) for s in defaults.SATURATE_STEPS)})",
    )
    parser.add_argument(
        "--requests-per-step", type=int,
        default=defaults.SATURATE_REQUESTS_PER_STEP,
        help="requests per concurrency step under --saturate "
             f"(default: {defaults.SATURATE_REQUESTS_PER_STEP})",
    )
    parser.add_argument(
        "--rolling-restart", action="store_true",
        help="self-contained drill: spawn backends + a replicating "
             "router, then restart every backend under load asserting "
             "zero lost requests and a pinned warm hit rate",
    )
    parser.add_argument(
        "--backends", type=int, default=defaults.DRILL_BACKENDS,
        help="backends spawned by --rolling-restart "
             f"(default: {defaults.DRILL_BACKENDS})",
    )
    parser.add_argument(
        "--replication", type=int, default=defaults.ROUTER_REPLICATION,
        help="replication factor for the --rolling-restart router "
             f"(default: {defaults.ROUTER_REPLICATION})",
    )
    parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the report as JSON",
    )
    return parser


def loadgen_main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_loadgen_parser().parse_args(argv)

    if args.rolling_restart:
        summary = run_rolling_restart(
            backends=args.backends,
            replication=args.replication,
            host=args.host,
            programs=args.programs,
            retries=max(args.retries, 4),
            stream=sys.stdout,
        )
        if args.out:
            with open(args.out, "w") as handle:
                json.dump(summary, handle, indent=2, sort_keys=True)
                handle.write("\n")
        return 0 if summary["ok"] else 1

    if args.saturate:
        summary = run_saturation(
            host=args.host,
            port=args.port,
            steps=args.saturate_steps,
            requests_per_step=args.requests_per_step,
            mix=default_mix(args.programs, corpus=not args.no_corpus),
            allocator=args.allocator,
            k=args.k,
            schedule=args.schedule,
            deadline_ms=args.deadline_ms,
            retries=args.retries,
            stream=sys.stdout,
        )
        if args.out:
            with open(args.out, "w") as handle:
                json.dump(summary, handle, indent=2, sort_keys=True)
                handle.write("\n")
        clean = all(
            step["errors"] == 0 and step["unanswered"] == 0
            for step in summary["steps"]
        )
        return 0 if clean else 1

    report = run_loadgen(
        host=args.host,
        port=args.port,
        requests=args.requests,
        workers=args.workers,
        mix=default_mix(args.programs, corpus=not args.no_corpus),
        allocator=args.allocator,
        k=args.k,
        schedule=args.schedule,
        deadline_ms=args.deadline_ms,
        retries=args.retries,
        chaos=args.chaos,
        chaos_crashes=args.chaos_crashes,
        chaos_hangs=args.chaos_hangs,
        chaos_malformed=args.chaos_malformed,
        stream=sys.stdout,
    )
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    clean = report.mismatches == 0 and report.unanswered == 0
    if args.chaos:
        # Typed errors are *expected* under chaos; what must hold is
        # exactly-one-typed-answer (client side: zero unanswered) and
        # warm-path determinism.
        clean = clean and report.chaos.get("unanswered", 1) == 0
    else:
        clean = clean and report.errors == 0
    return 0 if clean else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(loadgen_main())
