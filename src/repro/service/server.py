"""The compile-and-execute daemon.

Wire protocol: JSON lines over TCP.  A client sends one JSON object per
line and receives one JSON object per line, over a connection it may
hold open for many requests.  Operations:

``{"op": "compile", "source": ..., "allocator": "rap", "k": 5, ...}``
    Compile, allocate (walking the fallback ladder), optionally execute,
    and return the artifact summary.  Optional fields: ``schedule``
    (run the validated list-scheduler stage), ``execute`` (default
    true), ``entry`` (default ``"main"``), ``max_cycles``,
    ``deadline_ms`` (admission + rung policy, below).
``{"op": "stats"}``
    Cache counters, the server-lifetime per-stage telemetry aggregate
    (:class:`~repro.resilience.telemetry.MetricsCollector`), the
    service health state (``healthy`` / ``degraded`` / ``draining``),
    and — under process workers — the supervisor's per-worker
    restart/kill/crash accounting.
``{"op": "ping"}``
    Liveness.
``{"op": "cache-get", "key": ...}``
    Serve the raw cached artifact (blob + meta) for ``key`` without
    compiling anything; a typed ``replica-miss`` error when the key is
    not cached here.  The router's replication layer uses it to fetch
    artifacts for write-through and read-repair.
``{"op": "cache-put", "key": ..., "blob": ..., "meta": ...}``
    Install raw artifact bytes under ``key`` without compiling —
    the replica-write half of the router's replication protocol.  The
    blob must match ``meta["image_sha256"]``; damaged bytes are
    refused with a ``request`` error rather than cached.
``{"op": "cache-keys"}``
    Enumerate the memory-tier keys (key, routing affinity, byte size)
    — what the router streams off a backend being drained.

A ``compile`` request may carry ``"warm_only": true``: answer from the
cache (memory or disk tier) if warm, otherwise return a typed
``replica-miss`` error carrying the computed cache key *without
compiling*.  The router probes with it so a warm miss at a key's
primary can be repaired from a replica before paying for a compile.
It may also carry ``"affinity"`` (the router's ring-position digest),
which is stored in the artifact meta so membership changes can re-place
cached entries without re-deriving request identities.

Responses carry ``"ok"``; failures put a *frozen*
:class:`~repro.resilience.errors.StageError` payload under ``"error"``
(:meth:`StageError.freeze`), which :mod:`repro.service.client` thaws
back into the proper exception subclass — a remote
``MotionValidationError`` is catchable as one.  Non-pipeline failures
(admission rejection, expired deadlines, malformed requests, worker
deaths) use the same payload shape with synthetic kinds ``admission`` /
``deadline`` / ``request`` / ``worker-crash`` / ``worker-timeout`` /
``poison-pill`` (see docs/ROBUSTNESS.md for the full failure-mode
matrix).

Worker tiers
------------

``worker_mode="thread"`` runs compiles on daemon threads inside the
server process — cheap, but a hung compile wedges its queue slot for
good and shares the GIL with every other request.
``worker_mode="process"`` (the ``serve`` default) runs each worker as a
supervised child **process** (:mod:`repro.service.workers`): a per-job
wall-clock watchdog SIGKILLs a hung worker and answers the job with a
typed ``worker-timeout`` error, a crashed worker (nonzero exit, killed
by the OS) answers its job with ``worker-crash`` and is respawned under
exponential backoff, and a restart storm flips the service ``degraded``
— quarantining the offending compile key as a poison pill and demoting
new work to cheaper ladder rungs — instead of crash-looping.  Both
modes sit behind the same admission queue and artifact cache, and both
answer every admitted request exactly once.

Admission and deadlines
-----------------------

Requests enter a bounded earliest-deadline-first queue.  A full queue
rejects immediately (``admission`` error) — the closed-loop clients
back off; the queue never grows without bound.  Each worker pops the
job whose absolute deadline is earliest (deadline-less jobs sort last,
FIFO among themselves), so under saturation a tight-deadline request
overtakes queued generous ones instead of starving behind them.  A job
whose deadline has already passed when a worker picks it up is answered
with a ``deadline`` error without running any compiler stage.

The deadline also picks the *starting rung* of the allocator ladder
(:data:`DEFAULT_RUNG_POLICY`): a tight deadline goes straight to linear
scan, a moderate one starts at GRA, a generous or absent one runs full
RAP.  The policy only ever downgrades — a request for ``gra`` with a
generous deadline still starts at GRA — and the response records the
rung chosen and why (``rung_reason``).

Shutdown
--------

``drain()`` (wired to SIGTERM/SIGINT by :func:`serve`) stops admitting,
lets the queue empty and in-flight work finish, then stops the workers
and the listener.  In-flight clients get their responses; late arrivals
get an ``admission`` error mentioning the drain.
"""

from __future__ import annotations

import argparse
import hashlib
import heapq
import json
import os
import signal
import socketserver
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..compiler import param_slots
from ..interp.machine import FunctionImage, ProgramImage
from ..interp.serialize import dumps_image
from ..resilience.errors import StageError
from ..resilience.fallback import FallbackEvent, chain_for
from ..resilience.pipeline import PassPipeline, PipelineConfig
from ..resilience.telemetry import MetricsCollector
from . import defaults
from .cache import ArtifactCache, cache_key, key_components

#: (deadline ceiling in ms, starting rung).  Scanned in order; the first
#: ceiling the deadline fits under wins.  No deadline, or one above every
#: ceiling, starts at the requested allocator (full RAP by default).
DEFAULT_RUNG_POLICY: Tuple[Tuple[float, str], ...] = (
    (defaults.DEADLINE_LINEARSCAN_MS, "linearscan"),
    (defaults.DEADLINE_SSASPILL_MS, "ssaspill"),
    (defaults.DEADLINE_GRA_MS, "gra"),
)

#: Ladder position, for "never upgrade past the request" comparisons.
_LADDER_ORDER = {
    "rap": 0,
    "gra": 1,
    "ssaspill": 2,
    "linearscan": 3,
    "spillall": 4,
}

#: How long a handler waits for its job beyond the job's own deadline —
#: covers the worker's bookkeeping after the deadline check.  A module
#: global (not a bare defaults read) so tests can monkeypatch it.
_GRACE_S = defaults.GRACE_S

_DEFAULT_WAIT_S = defaults.WAIT_S


def rung_for_deadline(
    requested: str,
    deadline_ms: Optional[float],
    policy: Sequence[Tuple[float, str]] = DEFAULT_RUNG_POLICY,
) -> Tuple[str, str]:
    """The ladder rung to start from, and a human-readable reason.

    Only ever moves *down* the ladder from ``requested``: a request for
    ``linearscan`` is never upgraded to GRA by a generous deadline.
    """
    if deadline_ms is None:
        return requested, "no deadline: requested allocator"
    for ceiling, rung in policy:
        if deadline_ms <= ceiling:
            if _LADDER_ORDER[rung] > _LADDER_ORDER[requested]:
                return (
                    rung,
                    f"deadline {deadline_ms:.0f}ms <= {ceiling:.0f}ms: "
                    f"start at {rung}",
                )
            return requested, (
                f"deadline {deadline_ms:.0f}ms <= {ceiling:.0f}ms but "
                f"{requested} is already that cheap"
            )
    return requested, f"deadline {deadline_ms:.0f}ms: generous, full {requested}"


def _error_payload(kind: str, message: str, **extra: Any) -> Dict[str, Any]:
    """A frozen-StageError-shaped payload for non-pipeline failures, so
    clients handle every error through one code path."""
    return {
        "kind": kind,
        "message": message,
        "context": {"stage": kind, "extra": extra} if extra else {"stage": kind},
        "cause": None,
    }


@dataclass(order=True)
class _Job:
    """One queued request.  Orders by (deadline, sequence): earliest
    deadline first, FIFO among equal/absent deadlines.

    The claim/cancel protocol closes the orphaned-job leak: a submitter
    whose wait times out *cancels* the job, and a worker must *claim* a
    job before compiling it.  Exactly one side wins — a cancelled job is
    skipped by workers without running any compiler stage (counted as
    ``orphaned_skipped``), and a claimed job is always answered, even if
    the submitter has already given up (the answer is discarded, which
    is harmless; the worker was already committed).
    """

    deadline_at: float  # monotonic seconds; +inf when no deadline
    seq: int
    request: Dict[str, Any] = field(compare=False)
    done: threading.Event = field(compare=False, default_factory=threading.Event)
    response: Optional[Dict[str, Any]] = field(compare=False, default=None)
    _state_lock: threading.Lock = field(
        compare=False, default_factory=threading.Lock, repr=False
    )
    _claimed: bool = field(compare=False, default=False)
    _cancelled: bool = field(compare=False, default=False)

    def claim(self) -> bool:
        """Worker side: take ownership.  False if already cancelled."""
        with self._state_lock:
            if self._cancelled:
                return False
            self._claimed = True
            return True

    def cancel(self) -> bool:
        """Submitter side: tombstone an unclaimed job.  False if a
        worker already claimed it (an answer is coming)."""
        with self._state_lock:
            if self._claimed:
                return False
            self._cancelled = True
            return True

    def finish(self, response: Dict[str, Any]) -> None:
        self.response = response
        self.done.set()


class DeadlineQueue:
    """A bounded blocking priority queue ordered by absolute deadline."""

    def __init__(self, limit: int):
        self.limit = limit
        self._heap: List[_Job] = []
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self._seq = 0

    def offer(self, job: _Job) -> bool:
        """Admit the job, or refuse immediately when full."""
        with self._lock:
            if len(self._heap) >= self.limit:
                return False
            job.seq = self._seq = self._seq + 1
            heapq.heappush(self._heap, job)
            self._nonempty.notify()
            return True

    def take(self, timeout: Optional[float] = None) -> Optional[_Job]:
        """The earliest-deadline job, blocking up to ``timeout``."""
        with self._nonempty:
            if not self._heap:
                self._nonempty.wait(timeout)
            if not self._heap:
                return None
            return heapq.heappop(self._heap)

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)


@dataclass(frozen=True)
class PreparedJob:
    """A validated compile request, planned and ready for a worker.

    Everything a worker (thread or child process) needs to run the cold
    path, plus the parent-side bookkeeping (cache key, rung decision,
    admission timestamp) used to assemble the response.  Frozen and
    plain-data so it ships over a process pipe unchanged.
    """

    key: str
    components: Dict[str, str]
    rung: str
    rung_reason: str
    source: str
    k: int
    schedule: bool
    execute: bool
    entry: str
    max_cycles: Optional[int]
    filename: str
    allocator_requested: str
    chaos: Optional[str]
    started: float
    #: The router's ring-position digest for this request, stored in
    #: the artifact meta so membership changes (drain streaming) can
    #: re-place cached entries without re-deriving request identities.
    affinity: Optional[str] = None

    def spec(self) -> Dict[str, Any]:
        """The picklable job body sent to a worker process."""
        return {
            "source": self.source,
            "rung": self.rung,
            "k": self.k,
            "schedule": self.schedule,
            "execute": self.execute,
            "entry": self.entry,
            "max_cycles": self.max_cycles,
            "filename": self.filename,
            "allocator_requested": self.allocator_requested,
            "chaos": self.chaos,
        }


def compile_cold(
    pipeline: PassPipeline, spec: Dict[str, Any]
) -> Dict[str, Any]:
    """Full parse -> ... -> allocate (ladder walk) [-> execute].

    Shared by both worker tiers: thread workers call it in-process,
    process workers call it inside the child
    (:mod:`repro.service.workers`).  Returns the response body with the
    serialized image under ``"_blob"``; raises :class:`StageError` when
    every ladder rung below the starting one fails.
    """
    prog = pipeline.compile(
        spec["source"], filename=spec.get("filename") or "<request>"
    )
    attempts = chain_for(spec["rung"])
    fallbacks: List[FallbackEvent] = []
    image: Optional[ProgramImage] = None
    used = spec["rung"]
    k = spec["k"]
    for position, attempt in enumerate(attempts):
        module = prog.fresh_module()
        functions: Dict[str, FunctionImage] = {}
        try:
            for name, func in module.functions.items():
                result = pipeline.allocate(
                    func, attempt, k, schedule=spec["schedule"]
                )
                functions[name] = FunctionImage(
                    name, result.code, param_slots(func)
                )
        except StageError as err:
            if position == len(attempts) - 1:
                raise
            fallbacks.append(FallbackEvent(attempt, err.stage, err.message))
            continue
        image = ProgramImage(list(module.globals.values()), functions)
        used = attempt
        break
    assert image is not None  # last rung re-raises instead of falling out

    blob = dumps_image(image)
    response: Dict[str, Any] = {
        "_blob": blob,
        "allocator_requested": spec["allocator_requested"],
        "allocator_used": used,
        "k": k,
        "schedule": spec["schedule"],
        "fallbacks": [event.as_dict() for event in fallbacks],
        "image_sha256": _sha256_hex(blob),
        "image_bytes": len(blob),
    }
    if spec["execute"]:
        stats = pipeline.execute(
            image,
            entry=spec["entry"],
            max_cycles=spec["max_cycles"],
            allocator=used,
            k=k,
        )
        response["output"] = stats.output
        response["cycles"] = stats.total.cycles
        response["interp_tier"] = stats.interp_tier
    return response


class CompileService:
    """The daemon's engine, socket-free (the TCP layer is below).

    ``workers`` threads (``worker_mode="thread"``) or supervised child
    processes (``worker_mode="process"``) pull from the deadline queue;
    each owns a :class:`PassPipeline` (pipelines keep no cross-request
    state beyond the config, but the per-worker instance keeps the
    metrics swap race-free).  ``worker_delay_s`` injects a fixed per-job
    stall — a chaos/load-testing knob used by the saturation tests and
    soak runs, zero in production.  ``supervision`` tunes the process
    tier's watchdog/backoff/circuit-breaker parameters
    (:class:`repro.service.workers.Supervision`); ``chaos_enabled``
    makes worker processes honor the ``chaos`` request field
    (deliberate crash/hang probes — never enable outside a chaos run).
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        cache: Optional[ArtifactCache] = None,
        workers: int = defaults.THREAD_WORKERS,
        queue_limit: int = defaults.QUEUE_LIMIT,
        rung_policy: Sequence[Tuple[float, str]] = DEFAULT_RUNG_POLICY,
        worker_delay_s: float = 0.0,
        worker_mode: str = "thread",
        supervision: Optional["Supervision"] = None,
        chaos_enabled: bool = False,
    ):
        if worker_mode not in ("thread", "process"):
            raise ValueError(f"unknown worker_mode {worker_mode!r}")
        self.config = config or PipelineConfig()
        # `cache or ...` would discard a provided cache: an *empty*
        # ArtifactCache is falsy (it has __len__).
        self.cache = cache if cache is not None else ArtifactCache()
        self.queue = DeadlineQueue(queue_limit)
        self.rung_policy = tuple(rung_policy)
        self.worker_delay_s = worker_delay_s
        self.worker_mode = worker_mode
        self.chaos_enabled = chaos_enabled
        if supervision is None:
            from .workers import Supervision

            supervision = Supervision()
        self.supervision = supervision
        self.metrics = MetricsCollector()
        self._metrics_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._supervisor = None
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._started = False
        self._requests = 0
        self._rejected = 0
        self._expired = 0
        self._answered = 0
        self._cancelled = 0
        self._orphaned_skipped = 0
        self._workers = workers
        #: poison-pill bookkeeping: compile keys that killed or hung a
        #: worker, and the quarantine once a key strikes out.
        self._strikes: Dict[str, int] = {}
        self._quarantined: Dict[str, str] = {}
        self._cache_gets = 0
        self._cache_puts = 0
        self._load_quarantine()
        #: parent fds worker children must close at birth (the TCP
        #: listener, registered by serve()) — see workers.py on why an
        #: inherited listener copy is a real failure mode, not hygiene.
        self._child_close_fds: set = set()

    def close_fds_in_workers(self, *fds: int) -> None:
        """Register parent fds (e.g. the server's listening socket) that
        every process-tier worker child must close at birth.  No-op
        under thread workers."""
        self._child_close_fds.update(int(fd) for fd in fds)
        if self._supervisor is not None:
            self._supervisor.close_fds_in_children(*fds)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        if self.worker_mode == "process":
            from .workers import ProcessWorkerSupervisor

            self._supervisor = ProcessWorkerSupervisor(
                self,
                workers=self._workers,
                supervision=self.supervision,
                chaos_enabled=self.chaos_enabled,
            )
            self._supervisor.close_fds_in_children(*self._child_close_fds)
            self._supervisor.start()
            return
        for index in range(self._workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"compile-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def drain(self, timeout: float = 30.0) -> None:
        """Stop admitting, finish queued and in-flight work, stop workers.

        Under process workers this also reaps every child: in-flight
        compiles run to completion (or their watchdog), queued jobs are
        answered, then each worker process is shut down and joined — no
        zombies survive a drain.
        """
        self._draining.set()
        deadline = time.monotonic() + timeout
        while len(self.queue) and time.monotonic() < deadline:
            time.sleep(0.01)
        self._stop.set()
        if self._supervisor is not None:
            self._supervisor.stop(deadline)
            self._supervisor = None
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()) + 1.0)
        self._threads = []
        self._started = False

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    @property
    def health(self) -> str:
        """``healthy`` / ``degraded`` / ``draining``.

        ``degraded`` is the process tier's restart-storm circuit
        breaker: too many worker deaths inside the storm window.  It
        clears itself once the window passes without a new death — the
        "backoff recovery" the chaos harness asserts.
        """
        if self._draining.is_set():
            return "draining"
        if self._supervisor is not None and self._supervisor.degraded:
            return "degraded"
        return "healthy"

    # -- poison-pill quarantine -----------------------------------------------

    def note_strike(self, key: str, reason: str) -> None:
        """Record that compiling ``key`` killed or hung a worker.  At
        ``supervision.poison_threshold`` strikes the key is quarantined:
        further requests for it are answered with a ``poison-pill``
        error without ever reaching a worker again."""
        with self._counter_lock:
            strikes = self._strikes.get(key, 0) + 1
            self._strikes[key] = strikes
            if (
                strikes >= self.supervision.poison_threshold
                and key not in self._quarantined
            ):
                self._quarantined[key] = reason
        self._save_quarantine()

    def _quarantine_path(self) -> Optional[str]:
        """Where strikes/quarantine live across restarts: alongside the
        disk cache tier.  ``None`` (no persistence) without one."""
        persist_dir = getattr(self.cache, "persist_dir", None)
        if not persist_dir:
            return None
        return os.path.join(persist_dir, "quarantine.json")

    def _load_quarantine(self) -> None:
        """Reload the poison-pill book at startup so a restarted daemon
        does not re-learn — by killing workers again — which keys are
        lethal.  An unreadable file starts clean rather than crashing."""
        path = self._quarantine_path()
        if path is None or not os.path.exists(path):
            return
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            strikes = document.get("strikes")
            quarantined = document.get("quarantined")
            if isinstance(strikes, dict):
                self._strikes.update(
                    {str(k): int(v) for k, v in strikes.items()}
                )
            if isinstance(quarantined, dict):
                self._quarantined.update(
                    {str(k): str(v) for k, v in quarantined.items()}
                )
        except (OSError, ValueError):
            pass

    def _save_quarantine(self) -> None:
        path = self._quarantine_path()
        if path is None:
            return
        with self._counter_lock:
            document = {
                "strikes": dict(self._strikes),
                "quarantined": dict(self._quarantined),
            }
        tmp = f"{path}.tmp.{threading.get_ident()}"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(document, handle, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def count(self, counter: str, delta: int = 1) -> None:
        """Thread-safe bump of one of the accounting counters."""
        with self._counter_lock:
            setattr(self, f"_{counter}", getattr(self, f"_{counter}") + delta)

    # -- request entry points -------------------------------------------------

    def submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Admission + synchronous wait: the handler-thread entry point.

        ``stats`` and ``ping`` answer inline (they must work even when
        the queue is saturated — that is when you need them); compile
        requests go through the deadline queue.
        """
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "stats":
            return self._stats_response()
        if op == "cache-get":
            return self._cache_get_response(request)
        if op == "cache-put":
            return self._cache_put_response(request)
        if op == "cache-keys":
            return self._cache_keys_response()
        if op != "compile":
            return {
                "ok": False,
                "error": _error_payload("request", f"unknown op {op!r}"),
            }
        if self._draining.is_set():
            self.count("rejected")
            return {
                "ok": False,
                "error": _error_payload(
                    "admission", "server is draining", draining=True
                ),
            }
        deadline_ms = request.get("deadline_ms")
        deadline_at = (
            float("inf")
            if deadline_ms is None
            else time.monotonic() + float(deadline_ms) / 1000.0
        )
        job = _Job(deadline_at=deadline_at, seq=0, request=request)
        self.count("requests")
        if not self.queue.offer(job):
            self.count("rejected")
            return {
                "ok": False,
                "error": _error_payload(
                    "admission",
                    f"queue full ({self.queue.limit} waiting)",
                    queue_limit=self.queue.limit,
                ),
            }
        wait_s = (
            _DEFAULT_WAIT_S
            if deadline_ms is None
            else float(deadline_ms) / 1000.0 + _GRACE_S
        )
        if not job.done.wait(wait_s):
            if job.cancel():
                # Tombstoned before any worker touched it: workers will
                # skip it without compiling (the orphaned-job fix).
                self.count("cancelled")
                return {
                    "ok": False,
                    "error": _error_payload(
                        "deadline", "request timed out waiting for a worker"
                    ),
                }
            # A worker claimed the job in the race window; its answer is
            # already on the way — give it the grace period.
            job.done.wait(_GRACE_S)
        if job.response is None:
            return {
                "ok": False,
                "error": _error_payload(
                    "deadline", "request timed out waiting for a worker"
                ),
            }
        return job.response

    # -- the replication surface (raw artifact ops, no compiling) --------------

    def _cache_get_response(self, request: Dict[str, Any]) -> Dict[str, Any]:
        key = request.get("key")
        if not isinstance(key, str) or not key:
            return {
                "ok": False,
                "error": _error_payload("request", "cache-get: missing key"),
            }
        self.count("cache_gets")
        # fetch, not get: replication reads are plumbing and must not
        # distort the hit/miss telemetry operators reason about.
        entry = self.cache.fetch(key)
        if entry is None:
            return {
                "ok": False,
                "key": key,
                "error": _error_payload(
                    "replica-miss", "key not cached on this backend", key=key
                ),
            }
        return {
            "ok": True,
            "op": "cache-get",
            "key": key,
            "blob": entry.blob.decode("utf-8"),
            "meta": entry.meta,
        }

    def _cache_put_response(self, request: Dict[str, Any]) -> Dict[str, Any]:
        key = request.get("key")
        blob = request.get("blob")
        meta = request.get("meta")
        if (
            not isinstance(key, str)
            or not key
            or not isinstance(blob, str)
            or not isinstance(meta, dict)
        ):
            return {
                "ok": False,
                "error": _error_payload(
                    "request", "cache-put: need key, blob, meta"
                ),
            }
        raw = blob.encode("utf-8")
        recorded = meta.get("image_sha256")
        if recorded != _sha256_hex(raw):
            # Refuse to install damaged bytes: a replica write that was
            # corrupted in flight must not become a serveable artifact.
            return {
                "ok": False,
                "key": key,
                "error": _error_payload(
                    "request",
                    "cache-put: blob does not match meta image_sha256",
                    key=key,
                ),
            }
        self.cache.put(key, raw, dict(meta))
        self.count("cache_puts")
        return {"ok": True, "op": "cache-put", "key": key, "bytes": len(raw)}

    def _cache_keys_response(self) -> Dict[str, Any]:
        """The memory-tier census a router streams off a draining
        backend: key, routing affinity (absent for artifacts compiled
        without a router), and blob size for budget arithmetic."""
        listing = []
        for key in self.cache.keys():
            entry = self.cache.peek(key)
            if entry is None:
                continue
            listing.append(
                {
                    "key": key,
                    "affinity": entry.meta.get("affinity"),
                    "bytes": len(entry.blob),
                }
            )
        return {"ok": True, "op": "cache-keys", "keys": listing}

    # -- workers --------------------------------------------------------------

    def _worker_loop(self) -> None:
        pipeline = PassPipeline(self.config)
        while not self._stop.is_set():
            job = self.queue.take(timeout=0.05)
            if job is None:
                continue
            if not job.claim():
                # Tombstoned by a timed-out submitter: skip without
                # running a single compiler stage.
                self.count("orphaned_skipped")
                continue
            if self.worker_delay_s:
                time.sleep(self.worker_delay_s)
            if job.deadline_at < time.monotonic():
                self.count("expired")
                job.finish(
                    {
                        "ok": False,
                        "error": _error_payload(
                            "deadline", "deadline expired while queued"
                        ),
                    }
                )
                self.count("answered")
                continue
            try:
                job.finish(self._process(pipeline, job.request))
            except Exception as err:  # the worker must never die
                job.finish(
                    {
                        "ok": False,
                        "error": _error_payload(
                            "request", f"{type(err).__name__}: {err}"
                        ),
                    }
                )
            self.count("answered")

    # -- request planning (shared by both worker tiers) ------------------------

    def prepare(
        self, request: Dict[str, Any], demote: bool = False
    ) -> Tuple[Optional[Dict[str, Any]], Optional[PreparedJob]]:
        """Validate and plan one compile request.

        Returns ``(response, None)`` when the request can be answered
        without a worker — malformed, quarantined as a poison pill, or a
        cache hit — and ``(None, prepared)`` when the cold path must
        run.  ``demote`` is the degraded-health policy: start no higher
        than the linear-scan rung so a struggling service sheds load
        onto cheap compiles instead of queueing expensive ones.
        """
        started = time.perf_counter()
        source = request.get("source")
        if not isinstance(source, str) or not source:
            return (
                {"ok": False, "error": _error_payload("request", "missing source")},
                None,
            )
        allocator = request.get("allocator", defaults.ALLOCATOR)
        if allocator not in _LADDER_ORDER:
            return (
                {
                    "ok": False,
                    "error": _error_payload(
                        "request", f"unknown allocator {allocator!r}"
                    ),
                },
                None,
            )
        k = int(request.get("k", defaults.K))
        schedule = bool(request.get("schedule", False))
        execute = bool(request.get("execute", True))
        deadline_ms = request.get("deadline_ms")
        rung, rung_reason = rung_for_deadline(
            allocator, deadline_ms, self.rung_policy
        )
        if demote and _LADDER_ORDER[rung] < _LADDER_ORDER["linearscan"]:
            rung = "linearscan"
            rung_reason += " [degraded: demoted to linearscan]"

        key = cache_key(source, rung, k, schedule, self.config)
        components = key_components(source, rung, k, schedule, self.config)
        quarantine_reason = self._quarantined.get(key)
        if quarantine_reason is not None:
            return (
                {
                    "ok": False,
                    "key": key,
                    "error": _error_payload(
                        "poison-pill",
                        f"compile key quarantined: {quarantine_reason}",
                        key=key,
                        strikes=self._strikes.get(key, 0),
                    ),
                },
                None,
            )
        # A compile that follows a warm_only probe (the router marks it
        # with the probed key) already counted its hit-or-miss once;
        # the second lookup is replication plumbing and stays out of
        # the telemetry.
        probed = request.get("probed")
        if isinstance(probed, str) and probed == key:
            entry = self.cache.fetch(key)
        else:
            entry = self.cache.get(key, components=components)
        if entry is not None:
            response = dict(entry.meta)
            response.update(
                {
                    "ok": True,
                    "key": key,
                    "cache": "hit",
                    "rung_start": rung,
                    "rung_reason": rung_reason,
                    "stages_run": [],
                    "wall_ms": (time.perf_counter() - started) * 1000.0,
                }
            )
            return response, None
        if request.get("warm_only"):
            # A replication probe: the router wants the warm answer or
            # the computed key (to read-repair from a replica) — never a
            # compile.  The miss above was already counted and
            # classified like any other.
            return (
                {
                    "ok": False,
                    "key": key,
                    "cache": "miss",
                    "rung_start": rung,
                    "rung_reason": rung_reason,
                    "error": _error_payload(
                        "replica-miss",
                        "not warm on this backend (warm_only probe)",
                        key=key,
                    ),
                },
                None,
            )
        chaos = request.get("chaos")
        affinity = request.get("affinity")
        return None, PreparedJob(
            key=key,
            components=components,
            rung=rung,
            rung_reason=rung_reason,
            source=source,
            k=k,
            schedule=schedule,
            execute=execute,
            entry=request.get("entry", "main"),
            max_cycles=request.get("max_cycles"),
            filename=request.get("filename", "<request>"),
            allocator_requested=allocator,
            chaos=chaos if isinstance(chaos, str) else None,
            started=started,
            affinity=affinity if isinstance(affinity, str) else None,
        )

    def assemble_cold_response(
        self,
        prepared: PreparedJob,
        body: Dict[str, Any],
        stages: Dict[str, Any],
        telemetry: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Cache the artifact from a completed cold compile and build the
        response.  ``body`` is :func:`compile_cold` output (blob under
        ``"_blob"``); ``stages`` the stage names that ran."""
        meta = dict(body)
        blob = meta.pop("_blob")
        if telemetry is not None:
            meta["telemetry"] = telemetry
        if prepared.affinity is not None:
            meta["affinity"] = prepared.affinity
        self.cache.put(
            prepared.key, blob, meta, components=prepared.components
        )
        response = dict(meta)
        response.update(
            {
                "ok": True,
                "key": prepared.key,
                "cache": "miss",
                "rung_start": prepared.rung,
                "rung_reason": prepared.rung_reason,
                "stages_run": sorted(stages),
                "wall_ms": (time.perf_counter() - prepared.started) * 1000.0,
            }
        )
        return response

    def assemble_error_response(
        self,
        prepared: PreparedJob,
        frozen: Dict[str, Any],
        stages: Sequence[str] = (),
    ) -> Dict[str, Any]:
        """An ``ok: false`` response for a cold path that failed — a
        pipeline :class:`StageError` or a typed worker failure."""
        return {
            "ok": False,
            "key": prepared.key,
            "cache": "miss",
            "rung_start": prepared.rung,
            "rung_reason": prepared.rung_reason,
            "stages_run": sorted(stages),
            "error": frozen,
            "wall_ms": (time.perf_counter() - prepared.started) * 1000.0,
        }

    def merge_stage_metrics(self, stages: Dict[str, Any]) -> None:
        """Fold one job's stage metrics into the server-lifetime
        aggregate (called by both worker tiers)."""
        with self._metrics_lock:
            self.metrics.merge(stages)

    def _process(
        self, pipeline: PassPipeline, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Thread-tier request body: plan, then cold-compile in-process."""
        response, prepared = self.prepare(request)
        if response is not None:
            return response
        assert prepared is not None
        collector = MetricsCollector()
        pipeline.metrics = collector
        try:
            body = compile_cold(pipeline, prepared.spec())
        except StageError as err:
            return self.assemble_error_response(
                prepared, err.freeze(), sorted(collector.stages)
            )
        finally:
            pipeline.metrics = None
            self.merge_stage_metrics(collector.stages)
        return self.assemble_cold_response(
            prepared, body, collector.stages, telemetry=collector.as_dict()
        )

    # -- stats ----------------------------------------------------------------

    def _stats_response(self) -> Dict[str, Any]:
        with self._metrics_lock:
            stages = self.metrics.as_dict()
            execute = self.metrics.stages.get("execute")
            interp_tiers = dict(sorted(execute.tiers.items())) if execute else {}
        with self._counter_lock:
            strikes = dict(self._strikes)
            quarantined = sorted(self._quarantined)
        response = {
            "ok": True,
            "op": "stats",
            "cache": self.cache.stats(),
            "stages": stages,
            # Interpreter-tier census over every executed request this
            # process has served (also present, per stage record, under
            # ``stages["execute"]["tiers"]``).
            "interp_tiers": interp_tiers,
            "requests": self._requests,
            "rejected": self._rejected,
            "expired": self._expired,
            "answered": self._answered,
            "cancelled": self._cancelled,
            "orphaned_skipped": self._orphaned_skipped,
            "cache_gets": self._cache_gets,
            "cache_puts": self._cache_puts,
            "queue_depth": len(self.queue),
            "workers": self._workers,
            "worker_mode": self.worker_mode,
            "health": self.health,
            "draining": self.draining,
            "poison_strikes": strikes,
            "quarantined": quarantined,
        }
        if self._supervisor is not None:
            response["supervisor"] = self._supervisor.stats()
        return response


def _sha256_hex(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


# ----------------------------------------------------------------------------
# The TCP layer
# ----------------------------------------------------------------------------


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # one connection, many JSON lines
        service: CompileService = self.server.service  # type: ignore[attr-defined]
        for line in self.rfile:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line.decode("utf-8"))
            except ValueError as err:
                response = {
                    "ok": False,
                    "error": _error_payload("request", f"bad json: {err}"),
                }
            else:
                response = service.submit(request)
            try:
                self.wfile.write(
                    json.dumps(response, sort_keys=True).encode("utf-8") + b"\n"
                )
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return


class CompileServer(socketserver.ThreadingTCPServer):
    """TCP front of a :class:`CompileService`.  One handler thread per
    connection; handlers block in ``service.submit`` while the worker
    pool does the work, so slow compiles never block the accept loop."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: CompileService):
        super().__init__(address, _Handler)
        self.service = service
        service.start()

    def drain_and_shutdown(self, timeout: float = 30.0) -> None:
        self.service.drain(timeout)
        self.shutdown()


def build_serve_parser() -> argparse.ArgumentParser:
    """The ``repro serve`` argument parser.

    A factory (not module state) so the defaults-audit and docs-check
    tests can introspect flags and defaults; every default interpolates
    :mod:`repro.service.defaults` so ``--help`` cannot drift from the
    implementation.
    """
    parser = argparse.ArgumentParser(
        prog="repro serve", description="compile-as-a-service daemon"
    )
    parser.add_argument("--host", default=defaults.HOST)
    parser.add_argument("--port", type=int, default=defaults.PORT)
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker count (default: one per core for --worker-mode "
             f"process, {defaults.THREAD_WORKERS} for threads)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=defaults.QUEUE_LIMIT
    )
    parser.add_argument(
        "--worker-mode", choices=("thread", "process"),
        default=defaults.WORKER_MODE,
        help=f"{defaults.WORKER_MODE} (default): crash-isolated "
             "supervised children; thread: in-process daemon threads",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job watchdog: a compile running longer is SIGKILLed "
             f"and answered worker-timeout (default: "
             f"{defaults.JOB_TIMEOUT_S:.0f})",
    )
    parser.add_argument(
        "--storm-window", type=float, default=None, metavar="SECONDS",
        help="restart-storm circuit-breaker window (default: "
             f"{defaults.STORM_WINDOW_S:.0f})",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="honor per-request chaos crash/hang probes (chaos "
             "harness and CI only — never in production)",
    )
    parser.add_argument(
        "--cache-bytes", type=int, default=None, metavar="N",
        help="in-memory artifact budget (default: "
             f"{defaults.CACHE_BYTES // (1024 * 1024)} MiB)",
    )
    parser.add_argument(
        "--cache-shards", type=int, default=None, metavar="N",
        help="artifact-cache lock shards (default: "
             f"{defaults.CACHE_SHARDS})",
    )
    parser.add_argument(
        "--persist-dir", default=None, metavar="DIR",
        help="also persist artifacts to DIR (survives restarts)",
    )
    return parser


def serve(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro serve``: run the daemon until SIGTERM/SIGINT."""
    args = build_serve_parser().parse_args(argv)

    cache_kwargs: Dict[str, Any] = {}
    if args.cache_bytes is not None:
        cache_kwargs["max_bytes"] = args.cache_bytes
    if args.cache_shards is not None:
        cache_kwargs["shards"] = args.cache_shards
    if args.persist_dir is not None:
        cache_kwargs["persist_dir"] = args.persist_dir
    workers = args.workers
    if workers is None:
        if args.worker_mode == "process":
            from ..bench.parallel import default_jobs

            workers = default_jobs()
        else:
            workers = defaults.THREAD_WORKERS
    from .workers import Supervision

    supervision = Supervision(
        **{
            name: value
            for name, value in (
                ("job_timeout_s", args.job_timeout),
                ("storm_window_s", args.storm_window),
            )
            if value is not None
        }
    )
    service = CompileService(
        cache=ArtifactCache(**cache_kwargs),
        workers=workers,
        queue_limit=args.queue_limit,
        worker_mode=args.worker_mode,
        supervision=supervision,
        chaos_enabled=args.chaos,
    )
    server = CompileServer((args.host, args.port), service)
    service.close_fds_in_workers(server.fileno())
    host, port = server.server_address[:2]
    print(f"repro service listening on {host}:{port} "
          f"({workers} {args.worker_mode} workers, "
          f"queue {args.queue_limit}"
          f"{', CHAOS ENABLED' if args.chaos else ''})", flush=True)

    def _drain(signum, frame):  # pragma: no cover - signal path
        print("draining...", flush=True)
        threading.Thread(
            target=server.drain_and_shutdown, daemon=True
        ).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
    print("drained; bye", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(serve())
