"""The compile-and-execute daemon.

Wire protocol: JSON lines over TCP.  A client sends one JSON object per
line and receives one JSON object per line, over a connection it may
hold open for many requests.  Operations:

``{"op": "compile", "source": ..., "allocator": "rap", "k": 5, ...}``
    Compile, allocate (walking the fallback ladder), optionally execute,
    and return the artifact summary.  Optional fields: ``schedule``
    (run the validated list-scheduler stage), ``execute`` (default
    true), ``entry`` (default ``"main"``), ``max_cycles``,
    ``deadline_ms`` (admission + rung policy, below).
``{"op": "stats"}``
    Cache counters plus the server-lifetime per-stage telemetry
    aggregate (:class:`~repro.resilience.telemetry.MetricsCollector`).
``{"op": "ping"}``
    Liveness.

Responses carry ``"ok"``; failures put a *frozen*
:class:`~repro.resilience.errors.StageError` payload under ``"error"``
(:meth:`StageError.freeze`), which :mod:`repro.service.client` thaws
back into the proper exception subclass — a remote
``MotionValidationError`` is catchable as one.  Non-pipeline failures
(admission rejection, expired deadlines, malformed requests) use the
same payload shape with synthetic kinds ``admission`` / ``deadline`` /
``request``.

Admission and deadlines
-----------------------

Requests enter a bounded earliest-deadline-first queue.  A full queue
rejects immediately (``admission`` error) — the closed-loop clients
back off; the queue never grows without bound.  Each worker pops the
job whose absolute deadline is earliest (deadline-less jobs sort last,
FIFO among themselves), so under saturation a tight-deadline request
overtakes queued generous ones instead of starving behind them.  A job
whose deadline has already passed when a worker picks it up is answered
with a ``deadline`` error without running any compiler stage.

The deadline also picks the *starting rung* of the allocator ladder
(:data:`DEFAULT_RUNG_POLICY`): a tight deadline goes straight to linear
scan, a moderate one starts at GRA, a generous or absent one runs full
RAP.  The policy only ever downgrades — a request for ``gra`` with a
generous deadline still starts at GRA — and the response records the
rung chosen and why (``rung_reason``).

Shutdown
--------

``drain()`` (wired to SIGTERM/SIGINT by :func:`serve`) stops admitting,
lets the queue empty and in-flight work finish, then stops the workers
and the listener.  In-flight clients get their responses; late arrivals
get an ``admission`` error mentioning the drain.
"""

from __future__ import annotations

import argparse
import hashlib
import heapq
import json
import signal
import socketserver
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..compiler import param_slots
from ..interp.machine import FunctionImage, ProgramImage
from ..interp.serialize import dumps_image
from ..resilience.errors import StageError
from ..resilience.fallback import FallbackEvent, chain_for
from ..resilience.pipeline import PassPipeline, PipelineConfig
from ..resilience.telemetry import MetricsCollector
from .cache import ArtifactCache, cache_key

#: (deadline ceiling in ms, starting rung).  Scanned in order; the first
#: ceiling the deadline fits under wins.  No deadline, or one above every
#: ceiling, starts at the requested allocator (full RAP by default).
DEFAULT_RUNG_POLICY: Tuple[Tuple[float, str], ...] = (
    (250.0, "linearscan"),
    (1000.0, "gra"),
)

#: Ladder position, for "never upgrade past the request" comparisons.
_LADDER_ORDER = {"rap": 0, "gra": 1, "linearscan": 2, "spillall": 3}

#: How long a handler waits for its job beyond the job's own deadline —
#: covers the worker's bookkeeping after the deadline check.
_GRACE_S = 60.0

_DEFAULT_WAIT_S = 300.0


def rung_for_deadline(
    requested: str,
    deadline_ms: Optional[float],
    policy: Sequence[Tuple[float, str]] = DEFAULT_RUNG_POLICY,
) -> Tuple[str, str]:
    """The ladder rung to start from, and a human-readable reason.

    Only ever moves *down* the ladder from ``requested``: a request for
    ``linearscan`` is never upgraded to GRA by a generous deadline.
    """
    if deadline_ms is None:
        return requested, "no deadline: requested allocator"
    for ceiling, rung in policy:
        if deadline_ms <= ceiling:
            if _LADDER_ORDER[rung] > _LADDER_ORDER[requested]:
                return (
                    rung,
                    f"deadline {deadline_ms:.0f}ms <= {ceiling:.0f}ms: "
                    f"start at {rung}",
                )
            return requested, (
                f"deadline {deadline_ms:.0f}ms <= {ceiling:.0f}ms but "
                f"{requested} is already that cheap"
            )
    return requested, f"deadline {deadline_ms:.0f}ms: generous, full {requested}"


def _error_payload(kind: str, message: str, **extra: Any) -> Dict[str, Any]:
    """A frozen-StageError-shaped payload for non-pipeline failures, so
    clients handle every error through one code path."""
    return {
        "kind": kind,
        "message": message,
        "context": {"stage": kind, "extra": extra} if extra else {"stage": kind},
        "cause": None,
    }


@dataclass(order=True)
class _Job:
    """One queued request.  Orders by (deadline, sequence): earliest
    deadline first, FIFO among equal/absent deadlines."""

    deadline_at: float  # monotonic seconds; +inf when no deadline
    seq: int
    request: Dict[str, Any] = field(compare=False)
    done: threading.Event = field(compare=False, default_factory=threading.Event)
    response: Optional[Dict[str, Any]] = field(compare=False, default=None)

    def finish(self, response: Dict[str, Any]) -> None:
        self.response = response
        self.done.set()


class DeadlineQueue:
    """A bounded blocking priority queue ordered by absolute deadline."""

    def __init__(self, limit: int):
        self.limit = limit
        self._heap: List[_Job] = []
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self._seq = 0

    def offer(self, job: _Job) -> bool:
        """Admit the job, or refuse immediately when full."""
        with self._lock:
            if len(self._heap) >= self.limit:
                return False
            job.seq = self._seq = self._seq + 1
            heapq.heappush(self._heap, job)
            self._nonempty.notify()
            return True

    def take(self, timeout: Optional[float] = None) -> Optional[_Job]:
        """The earliest-deadline job, blocking up to ``timeout``."""
        with self._nonempty:
            if not self._heap:
                self._nonempty.wait(timeout)
            if not self._heap:
                return None
            return heapq.heappop(self._heap)

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)


class CompileService:
    """The daemon's engine, socket-free (the TCP layer is below).

    ``workers`` threads pull from the deadline queue; each owns a
    :class:`PassPipeline` (pipelines keep no cross-request state beyond
    the config, but the per-worker instance keeps the metrics swap
    race-free).  ``worker_delay_s`` injects a fixed per-job stall — a
    chaos/load-testing knob used by the saturation tests and soak runs,
    zero in production.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        cache: Optional[ArtifactCache] = None,
        workers: int = 2,
        queue_limit: int = 32,
        rung_policy: Sequence[Tuple[float, str]] = DEFAULT_RUNG_POLICY,
        worker_delay_s: float = 0.0,
    ):
        self.config = config or PipelineConfig()
        # `cache or ...` would discard a provided cache: an *empty*
        # ArtifactCache is falsy (it has __len__).
        self.cache = cache if cache is not None else ArtifactCache()
        self.queue = DeadlineQueue(queue_limit)
        self.rung_policy = tuple(rung_policy)
        self.worker_delay_s = worker_delay_s
        self.metrics = MetricsCollector()
        self._metrics_lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._started = False
        self._requests = 0
        self._rejected = 0
        self._expired = 0
        self._workers = workers

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for index in range(self._workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"compile-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def drain(self, timeout: float = 30.0) -> None:
        """Stop admitting, finish queued and in-flight work, stop workers."""
        self._draining.set()
        deadline = time.monotonic() + timeout
        while len(self.queue) and time.monotonic() < deadline:
            time.sleep(0.01)
        self._stop.set()
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()) + 1.0)
        self._threads = []
        self._started = False

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    # -- request entry points -------------------------------------------------

    def submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Admission + synchronous wait: the handler-thread entry point.

        ``stats`` and ``ping`` answer inline (they must work even when
        the queue is saturated — that is when you need them); compile
        requests go through the deadline queue.
        """
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "stats":
            return self._stats_response()
        if op != "compile":
            return {
                "ok": False,
                "error": _error_payload("request", f"unknown op {op!r}"),
            }
        if self._draining.is_set():
            self._rejected += 1
            return {
                "ok": False,
                "error": _error_payload(
                    "admission", "server is draining", draining=True
                ),
            }
        deadline_ms = request.get("deadline_ms")
        deadline_at = (
            float("inf")
            if deadline_ms is None
            else time.monotonic() + float(deadline_ms) / 1000.0
        )
        job = _Job(deadline_at=deadline_at, seq=0, request=request)
        self._requests += 1
        if not self.queue.offer(job):
            self._rejected += 1
            return {
                "ok": False,
                "error": _error_payload(
                    "admission",
                    f"queue full ({self.queue.limit} waiting)",
                    queue_limit=self.queue.limit,
                ),
            }
        wait_s = (
            _DEFAULT_WAIT_S
            if deadline_ms is None
            else float(deadline_ms) / 1000.0 + _GRACE_S
        )
        if not job.done.wait(wait_s):
            return {
                "ok": False,
                "error": _error_payload(
                    "deadline", "request timed out waiting for a worker"
                ),
            }
        assert job.response is not None
        return job.response

    # -- workers --------------------------------------------------------------

    def _worker_loop(self) -> None:
        pipeline = PassPipeline(self.config)
        while not self._stop.is_set():
            job = self.queue.take(timeout=0.05)
            if job is None:
                continue
            if self.worker_delay_s:
                time.sleep(self.worker_delay_s)
            if job.deadline_at < time.monotonic():
                self._expired += 1
                job.finish(
                    {
                        "ok": False,
                        "error": _error_payload(
                            "deadline", "deadline expired while queued"
                        ),
                    }
                )
                continue
            try:
                job.finish(self._process(pipeline, job.request))
            except Exception as err:  # the worker must never die
                job.finish(
                    {
                        "ok": False,
                        "error": _error_payload(
                            "request", f"{type(err).__name__}: {err}"
                        ),
                    }
                )

    def _process(
        self, pipeline: PassPipeline, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        started = time.perf_counter()
        source = request.get("source")
        if not isinstance(source, str) or not source:
            return {
                "ok": False,
                "error": _error_payload("request", "missing source"),
            }
        allocator = request.get("allocator", "rap")
        if allocator not in _LADDER_ORDER:
            return {
                "ok": False,
                "error": _error_payload(
                    "request", f"unknown allocator {allocator!r}"
                ),
            }
        k = int(request.get("k", 5))
        schedule = bool(request.get("schedule", False))
        execute = bool(request.get("execute", True))
        deadline_ms = request.get("deadline_ms")
        rung, rung_reason = rung_for_deadline(
            allocator, deadline_ms, self.rung_policy
        )

        key = cache_key(source, rung, k, schedule, self.config)
        collector = MetricsCollector()
        entry = self.cache.get(key)
        if entry is not None:
            response = dict(entry.meta)
            response.update(
                {
                    "ok": True,
                    "key": key,
                    "cache": "hit",
                    "rung_start": rung,
                    "rung_reason": rung_reason,
                    "stages_run": [],
                    "wall_ms": (time.perf_counter() - started) * 1000.0,
                }
            )
            return response

        pipeline.metrics = collector
        try:
            response = self._compile_cold(
                pipeline, source, rung, k, schedule, execute, request
            )
        except StageError as err:
            return {
                "ok": False,
                "key": key,
                "cache": "miss",
                "rung_start": rung,
                "rung_reason": rung_reason,
                "stages_run": sorted(collector.stages),
                "error": err.freeze(),
                "wall_ms": (time.perf_counter() - started) * 1000.0,
            }
        finally:
            pipeline.metrics = None
            with self._metrics_lock:
                self.metrics.merge(collector.stages)

        meta = dict(response)
        meta["telemetry"] = collector.as_dict()
        blob = response.pop("_blob")
        meta.pop("_blob")
        self.cache.put(key, blob, meta)
        response = meta
        response.update(
            {
                "ok": True,
                "key": key,
                "cache": "miss",
                "rung_start": rung,
                "rung_reason": rung_reason,
                "stages_run": sorted(collector.stages),
                "wall_ms": (time.perf_counter() - started) * 1000.0,
            }
        )
        return response

    def _compile_cold(
        self,
        pipeline: PassPipeline,
        source: str,
        rung: str,
        k: int,
        schedule: bool,
        execute: bool,
        request: Dict[str, Any],
    ) -> Dict[str, Any]:
        """Full parse -> ... -> allocate (ladder walk) [-> execute]."""
        prog = pipeline.compile(source, filename=request.get("filename", "<request>"))
        attempts = chain_for(rung)
        fallbacks: List[FallbackEvent] = []
        image: Optional[ProgramImage] = None
        used = rung
        for position, attempt in enumerate(attempts):
            module = prog.fresh_module()
            functions: Dict[str, FunctionImage] = {}
            try:
                for name, func in module.functions.items():
                    result = pipeline.allocate(
                        func, attempt, k, schedule=schedule
                    )
                    functions[name] = FunctionImage(
                        name, result.code, param_slots(func)
                    )
            except StageError as err:
                if position == len(attempts) - 1:
                    raise
                fallbacks.append(
                    FallbackEvent(attempt, err.stage, err.message)
                )
                continue
            image = ProgramImage(list(module.globals.values()), functions)
            used = attempt
            break
        assert image is not None  # last rung re-raises instead of falling out

        blob = dumps_image(image)
        response: Dict[str, Any] = {
            "_blob": blob,
            "allocator_requested": request.get("allocator", "rap"),
            "allocator_used": used,
            "k": k,
            "schedule": schedule,
            "fallbacks": [event.as_dict() for event in fallbacks],
            "image_sha256": _sha256_hex(blob),
            "image_bytes": len(blob),
        }
        if execute:
            stats = pipeline.execute(
                image,
                entry=request.get("entry", "main"),
                max_cycles=request.get("max_cycles"),
                allocator=used,
                k=k,
            )
            response["output"] = stats.output
            response["cycles"] = stats.total.cycles
        return response

    # -- stats ----------------------------------------------------------------

    def _stats_response(self) -> Dict[str, Any]:
        with self._metrics_lock:
            stages = self.metrics.as_dict()
        return {
            "ok": True,
            "op": "stats",
            "cache": self.cache.stats(),
            "stages": stages,
            "requests": self._requests,
            "rejected": self._rejected,
            "expired": self._expired,
            "queue_depth": len(self.queue),
            "workers": self._workers,
            "draining": self.draining,
        }


def _sha256_hex(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


# ----------------------------------------------------------------------------
# The TCP layer
# ----------------------------------------------------------------------------


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # one connection, many JSON lines
        service: CompileService = self.server.service  # type: ignore[attr-defined]
        for line in self.rfile:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line.decode("utf-8"))
            except ValueError as err:
                response = {
                    "ok": False,
                    "error": _error_payload("request", f"bad json: {err}"),
                }
            else:
                response = service.submit(request)
            try:
                self.wfile.write(
                    json.dumps(response, sort_keys=True).encode("utf-8") + b"\n"
                )
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return


class CompileServer(socketserver.ThreadingTCPServer):
    """TCP front of a :class:`CompileService`.  One handler thread per
    connection; handlers block in ``service.submit`` while the worker
    pool does the work, so slow compiles never block the accept loop."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: CompileService):
        super().__init__(address, _Handler)
        self.service = service
        service.start()

    def drain_and_shutdown(self, timeout: float = 30.0) -> None:
        self.service.drain(timeout)
        self.shutdown()


def serve(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro serve``: run the daemon until SIGTERM/SIGINT."""
    parser = argparse.ArgumentParser(
        prog="repro serve", description="compile-as-a-service daemon"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9363)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue-limit", type=int, default=32)
    parser.add_argument(
        "--cache-bytes", type=int, default=None, metavar="N",
        help="in-memory artifact budget (default: 64 MiB)",
    )
    parser.add_argument(
        "--persist-dir", default=None, metavar="DIR",
        help="also persist artifacts to DIR (survives restarts)",
    )
    args = parser.parse_args(argv)

    cache_kwargs: Dict[str, Any] = {}
    if args.cache_bytes is not None:
        cache_kwargs["max_bytes"] = args.cache_bytes
    if args.persist_dir is not None:
        cache_kwargs["persist_dir"] = args.persist_dir
    service = CompileService(
        cache=ArtifactCache(**cache_kwargs),
        workers=args.workers,
        queue_limit=args.queue_limit,
    )
    server = CompileServer((args.host, args.port), service)
    host, port = server.server_address[:2]
    print(f"repro service listening on {host}:{port} "
          f"({args.workers} workers, queue {args.queue_limit})", flush=True)

    def _drain(signum, frame):  # pragma: no cover - signal path
        print("draining...", flush=True)
        threading.Thread(
            target=server.drain_and_shutdown, daemon=True
        ).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
    print("drained; bye", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(serve())
