"""Ring membership from the operator's terminal: ``repro router-admin``.

The router (PR 7) froze its backend set at start; replication (this
subsystem) made membership *mutable* — and this tool is the mutation
surface.  Three verbs map onto the router's admin ops:

``add HOST:PORT``
    Put a new (or restarted) daemon on the ring.  It starts taking its
    arcs immediately; read-repair warms it on first touch.
``remove HOST:PORT``
    Drop a daemon abruptly — ring and roster at once.  Its cached
    artifacts are abandoned (replicas still hold them under R > 1).
``drain HOST:PORT``
    The graceful exit: stop routing new keys to the daemon, stream its
    still-cached artifacts to their new owners, then forget it.  The
    building block of a rolling restart (docs/OPERATIONS.md has the
    runbook).
``generation``
    Print the current ring generation and per-backend ownership share —
    what an operator reads before a guarded mutation.

Every mutating verb accepts ``--expect-generation N``: the op is
refused with a typed ``ring-generation-skew`` error when the ring has
moved past ``N`` — two operators, one ring, and the second sees a
refusal instead of silently clobbering the first.

Exit status is 0 when the router answered ``ok``, 1 for a typed
refusal or unreachable router, 2 for a usage error.  The raw response
is printed as JSON so scripts can parse it.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Optional, Sequence

from . import defaults
from .client import ServiceClient, ServiceError


def _parse_address(spec: str) -> tuple:
    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"address must be HOST:PORT, got {spec!r}")
    return host, int(port)


def build_admin_parser() -> argparse.ArgumentParser:
    """The ``repro router-admin`` argument parser (defaults
    single-sourced in :mod:`repro.service.defaults`)."""
    parser = argparse.ArgumentParser(
        prog="repro router-admin",
        description="mutate a live router's backend ring",
    )
    parser.add_argument(
        "--router",
        default=f"{defaults.HOST}:{defaults.ROUTER_PORT}",
        metavar="HOST:PORT",
        help="the router to administer "
             f"(default: {defaults.HOST}:{defaults.ROUTER_PORT})",
    )
    parser.add_argument(
        "--timeout", type=float, default=defaults.CLIENT_TIMEOUT_S,
        metavar="SECONDS",
        help="per-op round-trip timeout "
             f"(default: {defaults.CLIENT_TIMEOUT_S:g})",
    )
    parser.add_argument(
        "--expect-generation", type=int, default=None, metavar="N",
        help="refuse the op (ring-generation-skew) unless the ring is "
             "still at generation N",
    )
    commands = parser.add_subparsers(dest="command", metavar="COMMAND")
    for verb, summary in (
        ("add", "put a backend on the ring"),
        ("remove", "drop a backend abruptly (artifacts abandoned)"),
        ("drain", "stream a backend's artifacts out, then drop it"),
    ):
        sub = commands.add_parser(verb, help=summary)
        sub.add_argument("backend", metavar="HOST:PORT")
    commands.add_parser(
        "generation", help="print ring generation and ownership shares"
    )
    return parser


def _request_for(args: argparse.Namespace) -> Dict[str, Any]:
    request: Dict[str, Any] = {
        "op": f"backend-{args.command}",
        "backend": args.backend,
    }
    if args.expect_generation is not None:
        request["expect_generation"] = args.expect_generation
    return request


def _print_generation(stats: Dict[str, Any]) -> None:
    router = stats.get("router", {})
    print(f"ring generation {router.get('ring_generation')}")
    print(
        f"replication {router.get('replication')}  "
        f"vnodes {router.get('vnodes')}"
    )
    for snap in stats.get("backends", []):
        ring = snap.get("ring", {})
        state = "healthy" if snap.get("healthy") else "UNHEALTHY"
        print(
            f"  {snap['name']}: {state}, {ring.get('vnodes', 0)} vnodes, "
            f"{ring.get('keyspace_fraction', 0.0):.1%} of keyspace"
        )


def admin_main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro router-admin``: one admin op, one exit code."""
    parser = build_admin_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_usage(sys.stderr)
        return 2
    try:
        host, port = _parse_address(args.router)
        if args.command != "generation":
            _parse_address(args.backend)  # fail fast, before connecting
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    try:
        with ServiceClient(host, port, timeout=args.timeout) as client:
            if args.command == "generation":
                response = client.request({"op": "stats"})
                if response.get("ok"):
                    if not isinstance(response.get("router"), dict):
                        print(
                            f"error: {args.router} answers stats but is "
                            "not a router (a backend daemon?)",
                            file=sys.stderr,
                        )
                        return 1
                    _print_generation(response)
                    return 0
            else:
                response = client.request(_request_for(args))
    except (ServiceError, OSError) as err:
        print(f"error: router {args.router} unreachable: {err}", file=sys.stderr)
        return 1
    print(json.dumps(response, sort_keys=True))
    return 0 if response.get("ok") else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(admin_main())
