"""The consistent-hash front end: ``python -m repro router``.

One router process sits in front of N backend ``serve`` daemons and
speaks the same JSON-lines protocol on both sides, so every existing
client — :class:`~repro.service.client.ServiceClient`, ``repro
request``, ``repro loadgen`` — points at the router unchanged.

Routing
-------

Each compile request is hashed to a position on a sha256 ring
(:class:`HashRing`): every backend owns
:data:`~repro.service.defaults.ROUTER_VNODES` *virtual nodes* —
positions derived from ``sha256("host:port#i")`` — and a request lands
on the first virtual node at or after its own hash, wrapping at the
top.  Virtual nodes smooth the load split (a single node per backend
would partition the ring into a few large, uneven arcs), and
consistent hashing keeps the map stable under membership change:
removing a backend reassigns *only the arcs it owned*, so the other
backends' artifact caches stay warm — the property that makes compile
keys shardable across daemons at all.

The routing hash covers ``(source, allocator, k, schedule)`` — the
request identity, not the full artifact key.  The backend derives the
artifact key itself (folding in deadline-driven rung demotion, pipeline
config, and its code fingerprint); the router only needs *affinity*:
the same request always reaches the same backend, so repeats hit that
backend's cache.

Failover
--------

A forwarding failure whose kind is connection-shaped (``transport`` /
``timeout``, or a failed connect) moves the request to the next
*distinct* backend along the ring — warm affinity is lost for that
request, but it is answered.  Server-*answered* errors (``admission``,
a pipeline failure, ``poison-pill``…) are passed through verbatim: the
backend spoke, and the router does not second-guess typed answers.
Forwarding to a possibly-dead backend can re-send a compile that
actually ran — safe for the same reason client retries are: compiles
are idempotent and artifacts content-addressed.  When every backend has
been tried the client gets a typed ``no-backend`` error (retryable:
backends respawn underneath a live router).

A background prober pings every backend each
:data:`~repro.service.defaults.ROUTER_PROBE_INTERVAL_S`;
:data:`~repro.service.defaults.ROUTER_PROBE_FAILURES` *consecutive*
failures — probes and forwarding failures both count — mark a backend
unhealthy, and unhealthy backends are skipped during routing (tried
last-resort only when no healthy backend remains).  One successful
probe restores health: a restarted backend starts taking its arcs back
within a probe interval, cold but correct.

Responses gain two router fields: ``backend`` (which daemon answered)
and ``router_failovers`` (ring hops this request took, 0 on the happy
path).  The ``stats`` op answers with router-level accounting plus each
backend's own live ``stats`` response and an aggregated cache summary —
one screen for the whole deployment (docs/OPERATIONS.md shows how to
read it).
"""

from __future__ import annotations

import argparse
import bisect
import hashlib
import json
import signal
import socketserver
import sys
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from . import defaults
from .client import ServiceClient, ServiceError
from .server import _error_payload

#: Forwarding failures that mean "the backend did not answer" — only
#: these trigger failover; everything else is a real answer.
_FAILOVER_KINDS = frozenset({"transport", "timeout"})


def affinity_key(request: Dict[str, Any]) -> str:
    """The ring-position digest for one compile request: sha256 over the
    request identity (source, allocator, k, schedule).  Deliberately
    narrower than the artifact key — see the module docstring."""
    payload = {
        "source": request.get("source", ""),
        "allocator": request.get("allocator", defaults.ALLOCATOR),
        "k": request.get("k", defaults.K),
        "schedule": bool(request.get("schedule", False)),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class HashRing:
    """A consistent-hash ring over named nodes with virtual nodes.

    Positions are the leading 64 bits of ``sha256(f"{node}#{i}")``.
    Lookup is a binary search over the sorted positions —
    O(log(nodes x vnodes)) per request, no locks (the ring is immutable
    after construction; membership *health* is tracked outside it).
    """

    def __init__(self, nodes: Sequence[str], vnodes: int = defaults.ROUTER_VNODES):
        if not nodes:
            raise ValueError("ring needs at least one node")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.nodes = tuple(nodes)
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for node in self.nodes:
            for index in range(vnodes):
                digest = hashlib.sha256(f"{node}#{index}".encode()).digest()
                points.append((int.from_bytes(digest[:8], "big"), node))
        points.sort()
        self._positions = [position for position, _ in points]
        self._owners = [node for _, node in points]

    @staticmethod
    def _position(key: str) -> int:
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def primary(self, key: str) -> str:
        """The node owning ``key``'s arc."""
        return next(self.successors(key))

    def successors(self, key: str) -> Iterator[str]:
        """Every node, in ring order from ``key``'s position, each
        yielded once — the failover sequence."""
        start = bisect.bisect_left(self._positions, self._position(key))
        seen = set()
        count = len(self._owners)
        for step in range(count):
            owner = self._owners[(start + step) % count]
            if owner not in seen:
                seen.add(owner)
                yield owner
                if len(seen) == len(self.nodes):
                    return


class Backend:
    """One backend daemon: address, health, and routing counters."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self.name = f"{host}:{port}"
        self._lock = threading.Lock()
        self._healthy = True
        self._consecutive_failures = 0
        self.routed = 0  # requests this backend answered
        self.failed = 0  # forwarding attempts it did not answer

    @property
    def healthy(self) -> bool:
        with self._lock:
            return self._healthy

    def note_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._healthy = True

    def note_failure(self, threshold: int, forwarding: bool = False) -> None:
        with self._lock:
            if forwarding:
                self.failed += 1
            self._consecutive_failures += 1
            if self._consecutive_failures >= threshold:
                self._healthy = False

    def note_routed(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._healthy = True
            self.routed += 1

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "name": self.name,
                "healthy": self._healthy,
                "consecutive_failures": self._consecutive_failures,
                "routed": self.routed,
                "failed": self.failed,
            }


def _parse_backend(spec: str) -> Tuple[str, int]:
    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"backend must be HOST:PORT, got {spec!r}")
    return host, int(port)


class RouterService:
    """The routing engine, socket-free (mirrors
    :class:`~repro.service.server.CompileService` below the TCP layer).

    Handler threads call :meth:`handle`; each keeps its own per-backend
    :class:`ServiceClient` in thread-local storage, so forwarding never
    serializes on a shared connection and a poisoned connection hurts
    only the thread that owns it.
    """

    def __init__(
        self,
        backends: Sequence[Tuple[str, int]],
        vnodes: int = defaults.ROUTER_VNODES,
        probe_interval_s: float = defaults.ROUTER_PROBE_INTERVAL_S,
        probe_failures: int = defaults.ROUTER_PROBE_FAILURES,
        timeout: float = defaults.CLIENT_TIMEOUT_S,
    ):
        if not backends:
            raise ValueError("router needs at least one backend")
        self.backends = {
            f"{host}:{port}": Backend(host, port) for host, port in backends
        }
        if len(self.backends) != len(backends):
            raise ValueError("duplicate backend address")
        self.ring = HashRing(sorted(self.backends), vnodes=vnodes)
        self.probe_interval_s = probe_interval_s
        self.probe_failures = probe_failures
        self.timeout = timeout
        self._local = threading.local()
        self._counter_lock = threading.Lock()
        self._requests = 0
        self._forwarded = 0
        self._failovers = 0
        self._no_backend = 0
        self._stop = threading.Event()
        self._prober: Optional[threading.Thread] = None
        self._started = time.monotonic()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self._prober is not None:
            return
        self._prober = threading.Thread(
            target=self._probe_loop, name="router-prober", daemon=True
        )
        self._prober.start()

    def stop(self) -> None:
        self._stop.set()
        if self._prober is not None:
            self._prober.join(self.probe_interval_s + 1.0)
            self._prober = None

    # -- health probing -------------------------------------------------------

    def _probe_loop(self) -> None:
        while not self._stop.wait(self.probe_interval_s):
            for backend in self.backends.values():
                self.probe(backend)

    def probe(self, backend: Backend) -> bool:
        """One liveness ping, on a short-lived connection so a wedged
        backend cannot pin the prober's socket."""
        try:
            with ServiceClient(
                backend.host, backend.port, timeout=self.probe_interval_s
            ) as client:
                alive = client.ping()
        except (ServiceError, OSError):
            alive = False
        if alive:
            backend.note_success()
        else:
            backend.note_failure(self.probe_failures)
        return alive

    # -- forwarding -----------------------------------------------------------

    def _client(self, backend: Backend) -> ServiceClient:
        clients = getattr(self._local, "clients", None)
        if clients is None:
            clients = self._local.clients = {}
        client = clients.get(backend.name)
        if client is None:
            client = ServiceClient(
                backend.host, backend.port, timeout=self.timeout
            )
            clients[backend.name] = client
        return client

    def _drop_client(self, backend: Backend) -> None:
        clients = getattr(self._local, "clients", None)
        if clients is not None:
            client = clients.pop(backend.name, None)
            if client is not None:
                client.close()

    def _count(self, counter: str, delta: int = 1) -> None:
        with self._counter_lock:
            setattr(self, f"_{counter}", getattr(self, f"_{counter}") + delta)

    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Route one request object to its answer — always returns,
        never raises (the exactly-one-typed-answer contract)."""
        self._count("requests")
        op = request.get("op")
        if op == "ping":
            healthy = sum(1 for b in self.backends.values() if b.healthy)
            return {
                "ok": True,
                "op": "ping",
                "router": True,
                "backends_healthy": healthy,
                "backends_total": len(self.backends),
            }
        if op == "stats":
            return self._stats_response()
        if op != "compile":
            return {
                "ok": False,
                "error": _error_payload("request", f"unknown op {op!r}"),
            }
        return self._forward(request)

    def _forward(self, request: Dict[str, Any]) -> Dict[str, Any]:
        order = [
            self.backends[name]
            for name in self.ring.successors(affinity_key(request))
        ]
        # Healthy backends first, in ring order; unhealthy ones only as
        # a last resort (the probe may simply not have noticed a
        # recovery yet).
        attempts = [b for b in order if b.healthy] or order
        failovers = 0
        for backend in attempts:
            try:
                response = self._client(backend).request(request)
            except ServiceError as err:
                if err.kind not in _FAILOVER_KINDS:
                    # protocol: the backend answered garbage — surface
                    # it; replaying elsewhere hides a real bug.
                    return {"ok": False, "error": err.payload}
                self._drop_client(backend)
                backend.note_failure(self.probe_failures, forwarding=True)
                failovers += 1
                self._count("failovers")
                continue
            except OSError:
                # connect failed before a ServiceClient existed
                backend.note_failure(self.probe_failures, forwarding=True)
                failovers += 1
                self._count("failovers")
                continue
            backend.note_routed()
            self._count("forwarded")
            if isinstance(response, dict):
                response.setdefault("backend", backend.name)
                response["router_failovers"] = failovers
            return response
        self._count("no_backend")
        return {
            "ok": False,
            "router_failovers": failovers,
            "error": _error_payload(
                "no-backend",
                f"all {len(self.backends)} backends unreachable",
                backends=sorted(self.backends),
            ),
        }

    # -- stats ----------------------------------------------------------------

    def _stats_response(self) -> Dict[str, Any]:
        backends: List[Dict[str, Any]] = []
        cache_totals = {
            "entries": 0, "bytes": 0, "hits": 0, "misses": 0,
            "disk_hits": 0, "evictions": 0,
        }
        miss_kinds: Dict[str, int] = {}
        for name in sorted(self.backends):
            backend = self.backends[name]
            snap = backend.snapshot()
            try:
                live = self._client(backend).request({"op": "stats"})
            except (ServiceError, OSError):
                self._drop_client(backend)
                live = None
            if live is not None and live.get("ok"):
                snap["stats"] = live
                cache = live.get("cache", {})
                for field in cache_totals:
                    cache_totals[field] += cache.get(field, 0)
                for kind, count in cache.get("miss_kinds", {}).items():
                    miss_kinds[kind] = miss_kinds.get(kind, 0) + count
            backends.append(snap)
        with self._counter_lock:
            router = {
                "requests": self._requests,
                "forwarded": self._forwarded,
                "failovers": self._failovers,
                "no_backend": self._no_backend,
                "vnodes": self.ring.vnodes,
                "uptime_s": time.monotonic() - self._started,
            }
        lookups = cache_totals["hits"] + cache_totals["misses"]
        return {
            "ok": True,
            "op": "stats",
            "router": router,
            "backends": backends,
            "cache": {
                **cache_totals,
                "miss_kinds": miss_kinds,
                "hit_rate": cache_totals["hits"] / lookups if lookups else 0.0,
            },
        }


# ----------------------------------------------------------------------------
# The TCP layer
# ----------------------------------------------------------------------------


class _RouterHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # one connection, many JSON lines
        router: RouterService = self.server.router  # type: ignore[attr-defined]
        for line in self.rfile:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line.decode("utf-8"))
            except ValueError as err:
                response = {
                    "ok": False,
                    "error": _error_payload("request", f"bad json: {err}"),
                }
            else:
                response = router.handle(request)
            try:
                self.wfile.write(
                    json.dumps(response, sort_keys=True).encode("utf-8") + b"\n"
                )
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return


class RouterServer(socketserver.ThreadingTCPServer):
    """TCP front of a :class:`RouterService` — same threading shape as
    :class:`~repro.service.server.CompileServer`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], router: RouterService):
        super().__init__(address, _RouterHandler)
        self.router = router
        router.start()

    def drain_and_shutdown(self) -> None:
        self.router.stop()
        self.shutdown()


def build_router_parser() -> argparse.ArgumentParser:
    """The ``repro router`` argument parser (defaults single-sourced in
    :mod:`repro.service.defaults`)."""
    parser = argparse.ArgumentParser(
        prog="repro router",
        description="consistent-hash front end over N serve daemons",
    )
    parser.add_argument("--host", default=defaults.HOST)
    parser.add_argument("--port", type=int, default=defaults.ROUTER_PORT)
    parser.add_argument(
        "--backend", action="append", required=True, metavar="HOST:PORT",
        help="a backend serve daemon; repeat for each backend",
    )
    parser.add_argument(
        "--vnodes", type=int, default=defaults.ROUTER_VNODES,
        help="virtual nodes per backend on the hash ring "
             f"(default: {defaults.ROUTER_VNODES})",
    )
    parser.add_argument(
        "--probe-interval", type=float, default=defaults.ROUTER_PROBE_INTERVAL_S,
        metavar="SECONDS",
        help="seconds between backend liveness probes "
             f"(default: {defaults.ROUTER_PROBE_INTERVAL_S:g})",
    )
    parser.add_argument(
        "--probe-failures", type=int, default=defaults.ROUTER_PROBE_FAILURES,
        help="consecutive failures before a backend is marked unhealthy "
             f"(default: {defaults.ROUTER_PROBE_FAILURES})",
    )
    parser.add_argument(
        "--timeout", type=float, default=defaults.CLIENT_TIMEOUT_S,
        metavar="SECONDS",
        help="per-request forwarding timeout "
             f"(default: {defaults.CLIENT_TIMEOUT_S:g})",
    )
    return parser


def router_main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro router``: run the front end until SIGTERM/SIGINT."""
    args = build_router_parser().parse_args(argv)
    try:
        backends = [_parse_backend(spec) for spec in args.backend]
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    router = RouterService(
        backends,
        vnodes=args.vnodes,
        probe_interval_s=args.probe_interval,
        probe_failures=args.probe_failures,
        timeout=args.timeout,
    )
    server = RouterServer((args.host, args.port), router)
    host, port = server.server_address[:2]
    print(
        f"repro router listening on {host}:{port} "
        f"({len(backends)} backends, {args.vnodes} vnodes each)",
        flush=True,
    )

    def _drain(signum, frame):  # pragma: no cover - signal path
        print("draining...", flush=True)
        threading.Thread(target=server.drain_and_shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
    print("drained; bye", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(router_main())
