"""The consistent-hash front end: ``python -m repro router``.

One router process sits in front of N backend ``serve`` daemons and
speaks the same JSON-lines protocol on both sides, so every existing
client — :class:`~repro.service.client.ServiceClient`, ``repro
request``, ``repro loadgen`` — points at the router unchanged.

Routing
-------

Each compile request is hashed to a position on a sha256 ring
(:class:`HashRing`): every backend owns
:data:`~repro.service.defaults.ROUTER_VNODES` *virtual nodes* —
positions derived from ``sha256("host:port#i")`` — and a request lands
on the first virtual node at or after its own hash, wrapping at the
top.  Virtual nodes smooth the load split (a single node per backend
would partition the ring into a few large, uneven arcs), and
consistent hashing keeps the map stable under membership change:
removing a backend reassigns *only the arcs it owned*, so the other
backends' artifact caches stay warm — the property that makes compile
keys shardable across daemons at all.

The routing hash covers ``(source, allocator, k, schedule)`` — the
request identity, not the full artifact key.  The backend derives the
artifact key itself (folding in deadline-driven rung demotion, pipeline
config, and its code fingerprint); the router only needs *affinity*:
the same request always reaches the same backend, so repeats hit that
backend's cache.

Failover
--------

A forwarding failure whose kind is connection-shaped (``transport`` /
``timeout``, or a failed connect) moves the request to the next
*distinct* backend along the ring — warm affinity is lost for that
request, but it is answered.  Server-*answered* errors (``admission``,
a pipeline failure, ``poison-pill``…) are passed through verbatim: the
backend spoke, and the router does not second-guess typed answers.
Forwarding to a possibly-dead backend can re-send a compile that
actually ran — safe for the same reason client retries are: compiles
are idempotent and artifacts content-addressed.  When every backend has
been tried the client gets a typed ``no-backend`` error (retryable:
backends respawn underneath a live router).

A background prober pings every backend each
:data:`~repro.service.defaults.ROUTER_PROBE_INTERVAL_S`;
:data:`~repro.service.defaults.ROUTER_PROBE_FAILURES` *consecutive*
failures — probes and forwarding failures both count — mark a backend
unhealthy, and unhealthy backends are skipped during routing (tried
last-resort only when no healthy backend remains).  One successful
probe restores health: a restarted backend starts taking its arcs back
within a probe interval, cold but correct.

Responses gain two router fields: ``backend`` (which daemon answered)
and ``router_failovers`` (ring hops this request took, 0 on the happy
path).  The ``stats`` op answers with router-level accounting plus each
backend's own live ``stats`` response and an aggregated cache summary —
one screen for the whole deployment (docs/OPERATIONS.md shows how to
read it).

Replication
-----------

Failover alone answers the request but pays a full recompile: the ring
successor never saw the key.  With replication factor
:data:`~repro.service.defaults.ROUTER_REPLICATION` ``R > 1`` the router
treats the first ``R`` distinct ring successors of a key as its
*replica set* and keeps every artifact on all of them:

* **Write-through** — after a cold compile, the router fetches the raw
  artifact (``cache-get``) from the compiling backend and installs it
  (``cache-put``) on the other replica-set members, so killing any one
  backend leaves every warm key warm somewhere reachable.
* **Read-repair** — a compile is first sent with ``warm_only``: a warm
  backend answers normally (the warm path stays one round trip), a cold
  one returns a typed ``replica-miss`` carrying the artifact key.  The
  router then copies the artifact from another replica-set member into
  the cold backend and re-sends the compile — a warm hit — falling back
  to a real compile only when no replica has the bytes.
* **Hinted handoff** — a replica write aimed at a down backend is
  queued (bounded by :data:`~repro.service.defaults.ROUTER_HANDOFF_BYTES`,
  oldest dropped first, every drop counted) and flushed by the health
  prober the moment the backend answers a ping again.

Membership
----------

The backend set is no longer frozen at router start.  Admin ops —
``backend-add``, ``backend-remove``, ``backend-drain``, sent by
``python -m repro router-admin`` — mutate the ring under a generation
counter: every mutation bumps ``ring_generation``, and an op carrying
``expect_generation`` is refused with a typed ``ring-generation-skew``
error when the ring moved underneath the operator (two operators, one
ring: last writer does not silently win).  ``backend-drain`` is the
graceful exit: the node leaves the ring first (new keys stop landing on
it), its still-cached artifacts are streamed to their new owners, and
only then is it forgotten — the building block of the rolling-restart
drill (``repro loadgen --rolling-restart``), which restarts every
backend in sequence under load with zero lost requests and a pinned
post-restart warm hit rate.
"""

from __future__ import annotations

import argparse
import bisect
import hashlib
import json
import signal
import socketserver
import sys
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from . import defaults
from .client import ServiceClient, ServiceError
from .server import _error_payload

#: Forwarding failures that mean "the backend did not answer" — only
#: these trigger failover; everything else is a real answer.
_FAILOVER_KINDS = frozenset({"transport", "timeout"})


def affinity_key(request: Dict[str, Any]) -> str:
    """The ring-position digest for one compile request: sha256 over the
    request identity (source, allocator, k, schedule).  Deliberately
    narrower than the artifact key — see the module docstring."""
    payload = {
        "source": request.get("source", ""),
        "allocator": request.get("allocator", defaults.ALLOCATOR),
        "k": request.get("k", defaults.K),
        "schedule": bool(request.get("schedule", False)),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class HashRing:
    """A consistent-hash ring over named nodes with virtual nodes.

    Positions are the leading 64 bits of ``sha256(f"{node}#{i}")``.
    Lookup is a binary search over the sorted positions —
    O(log(nodes x vnodes)) per request, no locks (the ring is immutable
    after construction; membership *health* is tracked outside it).
    """

    def __init__(self, nodes: Sequence[str], vnodes: int = defaults.ROUTER_VNODES):
        if not nodes:
            raise ValueError("ring needs at least one node")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.nodes = tuple(nodes)
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for node in self.nodes:
            for index in range(vnodes):
                digest = hashlib.sha256(f"{node}#{index}".encode()).digest()
                points.append((int.from_bytes(digest[:8], "big"), node))
        points.sort()
        self._positions = [position for position, _ in points]
        self._owners = [node for _, node in points]

    @staticmethod
    def _position(key: str) -> int:
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def primary(self, key: str) -> str:
        """The node owning ``key``'s arc."""
        return next(self.successors(key))

    def successors(self, key: str) -> Iterator[str]:
        """Every node, in ring order from ``key``'s position, each
        yielded once — the failover sequence."""
        start = bisect.bisect_left(self._positions, self._position(key))
        seen = set()
        count = len(self._owners)
        for step in range(count):
            owner = self._owners[(start + step) % count]
            if owner not in seen:
                seen.add(owner)
                yield owner
                if len(seen) == len(self.nodes):
                    return

    def replicas(self, key: str, count: int) -> List[str]:
        """The first ``count`` distinct nodes in ring order from
        ``key``'s position — the replica set that should hold ``key``'s
        artifact (capped at the ring size)."""
        out: List[str] = []
        for node in self.successors(key):
            out.append(node)
            if len(out) >= count:
                break
        return out

    def ownership(self) -> Dict[str, Dict[str, Any]]:
        """Per-node ring share: virtual-node count and the fraction of
        the 64-bit keyspace whose arcs land on that node — the stats
        surface for 'is the load split still even?'."""
        total = 1 << 64
        shares = {
            node: {"vnodes": 0, "keyspace_fraction": 0.0}
            for node in self.nodes
        }
        arcs = {node: 0 for node in self.nodes}
        count = len(self._positions)
        for index, position in enumerate(self._positions):
            owner = self._owners[index]
            shares[owner]["vnodes"] += 1
            if count == 1:
                arcs[owner] = total
            else:
                arcs[owner] += (position - self._positions[index - 1]) % total
        for node in self.nodes:
            shares[node]["keyspace_fraction"] = arcs[node] / total
        return shares


class Backend:
    """One backend daemon: address, health, and routing counters."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self.name = f"{host}:{port}"
        self._lock = threading.Lock()
        self._healthy = True
        self._consecutive_failures = 0
        self.routed = 0  # requests this backend answered
        self.failed = 0  # forwarding attempts it did not answer

    @property
    def healthy(self) -> bool:
        with self._lock:
            return self._healthy

    def note_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._healthy = True

    def note_failure(self, threshold: int, forwarding: bool = False) -> None:
        with self._lock:
            if forwarding:
                self.failed += 1
            self._consecutive_failures += 1
            if self._consecutive_failures >= threshold:
                self._healthy = False

    def note_routed(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._healthy = True
            self.routed += 1

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "name": self.name,
                "healthy": self._healthy,
                "consecutive_failures": self._consecutive_failures,
                "routed": self.routed,
                "failed": self.failed,
            }


class HandoffQueue:
    """Replica writes waiting out a down backend: hinted handoff.

    Bounded by a byte budget over the blobs held.  One hint per
    ``(backend, key)`` slot — a newer write for the same key replaces
    the older hint — and when the budget overflows the *oldest* hints
    are dropped first, each drop counted (a dropped hint is not data
    loss: the artifact still lives on the other replicas and read-repair
    restores it on the next miss; the counter exists so operators can
    see the budget is too small).
    """

    def __init__(self, budget_bytes: int = defaults.ROUTER_HANDOFF_BYTES):
        self.budget = int(budget_bytes)
        self._lock = threading.Lock()
        #: ``(backend name, key) -> (blob, meta)``, oldest first.
        self._hints: "OrderedDict[Tuple[str, str], Tuple[str, Dict[str, Any]]]" = (
            OrderedDict()
        )
        self._bytes = 0
        self._queued = 0
        self._flushed = 0
        self._dropped = 0

    def offer(self, backend: str, key: str, blob: str, meta: Dict[str, Any]) -> bool:
        """Queue one replica write for later delivery.  Returns False
        when the hint cannot be held (larger than the whole budget)."""
        size = len(blob)
        with self._lock:
            if size > self.budget:
                self._dropped += 1
                return False
            slot = (backend, key)
            old = self._hints.pop(slot, None)
            if old is not None:
                self._bytes -= len(old[0])
            self._hints[slot] = (blob, meta)
            self._bytes += size
            self._queued += 1
            while self._bytes > self.budget and self._hints:
                _, (old_blob, _) = self._hints.popitem(last=False)
                self._bytes -= len(old_blob)
                self._dropped += 1
            return True

    def take(self, backend: str) -> List[Tuple[str, str, Dict[str, Any]]]:
        """Pop every hint held for ``backend`` (the flush path)."""
        with self._lock:
            slots = [slot for slot in self._hints if slot[0] == backend]
            taken = []
            for slot in slots:
                blob, meta = self._hints.pop(slot)
                self._bytes -= len(blob)
                taken.append((slot[1], blob, meta))
            return taken

    def discard(self, backend: str) -> int:
        """Drop every hint for a backend that left the ring for good."""
        dropped = 0
        with self._lock:
            for slot in [slot for slot in self._hints if slot[0] == backend]:
                blob, _ = self._hints.pop(slot)
                self._bytes -= len(blob)
                self._dropped += 1
                dropped += 1
        return dropped

    def note_flushed(self, count: int = 1) -> None:
        with self._lock:
            self._flushed += count

    def note_dropped(self, count: int = 1) -> None:
        with self._lock:
            self._dropped += count

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "queued": self._queued,
                "flushed": self._flushed,
                "dropped": self._dropped,
                "pending": len(self._hints),
                "pending_bytes": self._bytes,
                "budget_bytes": self.budget,
            }


def _parse_backend(spec: str) -> Tuple[str, int]:
    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"backend must be HOST:PORT, got {spec!r}")
    return host, int(port)


class RouterService:
    """The routing engine, socket-free (mirrors
    :class:`~repro.service.server.CompileService` below the TCP layer).

    Handler threads call :meth:`handle`; each keeps its own per-backend
    :class:`ServiceClient` in thread-local storage, so forwarding never
    serializes on a shared connection and a poisoned connection hurts
    only the thread that owns it.
    """

    def __init__(
        self,
        backends: Sequence[Tuple[str, int]],
        vnodes: int = defaults.ROUTER_VNODES,
        probe_interval_s: float = defaults.ROUTER_PROBE_INTERVAL_S,
        probe_failures: int = defaults.ROUTER_PROBE_FAILURES,
        timeout: float = defaults.CLIENT_TIMEOUT_S,
        replication: int = defaults.ROUTER_REPLICATION,
        handoff_bytes: int = defaults.ROUTER_HANDOFF_BYTES,
    ):
        if not backends:
            raise ValueError("router needs at least one backend")
        self.backends = {
            f"{host}:{port}": Backend(host, port) for host, port in backends
        }
        if len(self.backends) != len(backends):
            raise ValueError("duplicate backend address")
        self.vnodes = vnodes
        self.ring = HashRing(sorted(self.backends), vnodes=vnodes)
        self.probe_interval_s = probe_interval_s
        self.probe_failures = probe_failures
        self.timeout = timeout
        self.replication = max(1, int(replication))
        self.handoff = HandoffQueue(handoff_bytes)
        #: Guards ring swaps and membership mutation (never held across
        #: network I/O); the ring itself is immutable, so request paths
        #: just read ``self.ring`` once and work on that snapshot.
        self._ring_lock = threading.Lock()
        self.generation = 0
        self._local = threading.local()
        self._counter_lock = threading.Lock()
        self._requests = 0
        self._forwarded = 0
        self._failovers = 0
        self._no_backend = 0
        self._replica_writes = 0
        self._read_repairs = 0
        self._stop = threading.Event()
        self._prober: Optional[threading.Thread] = None
        self._started = time.monotonic()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self._prober is not None:
            return
        self._prober = threading.Thread(
            target=self._probe_loop, name="router-prober", daemon=True
        )
        self._prober.start()

    def stop(self) -> None:
        self._stop.set()
        if self._prober is not None:
            self._prober.join(self.probe_interval_s + 1.0)
            self._prober = None

    # -- health probing -------------------------------------------------------

    def _probe_loop(self) -> None:
        while not self._stop.wait(self.probe_interval_s):
            for backend in list(self.backends.values()):
                self.probe(backend)

    def probe(self, backend: Backend) -> bool:
        """One liveness ping, on a short-lived connection so a wedged
        backend cannot pin the prober's socket.  A backend that answers
        gets its pending hinted-handoff writes flushed — the 'flush when
        health probes see the backend return' half of replication."""
        try:
            with ServiceClient(
                backend.host, backend.port, timeout=self.probe_interval_s
            ) as client:
                alive = client.ping()
        except (ServiceError, OSError):
            alive = False
        if alive:
            backend.note_success()
            self._flush_handoff(backend)
        else:
            backend.note_failure(self.probe_failures)
        return alive

    def _flush_handoff(self, backend: Backend) -> None:
        """Deliver the hints queued for a backend that just answered a
        probe.  A delivery failure mid-flush requeues the remainder —
        the next successful probe tries again."""
        hints = self.handoff.take(backend.name)
        if not hints:
            return
        remaining = list(hints)
        try:
            with ServiceClient(
                backend.host, backend.port, timeout=self.timeout
            ) as client:
                while remaining:
                    key, blob, meta = remaining[0]
                    response = client.request(
                        {"op": "cache-put", "key": key, "blob": blob, "meta": meta}
                    )
                    remaining.pop(0)
                    if response.get("ok"):
                        self.handoff.note_flushed()
                        self._count("replica_writes")
                    else:
                        # The backend refused the bytes (e.g. checksum
                        # mismatch): retrying would loop forever.
                        self.handoff.note_dropped()
        except (ServiceError, OSError):
            for key, blob, meta in remaining:
                self.handoff.offer(backend.name, key, blob, meta)

    # -- forwarding -----------------------------------------------------------

    def _client(self, backend: Backend) -> ServiceClient:
        clients = getattr(self._local, "clients", None)
        if clients is None:
            clients = self._local.clients = {}
        client = clients.get(backend.name)
        if client is None:
            client = ServiceClient(
                backend.host, backend.port, timeout=self.timeout
            )
            clients[backend.name] = client
        return client

    def _drop_client(self, backend: Backend) -> None:
        clients = getattr(self._local, "clients", None)
        if clients is not None:
            client = clients.pop(backend.name, None)
            if client is not None:
                client.close()

    def _count(self, counter: str, delta: int = 1) -> None:
        with self._counter_lock:
            setattr(self, f"_{counter}", getattr(self, f"_{counter}") + delta)

    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Route one request object to its answer — always returns,
        never raises (the exactly-one-typed-answer contract)."""
        self._count("requests")
        op = request.get("op")
        if op == "ping":
            healthy = sum(1 for b in self.backends.values() if b.healthy)
            return {
                "ok": True,
                "op": "ping",
                "router": True,
                "backends_healthy": healthy,
                "backends_total": len(self.backends),
            }
        if op == "stats":
            return self._stats_response()
        if op == "backend-add":
            return self.backend_add(request)
        if op == "backend-remove":
            return self.backend_remove(request)
        if op == "backend-drain":
            return self.backend_drain(request)
        if op != "compile":
            return {
                "ok": False,
                "error": _error_payload("request", f"unknown op {op!r}"),
            }
        return self._forward(request)

    def _forward(self, request: Dict[str, Any]) -> Dict[str, Any]:
        ring = self.ring  # one immutable snapshot for the whole request
        affinity = affinity_key(request)
        order = [
            self.backends[name]
            for name in ring.successors(affinity)
            if name in self.backends
        ]
        if not order:
            self._count("no_backend")
            return {
                "ok": False,
                "router_failovers": 0,
                "error": _error_payload(
                    "no-backend",
                    "ring has no routable backends",
                    backends=sorted(self.backends),
                ),
            }
        replica_names = ring.replicas(affinity, self.replication)
        # The replica set is ownership, not health: a down replica's
        # write becomes a hint, not a different replica.
        replicas = [
            self.backends[name]
            for name in replica_names
            if name in self.backends
        ]
        replicate = self.replication > 1 and len(order) > 1 and not request.get(
            "warm_only"
        )
        # Healthy backends first, in ring order; unhealthy ones only as
        # a last resort (the probe may simply not have noticed a
        # recovery yet).
        attempts = [b for b in order if b.healthy] or order
        failovers = 0
        for backend in attempts:
            try:
                if replicate:
                    response = self._compile_with_replication(
                        backend, request, affinity, replicas
                    )
                else:
                    response = self._client(backend).request(request)
            except ServiceError as err:
                if err.kind not in _FAILOVER_KINDS:
                    # protocol: the backend answered garbage — surface
                    # it; replaying elsewhere hides a real bug.
                    return {"ok": False, "error": err.payload}
                self._drop_client(backend)
                backend.note_failure(self.probe_failures, forwarding=True)
                failovers += 1
                self._count("failovers")
                continue
            except OSError:
                # connect failed before a ServiceClient existed
                backend.note_failure(self.probe_failures, forwarding=True)
                failovers += 1
                self._count("failovers")
                continue
            backend.note_routed()
            self._count("forwarded")
            if isinstance(response, dict):
                response.setdefault("backend", backend.name)
                response["router_failovers"] = failovers
            return response
        self._count("no_backend")
        return {
            "ok": False,
            "router_failovers": failovers,
            "error": _error_payload(
                "no-backend",
                f"all {len(self.backends)} backends unreachable",
                backends=sorted(self.backends),
            ),
        }

    # -- the replication protocol ---------------------------------------------

    def _compile_with_replication(
        self,
        backend: Backend,
        request: Dict[str, Any],
        affinity: str,
        replicas: List[Backend],
    ) -> Dict[str, Any]:
        """One compile against one backend, replication-aware.

        Probe with ``warm_only`` first: a warm backend answers in the
        same single round trip as before.  On a ``replica-miss`` the
        artifact is read-repaired from another replica-set member when
        possible, then the real compile is sent — a warm hit after a
        successful repair, a cold compile otherwise — and cold results
        are written through to the rest of the replica set.  Transport
        failures propagate as :class:`ServiceError` so :meth:`_forward`
        applies its usual failover policy.
        """
        client = self._client(backend)
        probe = dict(request)
        probe["warm_only"] = True
        probe["affinity"] = affinity
        response = client.request(probe)
        error = response.get("error") or {}
        if response.get("ok") or error.get("kind") != "replica-miss":
            # Warm hit, or a real typed answer (poison-pill, bad
            # request...) that must not be masked by replication.
            return response
        key = response.get("key")
        if isinstance(key, str) and key:
            self._read_repair(backend, key, replicas)
        compile_request = dict(request)
        compile_request["affinity"] = affinity
        if isinstance(key, str) and key:
            # The probe already counted this request's hit-or-miss;
            # tell the backend not to count the re-sent lookup too.
            compile_request["probed"] = key
        response = client.request(compile_request)
        if response.get("ok") and response.get("cache") == "miss":
            self._replicate(backend, response.get("key"), replicas)
        return response

    def _read_repair(
        self, target: Backend, key: str, replicas: List[Backend]
    ) -> bool:
        """Copy ``key``'s artifact from any other replica-set member
        into ``target``.  True when the repair landed."""
        for source in replicas:
            if source.name == target.name:
                continue
            try:
                got = self._client(source).request(
                    {"op": "cache-get", "key": key}
                )
            except ServiceError as err:
                if err.kind in _FAILOVER_KINDS:
                    self._drop_client(source)
                    source.note_failure(self.probe_failures)
                continue
            except OSError:
                source.note_failure(self.probe_failures)
                continue
            if not got.get("ok"):
                continue  # not warm there either
            blob = got.get("blob")
            meta = got.get("meta")
            if not isinstance(blob, str) or not isinstance(meta, dict):
                continue
            try:
                put = self._client(target).request(
                    {"op": "cache-put", "key": key, "blob": blob, "meta": meta}
                )
            except (ServiceError, OSError):
                # The target is failing: the compile attempt that
                # follows will fail over through the normal path.
                return False
            if put.get("ok"):
                self._count("read_repairs")
                return True
        return False

    def _replicate(
        self, source: Backend, key: Any, replicas: List[Backend]
    ) -> None:
        """Write a freshly compiled artifact through from ``source`` to
        the rest of the replica set (down members get handoff hints)."""
        if not isinstance(key, str) or not key:
            return
        targets = [b for b in replicas if b.name != source.name]
        if not targets:
            return
        try:
            got = self._client(source).request({"op": "cache-get", "key": key})
        except (ServiceError, OSError):
            return
        if not got.get("ok"):
            # e.g. an artifact larger than the cache budget was never
            # cached at the source — nothing to replicate.
            return
        blob = got.get("blob")
        meta = got.get("meta")
        if not isinstance(blob, str) or not isinstance(meta, dict):
            return
        for target in targets:
            self._replica_put(target, key, blob, meta)

    def _replica_put(
        self, target: Backend, key: str, blob: str, meta: Dict[str, Any]
    ) -> bool:
        """Install raw artifact bytes on one replica, queueing a
        hinted handoff instead when the replica is down."""
        if not target.healthy:
            self.handoff.offer(target.name, key, blob, meta)
            return False
        try:
            put = self._client(target).request(
                {"op": "cache-put", "key": key, "blob": blob, "meta": meta}
            )
        except ServiceError as err:
            if err.kind in _FAILOVER_KINDS:
                self._drop_client(target)
                target.note_failure(self.probe_failures)
                self.handoff.offer(target.name, key, blob, meta)
            return False
        except OSError:
            target.note_failure(self.probe_failures)
            self.handoff.offer(target.name, key, blob, meta)
            return False
        if put.get("ok"):
            self._count("replica_writes")
            return True
        return False

    # -- membership (the admin surface) ----------------------------------------

    def _generation_skew(
        self, request: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        """CAS check, called under ``_ring_lock``: an admin op carrying
        ``expect_generation`` is refused when the ring moved."""
        expect = request.get("expect_generation")
        if expect is None:
            return None
        if not isinstance(expect, int) or isinstance(expect, bool):
            return {
                "ok": False,
                "ring_generation": self.generation,
                "error": _error_payload(
                    "request", "expect_generation must be an integer"
                ),
            }
        if expect != self.generation:
            return {
                "ok": False,
                "ring_generation": self.generation,
                "error": _error_payload(
                    "ring-generation-skew",
                    f"expected ring generation {expect}, "
                    f"ring is at {self.generation}",
                    ring_generation=self.generation,
                    expected=expect,
                ),
            }
        return None

    def _admin_error(self, kind: str, message: str) -> Dict[str, Any]:
        return {
            "ok": False,
            "ring_generation": self.generation,
            "error": _error_payload(kind, message),
        }

    def _rebuild_ring(self, exclude: Sequence[str] = ()) -> None:
        """Swap in a new ring over the current backends (minus
        ``exclude``) and bump the generation.  Call under ``_ring_lock``."""
        members = sorted(
            name for name in self.backends if name not in set(exclude)
        )
        self.ring = HashRing(members, vnodes=self.vnodes)
        self.generation += 1

    def backend_add(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """``backend-add``: put a new (or restarted) daemon on the ring.
        It starts taking its arcs immediately; read-repair warms it."""
        try:
            host, port = _parse_backend(str(request.get("backend") or ""))
        except ValueError as err:
            return self._admin_error("request", str(err))
        name = f"{host}:{port}"
        with self._ring_lock:
            skew = self._generation_skew(request)
            if skew is not None:
                return skew
            if name in self.backends:
                return self._admin_error(
                    "request", f"backend {name} already present"
                )
            backend = Backend(host, port)
            self.backends[name] = backend
            self._rebuild_ring()
            generation = self.generation
        # Probe outside the lock: routable (and handoff-flushed) now,
        # not at the next prober tick.
        self.probe(backend)
        return {
            "ok": True,
            "op": "backend-add",
            "backend": name,
            "healthy": backend.healthy,
            "ring_generation": generation,
        }

    def backend_remove(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """``backend-remove``: drop a daemon from ring and roster at
        once — the abrupt form (its cached artifacts are abandoned; use
        ``backend-drain`` to keep them warm)."""
        name = str(request.get("backend") or "")
        with self._ring_lock:
            skew = self._generation_skew(request)
            if skew is not None:
                return skew
            if name not in self.backends:
                return self._admin_error("request", f"unknown backend {name!r}")
            if len(self.backends) == 1:
                return self._admin_error(
                    "request", "cannot remove the last backend"
                )
            del self.backends[name]
            self._rebuild_ring()
            generation = self.generation
        dropped = self.handoff.discard(name)
        return {
            "ok": True,
            "op": "backend-remove",
            "backend": name,
            "ring_generation": generation,
            "hints_discarded": dropped,
        }

    def backend_drain(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """``backend-drain``: the graceful exit.  The node leaves the
        ring first (new keys stop landing on it), its still-cached
        artifacts are streamed to their new owners under the post-drain
        ring, and only then is it dropped from the roster."""
        name = str(request.get("backend") or "")
        with self._ring_lock:
            skew = self._generation_skew(request)
            if skew is not None:
                return skew
            backend = self.backends.get(name)
            if backend is None:
                return self._admin_error("request", f"unknown backend {name!r}")
            if name not in self.ring.nodes:
                return self._admin_error(
                    "request", f"backend {name} is not on the ring"
                )
            if len(self.ring.nodes) == 1:
                return self._admin_error(
                    "request", "cannot drain the last backend"
                )
            self._rebuild_ring(exclude=(name,))
            ring = self.ring
        streamed, skipped, failed = self._stream_artifacts(backend, ring)
        with self._ring_lock:
            self.backends.pop(name, None)
            self.generation += 1
            generation = self.generation
        dropped = self.handoff.discard(name)
        return {
            "ok": True,
            "op": "backend-drain",
            "backend": name,
            "ring_generation": generation,
            "streamed": streamed,
            "skipped": skipped,
            "stream_failed": failed,
            "hints_discarded": dropped,
        }

    def _stream_artifacts(
        self, backend: Backend, ring: HashRing
    ) -> Tuple[int, int, int]:
        """Copy every still-cached artifact off a draining backend to
        its owners under ``ring`` (the post-drain ring).  Returns
        ``(streamed, skipped, failed)`` — ``skipped`` counts artifacts
        with no stored affinity (compiled before replication existed, or
        reached the daemon without a router), which have no ring
        identity to re-place by."""
        streamed = skipped = failed = 0
        try:
            with ServiceClient(
                backend.host, backend.port, timeout=self.timeout
            ) as client:
                listing = client.request({"op": "cache-keys"})
                if not listing.get("ok"):
                    return streamed, skipped, failed + 1
                for item in listing.get("keys") or []:
                    key = item.get("key")
                    affinity = item.get("affinity")
                    if not isinstance(key, str) or not key:
                        continue
                    if not isinstance(affinity, str) or not affinity:
                        skipped += 1
                        continue
                    got = client.request({"op": "cache-get", "key": key})
                    blob = got.get("blob")
                    meta = got.get("meta")
                    if (
                        not got.get("ok")
                        or not isinstance(blob, str)
                        or not isinstance(meta, dict)
                    ):
                        failed += 1
                        continue
                    sent = False
                    for owner_name in ring.replicas(affinity, self.replication):
                        owner = self.backends.get(owner_name)
                        if owner is None or owner.name == backend.name:
                            continue
                        if self._replica_put(owner, key, blob, meta):
                            sent = True
                    if sent:
                        streamed += 1
                    else:
                        failed += 1
        except (ServiceError, OSError):
            return streamed, skipped, failed + 1
        return streamed, skipped, failed

    # -- stats ----------------------------------------------------------------

    def _stats_response(self) -> Dict[str, Any]:
        with self._ring_lock:
            ring = self.ring
            generation = self.generation
            roster = dict(self.backends)
        ownership = ring.ownership()
        backends: List[Dict[str, Any]] = []
        cache_totals = {
            "entries": 0, "bytes": 0, "hits": 0, "misses": 0,
            "disk_hits": 0, "evictions": 0,
        }
        miss_kinds: Dict[str, int] = {}
        for name in sorted(roster):
            backend = roster[name]
            snap = backend.snapshot()
            # Ring share: a drained-but-not-yet-removed backend owns
            # nothing (vnodes 0) while its artifacts stream out.
            snap["ring"] = ownership.get(
                name, {"vnodes": 0, "keyspace_fraction": 0.0}
            )
            try:
                live = self._client(backend).request({"op": "stats"})
            except (ServiceError, OSError):
                self._drop_client(backend)
                live = None
            if live is not None and live.get("ok"):
                snap["stats"] = live
                cache = live.get("cache", {})
                for field in cache_totals:
                    cache_totals[field] += cache.get(field, 0)
                for kind, count in cache.get("miss_kinds", {}).items():
                    miss_kinds[kind] = miss_kinds.get(kind, 0) + count
            backends.append(snap)
        handoff = self.handoff.snapshot()
        with self._counter_lock:
            router = {
                "requests": self._requests,
                "forwarded": self._forwarded,
                "failovers": self._failovers,
                "no_backend": self._no_backend,
                "replica_writes": self._replica_writes,
                "read_repairs": self._read_repairs,
                "handoff_queued": handoff["queued"],
                "handoff_flushed": handoff["flushed"],
                "handoff_dropped": handoff["dropped"],
                "handoff": handoff,
                "replication": self.replication,
                "ring_generation": generation,
                "vnodes": ring.vnodes,
                "uptime_s": time.monotonic() - self._started,
            }
        lookups = cache_totals["hits"] + cache_totals["misses"]
        return {
            "ok": True,
            "op": "stats",
            "router": router,
            "backends": backends,
            "cache": {
                **cache_totals,
                "miss_kinds": miss_kinds,
                "hit_rate": cache_totals["hits"] / lookups if lookups else 0.0,
            },
        }


# ----------------------------------------------------------------------------
# The TCP layer
# ----------------------------------------------------------------------------


class _RouterHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # one connection, many JSON lines
        router: RouterService = self.server.router  # type: ignore[attr-defined]
        for line in self.rfile:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line.decode("utf-8"))
            except ValueError as err:
                response = {
                    "ok": False,
                    "error": _error_payload("request", f"bad json: {err}"),
                }
            else:
                response = router.handle(request)
            try:
                self.wfile.write(
                    json.dumps(response, sort_keys=True).encode("utf-8") + b"\n"
                )
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                return


class RouterServer(socketserver.ThreadingTCPServer):
    """TCP front of a :class:`RouterService` — same threading shape as
    :class:`~repro.service.server.CompileServer`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], router: RouterService):
        super().__init__(address, _RouterHandler)
        self.router = router
        router.start()

    def drain_and_shutdown(self) -> None:
        self.router.stop()
        self.shutdown()


def build_router_parser() -> argparse.ArgumentParser:
    """The ``repro router`` argument parser (defaults single-sourced in
    :mod:`repro.service.defaults`)."""
    parser = argparse.ArgumentParser(
        prog="repro router",
        description="consistent-hash front end over N serve daemons",
    )
    parser.add_argument("--host", default=defaults.HOST)
    parser.add_argument("--port", type=int, default=defaults.ROUTER_PORT)
    parser.add_argument(
        "--backend", action="append", required=True, metavar="HOST:PORT",
        help="a backend serve daemon; repeat for each backend",
    )
    parser.add_argument(
        "--vnodes", type=int, default=defaults.ROUTER_VNODES,
        help="virtual nodes per backend on the hash ring "
             f"(default: {defaults.ROUTER_VNODES})",
    )
    parser.add_argument(
        "--probe-interval", type=float, default=defaults.ROUTER_PROBE_INTERVAL_S,
        metavar="SECONDS",
        help="seconds between backend liveness probes "
             f"(default: {defaults.ROUTER_PROBE_INTERVAL_S:g})",
    )
    parser.add_argument(
        "--probe-failures", type=int, default=defaults.ROUTER_PROBE_FAILURES,
        help="consecutive failures before a backend is marked unhealthy "
             f"(default: {defaults.ROUTER_PROBE_FAILURES})",
    )
    parser.add_argument(
        "--timeout", type=float, default=defaults.CLIENT_TIMEOUT_S,
        metavar="SECONDS",
        help="per-request forwarding timeout "
             f"(default: {defaults.CLIENT_TIMEOUT_S:g})",
    )
    parser.add_argument(
        "--replication", type=int, default=defaults.ROUTER_REPLICATION,
        metavar="R",
        help="ring successors that hold each artifact; 1 disables "
             f"replication (default: {defaults.ROUTER_REPLICATION})",
    )
    parser.add_argument(
        "--handoff-bytes", type=int, default=defaults.ROUTER_HANDOFF_BYTES,
        metavar="BYTES",
        help="byte budget for hinted-handoff writes queued for down "
             f"backends (default: {defaults.ROUTER_HANDOFF_BYTES})",
    )
    return parser


def router_main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro router``: run the front end until SIGTERM/SIGINT."""
    args = build_router_parser().parse_args(argv)
    try:
        backends = [_parse_backend(spec) for spec in args.backend]
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    router = RouterService(
        backends,
        vnodes=args.vnodes,
        probe_interval_s=args.probe_interval,
        probe_failures=args.probe_failures,
        timeout=args.timeout,
        replication=args.replication,
        handoff_bytes=args.handoff_bytes,
    )
    server = RouterServer((args.host, args.port), router)
    host, port = server.server_address[:2]
    print(
        f"repro router listening on {host}:{port} "
        f"({len(backends)} backends, {args.vnodes} vnodes each)",
        flush=True,
    )

    def _drain(signum, frame):  # pragma: no cover - signal path
        print("draining...", flush=True)
        threading.Thread(target=server.drain_and_shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
    print("drained; bye", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(router_main())
