"""Supervised process-pool worker tier for the compile service.

:class:`ProcessWorkerSupervisor` runs each compile worker as a child
**process** instead of a daemon thread, which buys two things the thread
tier cannot provide:

* **crash isolation** — an allocator bug, an OOM kill, or a deliberate
  chaos probe takes down one child, not the daemon.  The job that was
  running is answered with a typed ``worker-crash`` error and the child
  is respawned under exponential backoff;
* **hang containment** — a per-job wall-clock watchdog SIGKILLs a child
  that exceeds ``Supervision.job_timeout_s`` and answers the job with a
  typed ``worker-timeout`` error, so a wedged compile costs one watchdog
  period, not the client's socket timeout and a queue slot forever.

Each worker slot is one child process plus one parent-side dispatcher
thread that owns it: the dispatcher pulls jobs from the service's
earliest-deadline-first queue, answers what it can locally (cache hits,
tombstoned jobs, quarantined keys — via :meth:`CompileService.prepare`),
ships the cold path to the child over a :func:`multiprocessing.Pipe`,
and babysits the child while it works.  Results cross the pipe as plain
data — artifact bytes plus metadata on success, a *frozen*
:class:`~repro.resilience.errors.StageError` on pipeline failure — the
same freeze()/thaw() transport :mod:`repro.bench.parallel` uses for the
``--jobs`` sweep pool, so a remote ``MotionValidationError`` still thaws
to the right class on the client.

Supervision policy (:class:`Supervision`):

* **respawn backoff** — consecutive deaths of one slot back off
  exponentially (``backoff_base_s`` doubling up to ``backoff_cap_s``),
  so a crash-looping worker cannot burn the host;
* **restart-storm circuit breaker** — ``storm_threshold`` deaths across
  the pool within ``storm_window_s`` flip the service ``degraded``:
  new work is demoted to the linear-scan rung until the window passes
  quietly (health recovers to ``healthy`` by itself);
* **poison-pill quarantine** — a compile key that kills or hangs
  workers ``poison_threshold`` times is quarantined: further requests
  for it are answered immediately with a ``poison-pill`` error and
  never reach a worker again, so one pathological input cannot keep
  assassinating the pool.

Every admitted job is answered exactly once on every path — result,
crash, watchdog kill, dispatcher bug — which is the invariant the chaos
harness (``loadgen --chaos``) asserts end to end.

Chaos probes: when the service was started with ``chaos_enabled`` (the
``serve --chaos`` flag), a compile request may carry ``"chaos":
"crash"`` (the child exits hard mid-job, modelling an OS kill) or
``"chaos": "hang"`` (the child sleeps until the watchdog fires).  The
flag exists for the chaos harness and CI only; without it the field is
ignored and the request compiles normally.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, TYPE_CHECKING

from ..resilience.errors import StageError
from ..resilience.pipeline import PassPipeline, PipelineConfig
from ..resilience.telemetry import MetricsCollector
from . import defaults

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from .server import CompileService, PreparedJob

#: Child exit code for the deliberate ``chaos: crash`` probe, distinct
#: from real crashes so the accounting can tell them apart in logs.
CHAOS_EXIT_CODE = 23

#: How long a ``chaos: hang`` probe sleeps per nap while waiting for the
#: watchdog to SIGKILL it (the loop never exits on its own).
_HANG_NAP_S = 0.5


@dataclass(frozen=True)
class Supervision:
    """Watchdog / backoff / circuit-breaker parameters for the process
    worker tier.  The defaults suit a production daemon; tests and the
    chaos harness shrink them to keep runs fast."""

    #: Wall-clock budget for one job inside a child before the watchdog
    #: SIGKILLs it and answers ``worker-timeout``.
    job_timeout_s: float = defaults.JOB_TIMEOUT_S
    #: First respawn delay after a death; doubles per consecutive death
    #: of the same slot, capped at ``backoff_cap_s``.
    backoff_base_s: float = defaults.BACKOFF_BASE_S
    backoff_cap_s: float = defaults.BACKOFF_CAP_S
    #: ``storm_threshold`` deaths across the pool within
    #: ``storm_window_s`` seconds flip the service ``degraded``.
    storm_threshold: int = defaults.STORM_THRESHOLD
    storm_window_s: float = defaults.STORM_WINDOW_S
    #: Watchdog kills / crashes attributed to one compile key before it
    #: is quarantined as a poison pill.
    poison_threshold: int = defaults.POISON_THRESHOLD


# ----------------------------------------------------------------------------
# The child process
# ----------------------------------------------------------------------------


def _worker_child_main(
    conn, config: PipelineConfig, chaos_enabled: bool, close_fds=()
) -> None:
    """Child body: receive job specs, compile cold, send results.

    Runs until the parent sends ``None`` (graceful shutdown), the pipe
    closes (parent died), or the watchdog SIGKILLs us.  Every result is
    plain picklable data; pipeline failures cross as frozen
    ``StageError`` payloads, other exceptions as ``request``-kind
    payloads — exactly what the thread tier produces, so responses are
    mode-independent.
    """
    # Fork copies every parent fd into the child: our own pipe's
    # *parent* end, sibling slots' pipe ends, and the server's listening
    # socket.  Holding them is not harmless hygiene debt — a child that
    # keeps its own parent-end open can never see EOF when the daemon is
    # killed, so it blocks in recv() forever, and its inherited listener
    # copy keeps the dead daemon's port accepting connections nobody
    # will ever serve (clients hang instead of getting ECONNREFUSED).
    # The spawner passes the current set; close them before anything
    # else.
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    # The parent's SIGTERM/SIGINT handlers (the serve() drain path) are
    # inherited across fork; a signal aimed at the process group must
    # not make children run the parent's drain logic.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    from .server import _error_payload, compile_cold

    pipeline = PassPipeline(config)
    while True:
        try:
            spec = conn.recv()
        except (EOFError, OSError):
            return
        if spec is None:
            return

        chaos = spec.get("chaos") if chaos_enabled else None
        if chaos == "crash":
            os._exit(CHAOS_EXIT_CODE)
        if chaos == "hang":
            while True:  # the watchdog ends this, nothing else does
                time.sleep(_HANG_NAP_S)

        collector = MetricsCollector()
        pipeline.metrics = collector
        try:
            body = compile_cold(pipeline, spec)
            result = {"status": "ok", "body": body}
        except StageError as err:
            result = {"status": "error", "error": err.freeze()}
        except Exception as err:  # parity with the thread tier's catch-all
            result = {
                "status": "error",
                "error": _error_payload(
                    "request", f"{type(err).__name__}: {err}"
                ),
            }
        finally:
            pipeline.metrics = None
        result["stages"] = collector.stages  # plain picklable dataclasses
        try:
            conn.send(result)
        except (BrokenPipeError, OSError):
            return


# ----------------------------------------------------------------------------
# Parent-side supervision
# ----------------------------------------------------------------------------


class _WorkerSlot:
    """One supervised worker: a child process and the dispatcher thread
    that owns its lifecycle.  All pipe/process state is touched only by
    this slot's thread (plus the supervisor's last-resort reaper after
    the thread has been joined)."""

    def __init__(self, supervisor: "ProcessWorkerSupervisor", index: int):
        self.supervisor = supervisor
        self.index = index
        self.thread = threading.Thread(
            target=self._loop, name=f"compile-proc-worker-{index}", daemon=True
        )
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.conn = None
        # accounting, read by stats() from other threads (ints are
        # fine to read racily; they only ever increase)
        self.spawns = 0
        self.restarts = 0
        self.kills = 0
        self.crashes = 0
        self.jobs_done = 0
        self.consecutive_failures = 0
        self.last_backoff_s = 0.0
        self.busy_key: Optional[str] = None

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self) -> None:
        """Fork a fresh child, honoring the consecutive-failure backoff."""
        service = self.supervisor.service
        if self.consecutive_failures:
            backoff = min(
                self.supervisor.supervision.backoff_cap_s,
                self.supervisor.supervision.backoff_base_s
                * (2 ** (self.consecutive_failures - 1)),
            )
            self.last_backoff_s = backoff
            service._stop.wait(backoff)
        parent_conn, child_conn = self.supervisor.ctx.Pipe(duplex=True)
        process = self.supervisor.ctx.Process(
            target=_worker_child_main,
            args=(
                child_conn,
                service.config,
                service.chaos_enabled,
                self.supervisor.child_close_fds(parent_conn),
            ),
            name=f"compile-worker-proc-{self.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.process = process
        self.conn = parent_conn
        self.spawns += 1
        if self.spawns > 1:
            self.restarts += 1

    def _discard_child(self, kill: bool = False) -> None:
        """Drop (and optionally SIGKILL) the current child, reaping it."""
        process, conn = self.process, self.conn
        self.process = None
        self.conn = None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if process is None:
            return
        if kill and process.is_alive():
            process.kill()
        process.join(timeout=5.0)
        if process.is_alive():  # pragma: no cover - SIGKILL cannot be refused
            process.terminate()
            process.join(timeout=1.0)

    def _shutdown_child(self) -> None:
        """Graceful end-of-drain: sentinel, join, escalate if needed."""
        if self.process is None:
            return
        if self.conn is not None:
            try:
                self.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        self.process.join(timeout=2.0)
        self._discard_child(kill=self.process is not None and self.process.is_alive())

    # -- the dispatcher loop -------------------------------------------------

    def _loop(self) -> None:
        service = self.supervisor.service
        while not service._stop.is_set():
            job = service.queue.take(timeout=0.05)
            if job is None:
                continue
            if not job.claim():
                service.count("orphaned_skipped")
                continue
            if service.worker_delay_s:
                time.sleep(service.worker_delay_s)
            job.finish(self._answer(job))
            service.count("answered")
        self._shutdown_child()

    def _answer(self, job) -> Dict[str, Any]:
        """Exactly one typed response for one claimed job, whatever
        happens — the invariant every other guarantee leans on."""
        from .server import _error_payload

        service = self.supervisor.service
        try:
            if job.deadline_at < time.monotonic():
                service.count("expired")
                return {
                    "ok": False,
                    "error": _error_payload(
                        "deadline", "deadline expired while queued"
                    ),
                }
            response, prepared = service.prepare(
                job.request, demote=self.supervisor.degraded
            )
            if response is not None:
                return response
            assert prepared is not None
            return self._dispatch(prepared)
        except Exception as err:  # the dispatcher must never die
            return {
                "ok": False,
                "error": _error_payload(
                    "request", f"{type(err).__name__}: {err}"
                ),
            }

    def _dispatch(self, prepared: "PreparedJob") -> Dict[str, Any]:
        """Ship one cold compile to the child under the watchdog."""
        if self.process is None or not self.process.is_alive():
            self._discard_child()
            self._spawn()
        self.busy_key = prepared.key
        try:
            try:
                self.conn.send(prepared.spec())
            except (BrokenPipeError, OSError):
                return self._on_crash(prepared)
            deadline = time.monotonic() + self.supervisor.supervision.job_timeout_s
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return self._on_timeout(prepared)
                try:
                    ready = self.conn.poll(min(0.05, remaining))
                except (BrokenPipeError, OSError):
                    return self._on_crash(prepared)
                if ready:
                    try:
                        result = self.conn.recv()
                    except (EOFError, OSError):
                        return self._on_crash(prepared)
                    return self._on_result(prepared, result)
                if not self.process.is_alive():
                    # The child may have died *after* sending — drain
                    # the pipe once before declaring a crash.
                    try:
                        if self.conn.poll(0):
                            continue
                    except (BrokenPipeError, OSError):
                        pass
                    return self._on_crash(prepared)
        finally:
            self.busy_key = None

    # -- outcome paths -------------------------------------------------------

    def _on_result(
        self, prepared: "PreparedJob", result: Dict[str, Any]
    ) -> Dict[str, Any]:
        service = self.supervisor.service
        self.jobs_done += 1
        self.consecutive_failures = 0
        stages = result.get("stages") or {}
        service.merge_stage_metrics(stages)
        if result["status"] == "ok":
            collector = MetricsCollector()
            collector.merge(stages)
            return service.assemble_cold_response(
                prepared,
                result["body"],
                stages,
                telemetry=collector.as_dict(),
            )
        return service.assemble_error_response(
            prepared, result["error"], sorted(stages)
        )

    def _on_timeout(self, prepared: "PreparedJob") -> Dict[str, Any]:
        """Watchdog fired: SIGKILL the child, answer ``worker-timeout``."""
        from .server import _error_payload

        service = self.supervisor.service
        pid = self.process.pid if self.process is not None else None
        timeout_s = self.supervisor.supervision.job_timeout_s
        self._discard_child(kill=True)
        self.kills += 1
        self.consecutive_failures += 1
        self.supervisor.record_failure("watchdog")
        service.note_strike(
            prepared.key, f"hung compile killed by watchdog after {timeout_s:g}s"
        )
        return service.assemble_error_response(
            prepared,
            _error_payload(
                "worker-timeout",
                f"compile exceeded the {timeout_s:g}s watchdog; "
                f"worker pid {pid} killed",
                key=prepared.key,
                timeout_s=timeout_s,
                worker=self.index,
            ),
        )

    def _on_crash(self, prepared: "PreparedJob") -> Dict[str, Any]:
        """Child died mid-job: answer ``worker-crash``, note the strike."""
        from .server import _error_payload

        service = self.supervisor.service
        process = self.process
        pid = process.pid if process is not None else None
        if process is not None:
            process.join(timeout=5.0)
        exitcode = process.exitcode if process is not None else None
        self._discard_child()
        self.crashes += 1
        self.consecutive_failures += 1
        self.supervisor.record_failure("crash")
        service.note_strike(
            prepared.key, f"worker died (exit {exitcode}) while compiling"
        )
        return service.assemble_error_response(
            prepared,
            _error_payload(
                "worker-crash",
                f"worker pid {pid} died (exit {exitcode}) while compiling",
                key=prepared.key,
                exitcode=exitcode,
                worker=self.index,
            ),
        )

    # -- accounting ----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        process = self.process
        return {
            "worker": self.index,
            "pid": process.pid if process is not None else None,
            "alive": process.is_alive() if process is not None else False,
            "spawns": self.spawns,
            "restarts": self.restarts,
            "watchdog_kills": self.kills,
            "crashes": self.crashes,
            "jobs_done": self.jobs_done,
            "consecutive_failures": self.consecutive_failures,
            "last_backoff_s": self.last_backoff_s,
            "busy_key": self.busy_key,
        }


class ProcessWorkerSupervisor:
    """Owns the worker slots and the pool-wide failure accounting."""

    def __init__(
        self,
        service: "CompileService",
        workers: int,
        supervision: Supervision,
        chaos_enabled: bool = False,
    ):
        self.service = service
        self.supervision = supervision
        self.chaos_enabled = chaos_enabled
        # fork: cheap respawns and no re-import; the children only ever
        # compute and talk to their pipe.  Falls back to the platform
        # default where fork does not exist.
        methods = multiprocessing.get_all_start_methods()
        self.ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self._slots: List[_WorkerSlot] = [
            _WorkerSlot(self, index) for index in range(max(1, workers))
        ]
        self._failures: Deque[float] = deque()
        self._failure_kinds: Dict[str, int] = {}
        self._failure_lock = threading.Lock()
        self._external_child_fds: set = set()

    # -- child fd hygiene ----------------------------------------------------

    def close_fds_in_children(self, *fds: int) -> None:
        """Register parent fds (e.g. the server's listening socket) that
        every future child must close at birth.  Children forked before
        a registration keep their copies — register before traffic."""
        self._external_child_fds.update(int(fd) for fd in fds)

    def child_close_fds(self, own_parent_conn) -> List[int]:
        """The fd list a child being spawned right now must close: the
        registered external fds, its own pipe's parent end, and every
        sibling slot's live parent end.  A racing sibling close is
        benign — the child closes only its inherited *copies*."""
        fds = set(self._external_child_fds)
        for conn in [own_parent_conn] + [slot.conn for slot in self._slots]:
            if conn is None:
                continue
            try:
                fds.add(conn.fileno())
            except (OSError, ValueError):
                pass
        return sorted(fds)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        for slot in self._slots:
            slot.thread.start()

    def stop(self, deadline: float) -> None:
        """Join every dispatcher (which reaps its own child), then
        force-reap anything left.  Called by ``CompileService.drain``
        after the queue has emptied and ``_stop`` is set."""
        join_budget = (
            max(0.0, deadline - time.monotonic())
            + self.supervision.job_timeout_s
            + 2.0
        )
        for slot in self._slots:
            slot.thread.join(join_budget)
        for slot in self._slots:  # last resort: a stuck dispatcher
            if slot.process is not None:
                slot._discard_child(kill=True)

    # -- failure window ------------------------------------------------------

    def record_failure(self, kind: str) -> None:
        now = time.monotonic()
        with self._failure_lock:
            self._failures.append(now)
            self._failure_kinds[kind] = self._failure_kinds.get(kind, 0) + 1
            self._prune(now)

    def _prune(self, now: float) -> None:
        horizon = now - self.supervision.storm_window_s
        while self._failures and self._failures[0] < horizon:
            self._failures.popleft()

    @property
    def degraded(self) -> bool:
        """True while the restart-storm circuit breaker is tripped:
        ``storm_threshold`` worker deaths within ``storm_window_s``.
        Self-clearing — old deaths age out of the window."""
        with self._failure_lock:
            self._prune(time.monotonic())
            return len(self._failures) >= self.supervision.storm_threshold

    @property
    def health(self) -> str:
        return "degraded" if self.degraded else "healthy"

    # -- accounting ----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._failure_lock:
            self._prune(time.monotonic())
            recent = len(self._failures)
            kinds = dict(self._failure_kinds)
        slots = [slot.stats() for slot in self._slots]
        return {
            "workers": slots,
            "watchdog_fires": sum(s["watchdog_kills"] for s in slots),
            "crashes": sum(s["crashes"] for s in slots),
            "restarts": sum(s["restarts"] for s in slots),
            "recent_failures": recent,
            "failure_kinds": kinds,
            "storm_threshold": self.supervision.storm_threshold,
            "storm_window_s": self.supervision.storm_window_s,
            "job_timeout_s": self.supervision.job_timeout_s,
            "degraded": self.degraded,
        }

    def reaped(self) -> bool:
        """True when no child process of this pool is still alive —
        the no-zombies assertion of the drain tests."""
        return all(
            slot.process is None or not slot.process.is_alive()
            for slot in self._slots
        )
