"""Single source of truth for every service-facing default.

Before this module existed, the same defaults were written out three
times — in the argparse help strings, in the dataclass/function
signatures that actually implement them, and in the docs — and the
copies drifted (the ``serve --help`` watchdog default said one thing
while :class:`~repro.service.workers.Supervision` said another).  Now
each default has exactly one definition here; the parsers, the
implementation defaults, and the docs-check test all read it from this
module, and ``tests/service/test_defaults.py`` fails the build if a
signature or a ``--help`` string stops agreeing with it.

Nothing here is configuration — these are *defaults*.  Every one of
them is overridable per daemon (CLI flags), per client
(:class:`~repro.service.client.ServiceClient` arguments), or per
request (protocol fields).
"""

from __future__ import annotations

# -- addresses ---------------------------------------------------------------

#: Daemons bind, and clients connect, loopback-only unless told otherwise.
HOST = "127.0.0.1"
#: The backend compile daemon (``python -m repro serve``).
PORT = 9363
#: The consistent-hash front end (``python -m repro router``) — one below
#: the backend port so a router + backend pair fits the default layout.
ROUTER_PORT = 9362

# -- the compile daemon ------------------------------------------------------

#: Bounded earliest-deadline-first admission queue depth.
QUEUE_LIMIT = 32
#: ``thread`` or ``process``; process is the crash-isolated supervised tier.
WORKER_MODE = "process"
#: Worker count for ``--worker-mode thread`` (process mode defaults to
#: one worker per scheduler-visible core instead).
THREAD_WORKERS = 2
#: In-memory artifact budget (bytes): 64 MiB.
CACHE_BYTES = 64 * 1024 * 1024
#: Lock shards inside :class:`~repro.service.cache.ArtifactCache`.
CACHE_SHARDS = 8

# -- supervision (the process worker tier) -----------------------------------

#: Per-job wall-clock watchdog before a hung child is SIGKILLed.
JOB_TIMEOUT_S = 120.0
#: First respawn delay after a worker death; doubles per consecutive
#: death of the same slot, capped.
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 2.0
#: Worker deaths across the pool within the window that flip the
#: service ``degraded``.
STORM_THRESHOLD = 3
STORM_WINDOW_S = 30.0
#: Crashes/hangs attributed to one compile key before quarantine.
POISON_THRESHOLD = 2

# -- deadlines ---------------------------------------------------------------

#: ``deadline_ms`` at or below this starts at the linear-scan rung.
DEADLINE_LINEARSCAN_MS = 250.0
#: ``deadline_ms`` at or below this (above the linearscan ceiling)
#: starts at the SSA spill-then-color rung.
DEADLINE_SSASPILL_MS = 500.0
#: ``deadline_ms`` at or below this (above the ssaspill ceiling)
#: starts at GRA.
DEADLINE_GRA_MS = 1000.0
#: How long a handler waits for a deadline-less job before cancelling.
WAIT_S = 300.0
#: Extra wait beyond a job's own deadline, covering worker bookkeeping.
GRACE_S = 60.0

# -- clients -----------------------------------------------------------------

#: Socket timeout for one request/response round trip.
CLIENT_TIMEOUT_S = 600.0
#: Retries of transient failures (0 = historical fail-fast behavior).
CLIENT_RETRIES = 0
#: Base retry delay; doubles per attempt, jittered.
CLIENT_BACKOFF_S = 0.05

# -- requests ----------------------------------------------------------------

#: Compile defaults when the request omits them.
ALLOCATOR = "rap"
K = 5

# -- the router --------------------------------------------------------------

#: Virtual nodes per backend on the consistent-hash ring.
ROUTER_VNODES = 64
#: Seconds between background liveness probes of each backend.
ROUTER_PROBE_INTERVAL_S = 2.0
#: Consecutive failed probes (or forwarding failures) before a backend
#: is marked unhealthy and skipped by the ring.
ROUTER_PROBE_FAILURES = 2
#: Replication factor: each cold artifact is written through to this
#: many ring successors (the compiling node included), so failover
#: lands on a warm replica instead of recompiling.
ROUTER_REPLICATION = 2
#: Byte budget for the hinted-handoff queue (replica writes waiting for
#: a down backend to return).  Oldest hints are dropped — with a
#: counter — when the budget is exceeded.
ROUTER_HANDOFF_BYTES = 8 * 1024 * 1024

# -- the rolling-restart drill -----------------------------------------------

#: Backends spawned by ``loadgen --rolling-restart``.
DRILL_BACKENDS = 3
#: Closed-loop requests issued per drill phase (warm pass, each
#: restart window, final warm pass).
DRILL_REQUESTS_PER_PHASE = 16
#: Post-restart warm hit rate the drill pins (previously-warm keys must
#: still answer warm after every backend restarted).
DRILL_WARM_HIT_RATE = 0.9

# -- the saturation harness --------------------------------------------------

#: Closed-loop concurrency steps swept by ``loadgen --saturate``.
SATURATE_STEPS = (1, 2, 4, 8)
#: Requests issued at each concurrency step.
SATURATE_REQUESTS_PER_STEP = 32
#: A step is "at the knee" once it reaches this fraction of the best
#: observed throughput; the knee is the smallest such concurrency.
SATURATE_KNEE_FRACTION = 0.9
