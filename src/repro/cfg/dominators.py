"""Dominator analysis (Cooper-Harvey-Kennedy iterative algorithm)."""

from __future__ import annotations

from typing import Dict, List, Optional

from .graph import CFG, BasicBlock


class DominatorTree:
    """Immediate dominators of every reachable block."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.idom: Dict[int, Optional[int]] = {}
        self._compute()

    def _compute(self) -> None:
        order = self.cfg.reverse_postorder()
        position = {block.index: i for i, block in enumerate(order)}
        entry = self.cfg.entry_block()
        idom: Dict[int, Optional[int]] = {entry.index: entry.index}

        def intersect(a: int, b: int) -> int:
            while a != b:
                while position[a] > position[b]:
                    a = idom[a]  # type: ignore[assignment]
                while position[b] > position[a]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for block in order:
                if block is entry:
                    continue
                candidates = [
                    pred.index
                    for pred in block.preds
                    if pred.index in idom and pred.index in position
                ]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for other in candidates[1:]:
                    new_idom = intersect(new_idom, other)
                if idom.get(block.index) != new_idom:
                    idom[block.index] = new_idom
                    changed = True
        idom[entry.index] = None
        self.idom = idom

    def dominates(self, a: int, b: int) -> bool:
        """True if block ``a`` dominates block ``b``."""
        node: Optional[int] = b
        while node is not None:
            if node == a:
                return True
            node = self.idom.get(node)
        return False


def natural_loops(cfg: CFG) -> List[Dict]:
    """Find natural loops via back edges ``tail -> head`` where head
    dominates tail.  Returns ``[{"header": int, "body": set[int]}]``."""
    dom = DominatorTree(cfg)
    loops: List[Dict] = []
    for block in cfg.blocks:
        for succ in block.succs:
            if dom.dominates(succ.index, block.index):
                body = {succ.index, block.index}
                stack = [block.index]
                while stack:
                    current = stack.pop()
                    if current == succ.index:
                        continue
                    for pred in cfg.blocks[current].preds:
                        if pred.index not in body:
                            body.add(pred.index)
                            stack.append(pred.index)
                loops.append({"header": succ.index, "body": body})
    return loops
