"""Dominator analysis (Cooper-Harvey-Kennedy iterative algorithm)."""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .graph import CFG, BasicBlock


class DominatorTree:
    """Immediate dominators of every reachable block."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.idom: Dict[int, Optional[int]] = {}
        self._compute()

    def _compute(self) -> None:
        order = self.cfg.reverse_postorder()
        position = {block.index: i for i, block in enumerate(order)}
        entry = self.cfg.entry_block()
        idom: Dict[int, Optional[int]] = {entry.index: entry.index}

        def intersect(a: int, b: int) -> int:
            while a != b:
                while position[a] > position[b]:
                    a = idom[a]  # type: ignore[assignment]
                while position[b] > position[a]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for block in order:
                if block is entry:
                    continue
                candidates = [
                    pred.index
                    for pred in block.preds
                    if pred.index in idom and pred.index in position
                ]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for other in candidates[1:]:
                    new_idom = intersect(new_idom, other)
                if idom.get(block.index) != new_idom:
                    idom[block.index] = new_idom
                    changed = True
        idom[entry.index] = None
        self.idom = idom

    def dominates(self, a: int, b: int) -> bool:
        """True if block ``a`` dominates block ``b``."""
        node: Optional[int] = b
        while node is not None:
            if node == a:
                return True
            node = self.idom.get(node)
        return False

    def children(self) -> Dict[int, List[int]]:
        """Dominator-tree children of every block, sorted by index (the
        deterministic visit order SSA renaming walks)."""
        out: Dict[int, List[int]] = {index: [] for index in self.idom}
        for index, parent in self.idom.items():
            if parent is not None:
                out[parent].append(index)
        for kids in out.values():
            kids.sort()
        return out


def dominance_frontiers(
    cfg: CFG, dom: Optional[DominatorTree] = None
) -> Dict[int, Set[int]]:
    """Dominance frontier of every reachable block.

    Cooper-Harvey-Kennedy's frontier pass: for each join block (two or
    more predecessors), walk up from each predecessor to the join's
    immediate dominator, adding the join to every block passed.  SSA
    construction places phi nodes at the iterated frontier of each
    variable's definition blocks.
    """
    dom = dom or DominatorTree(cfg)
    frontiers: Dict[int, Set[int]] = {index: set() for index in dom.idom}
    for block in cfg.blocks:
        if block.index not in dom.idom or len(block.preds) < 2:
            continue
        target = dom.idom[block.index]
        for pred in block.preds:
            runner: Optional[int] = pred.index
            while runner is not None and runner != target:
                if runner not in frontiers:
                    break  # unreachable predecessor
                frontiers[runner].add(block.index)
                runner = dom.idom[runner]
    return frontiers


def natural_loops(cfg: CFG) -> List[Dict]:
    """Find natural loops via back edges ``tail -> head`` where head
    dominates tail.  Returns ``[{"header": int, "body": set[int]}]``."""
    dom = DominatorTree(cfg)
    loops: List[Dict] = []
    for block in cfg.blocks:
        for succ in block.succs:
            if dom.dominates(succ.index, block.index):
                body = {succ.index, block.index}
                stack = [block.index]
                while stack:
                    current = stack.pop()
                    if current == succ.index:
                        continue
                    for pred in cfg.blocks[current].preds:
                        if pred.index not in body:
                            body.add(pred.index)
                            stack.append(pred.index)
                loops.append({"header": succ.index, "body": body})
    return loops
