"""Reaching definitions for a single register.

RAP's spill-code insertion (§3.1.4 of the paper) must place stores after
definitions *outside* the spilled region that feed loads inside it, and
loads before uses *outside* the region whose definitions were renamed
inside it.  That requires ud/du chains for the one register being
spilled; this module computes them cheaply per register instead of a full
all-registers bit-vector analysis.

Function parameters are modelled as defined by a virtual *entry
definition* (:data:`ENTRY_DEF`), so a spilled parameter is recognized as
needing a store at function entry.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Union

from ..ir.iloc import Instr, Reg
from .graph import CFG

#: Sentinel def site: the register's value on function entry (parameters).
ENTRY_DEF = "<entry>"

DefSite = Union[Instr, str]


class RegChains:
    """ud/du chains of one register over one linear function body."""

    def __init__(self, reg: Reg):
        self.reg = reg
        #: use instruction -> set of reaching def sites
        self.ud: Dict[int, Set[DefSite]] = {}
        self._use_instrs: Dict[int, Instr] = {}
        #: def instruction id -> set of reached use instructions
        self.du: Dict[int, Set[int]] = {}
        self._def_instrs: Dict[int, Instr] = {}
        self.entry_reaches_uses: Set[int] = set()

    def defs_reaching(self, use: Instr) -> Set[DefSite]:
        return self.ud.get(id(use), set())

    def uses_reached_by(self, definition: Instr) -> List[Instr]:
        return [self._use_instrs[uid] for uid in self.du.get(id(definition), set())]

    def all_uses(self) -> List[Instr]:
        return list(self._use_instrs.values())

    def all_defs(self) -> List[Instr]:
        return list(self._def_instrs.values())


def chains_for(cfg: CFG, reg: Reg, is_param: bool = False) -> RegChains:
    """Compute ud/du chains of ``reg`` over ``cfg``."""
    code = cfg.code
    chains = RegChains(reg)

    # Block-level gen: the last def of reg in the block (if any).
    n = len(cfg.blocks)
    gen: List[Set[DefSite]] = [set() for _ in range(n)]
    has_def: List[bool] = [False] * n
    for block in cfg.blocks:
        last: Set[DefSite] = set()
        for index in block.instr_indices():
            instr = code[index]
            if reg in instr.defs:
                last = {instr}
                has_def[block.index] = True
                chains._def_instrs[id(instr)] = instr
        gen[block.index] = last

    reach_in: List[Set[DefSite]] = [set() for _ in range(n)]
    entry_index = cfg.entry_block().index
    if is_param:
        reach_in[entry_index] = {ENTRY_DEF}

    changed = True
    while changed:
        changed = False
        for block in cfg.reverse_postorder():
            in_set: Set[DefSite] = set(reach_in[block.index])
            for pred in block.preds:
                if has_def[pred.index]:
                    in_set |= gen[pred.index]
                else:
                    in_set |= _reach_out(reach_in, gen, has_def, pred.index)
            if block.index == entry_index and is_param:
                in_set.add(ENTRY_DEF)
            if in_set != reach_in[block.index]:
                reach_in[block.index] = in_set
                changed = True

    # Walk each block forward to attach per-use chains.
    for block in cfg.blocks:
        current = set(reach_in[block.index])
        for index in block.instr_indices():
            instr = code[index]
            if reg in instr.uses:
                chains.ud[id(instr)] = set(current)
                chains._use_instrs[id(instr)] = instr
                for site in current:
                    if site is ENTRY_DEF:
                        chains.entry_reaches_uses.add(id(instr))
                    else:
                        chains.du.setdefault(id(site), set()).add(id(instr))
            if reg in instr.defs:
                current = {instr}
    return chains


def _reach_out(reach_in, gen, has_def, index: int) -> Set[DefSite]:
    if has_def[index]:
        return gen[index]
    return reach_in[index]
