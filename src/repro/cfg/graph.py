"""Control-flow graph over linear iloc code.

Used by the GRA baseline (which, like Chaitin's allocator, works from a
CFG) and — via the linearize-then-analyze trick described in
:mod:`repro.pdg.linearize` — by RAP's per-region dataflow queries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..ir.iloc import Instr, Op


class BasicBlock:
    """A maximal straight-line sequence ``code[start:end]``."""

    __slots__ = ("index", "start", "end", "succs", "preds")

    def __init__(self, index: int, start: int, end: int):
        self.index = index
        self.start = start
        self.end = end
        self.succs: List[BasicBlock] = []
        self.preds: List[BasicBlock] = []

    def instr_indices(self) -> range:
        return range(self.start, self.end)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BB{self.index} [{self.start}:{self.end})>"


class CFG:
    """Basic blocks plus the block index of every linear position."""

    def __init__(self, code: Sequence[Instr]):
        self.code = code
        self.blocks: List[BasicBlock] = []
        #: block containing each linear position (None for unreachable gaps
        #: never occurs: every position belongs to exactly one block).
        self.block_at: List[Optional[BasicBlock]] = []
        self._build()

    def entry_block(self) -> BasicBlock:
        return self.blocks[0]

    def _build(self) -> None:
        code = self.code
        n = len(code)
        leaders = {0}
        label_pos: Dict[str, int] = {}
        for index, instr in enumerate(code):
            if instr.op is Op.LABEL:
                leaders.add(index)
                label_pos[instr.label] = index
            elif instr.is_branch and index + 1 < n:
                leaders.add(index + 1)

        ordered = sorted(leaders)
        starts = {start: bi for bi, start in enumerate(ordered)}
        for bi, start in enumerate(ordered):
            end = ordered[bi + 1] if bi + 1 < len(ordered) else n
            self.blocks.append(BasicBlock(bi, start, end))

        self.block_at = [None] * n
        for block in self.blocks:
            for index in block.instr_indices():
                self.block_at[index] = block

        def block_of_label(label: str) -> BasicBlock:
            return self.block_at[label_pos[label]]  # type: ignore[return-value]

        for block in self.blocks:
            if block.end == 0:
                continue
            last = code[block.end - 1] if block.end > block.start else None
            succ_blocks: List[BasicBlock] = []
            if last is None or not last.is_branch:
                if block.end < n:
                    succ_blocks.append(self.block_at[block.end])  # type: ignore[arg-type]
            elif last.op is Op.JMP:
                succ_blocks.append(block_of_label(last.label))
            elif last.op is Op.CBR:
                succ_blocks.append(block_of_label(last.label))
                false_block = block_of_label(last.label_false)
                if false_block is not succ_blocks[0]:
                    succ_blocks.append(false_block)
            # RET: no successors.
            block.succs = succ_blocks
            for succ in succ_blocks:
                succ.preds.append(block)

    def reverse_postorder(self) -> List[BasicBlock]:
        """Blocks in reverse post-order from the entry block."""
        seen = set()
        order: List[BasicBlock] = []

        def visit(block: BasicBlock) -> None:
            stack = [(block, iter(block.succs))]
            seen.add(block.index)
            while stack:
                current, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ.index not in seen:
                        seen.add(succ.index)
                        stack.append((succ, iter(succ.succs)))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self.entry_block())
        order.reverse()
        return order
