"""Control-flow-graph substrate: basic blocks, liveness, dominators."""

from .graph import CFG, BasicBlock
from .liveness import LivenessResult, compute_liveness
from .dominators import DominatorTree, natural_loops
from .reachdefs import ENTRY_DEF, RegChains, chains_for

__all__ = [
    "CFG",
    "BasicBlock",
    "compute_liveness",
    "LivenessResult",
    "DominatorTree",
    "natural_loops",
    "chains_for",
    "RegChains",
    "ENTRY_DEF",
]
