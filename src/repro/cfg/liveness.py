"""Iterative live-variable analysis over the CFG.

Produces both block-level live-in/live-out and a *per-position* view:
``live_at[i]`` is the set of registers live immediately before executing
``code[i]`` (with ``live_at[len(code)]`` empty).  Because linearization
shares instruction objects with the PDG, querying by linear position gives
RAP its per-region live sets directly.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set

from ..ir.iloc import Instr, Reg
from .graph import CFG


class LivenessResult:
    """Liveness facts for one linear function body."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.block_live_in: List[Set[Reg]] = []
        self.block_live_out: List[Set[Reg]] = []
        #: live set immediately before each linear position; length is
        #: ``len(code) + 1`` and the final entry is always empty.
        self.live_at: List[Set[Reg]] = []
        self._index_of: Dict[int, int] = {
            id(instr): i for i, instr in enumerate(cfg.code)
        }

    def live_before(self, instr: Instr) -> Set[Reg]:
        return self.live_at[self._index_of[id(instr)]]

    def live_after(self, instr: Instr) -> Set[Reg]:
        """Registers live immediately after ``instr``.

        For a branch this is the union over its successors, which is what
        interference construction needs.
        """
        index = self._index_of[id(instr)]
        block = self.cfg.block_at[index]
        if block is not None and index == block.end - 1 and instr.is_branch:
            return self.block_live_out[block.index]
        return self.live_at[index + 1]


def compute_liveness(cfg: CFG) -> LivenessResult:
    """Standard backwards may-analysis, iterated to a fixed point."""
    code = cfg.code
    n_blocks = len(cfg.blocks)

    use: List[Set[Reg]] = [set() for _ in range(n_blocks)]
    defs: List[Set[Reg]] = [set() for _ in range(n_blocks)]
    for block in cfg.blocks:
        for index in block.instr_indices():
            instr = code[index]
            for reg in instr.uses:
                if reg not in defs[block.index]:
                    use[block.index].add(reg)
            for reg in instr.defs:
                defs[block.index].add(reg)

    live_in: List[Set[Reg]] = [set() for _ in range(n_blocks)]
    live_out: List[Set[Reg]] = [set() for _ in range(n_blocks)]

    order = cfg.reverse_postorder()
    changed = True
    while changed:
        changed = False
        for block in reversed(order):
            out: Set[Reg] = set()
            for succ in block.succs:
                out |= live_in[succ.index]
            new_in = use[block.index] | (out - defs[block.index])
            if out != live_out[block.index] or new_in != live_in[block.index]:
                live_out[block.index] = out
                live_in[block.index] = new_in
                changed = True

    result = LivenessResult(cfg)
    result.block_live_in = live_in
    result.block_live_out = live_out
    result.live_at = [set() for _ in range(len(code) + 1)]
    for block in cfg.blocks:
        live = set(live_out[block.index])
        for index in range(block.end - 1, block.start - 1, -1):
            instr = code[index]
            # live_at[index] = live *before* this instruction.
            live = (live - set(instr.defs)) | set(instr.uses)
            result.live_at[index] = live
    return result
