"""repro — a full reproduction of Norris & Pollock, "Register Allocation
over the Program Dependence Graph" (PLDI 1994).

Public API tour
---------------

Compile Mini-C, run the reference, allocate with either allocator::

    from repro import compile_source, run_program, allocate_gra, allocate_rap
    from repro.compiler import param_slots
    from repro.interp.machine import FunctionImage, ProgramImage

    prog = compile_source(source_text)
    reference = run_program(prog.reference_image())

    module = prog.fresh_module()
    results = {name: allocate_rap(f, k=5) for name, f in module.functions.items()}

Reproduce the paper's Table 1::

    from repro.bench import build_table1
    table = build_table1()
    print(table.overall_average())     # paper: 2.7

Subpackages: ``frontend`` (Mini-C), ``ir`` (iloc + PDG builder), ``pdg``
(region hierarchy, linearization, liveness, data deps), ``cfg`` (basic
blocks / dataflow), ``regalloc`` (GRA baseline, RAP, coalescing),
``interp`` (the counting interpreter), ``bench`` (the Table-1 suite).
"""

from .compiler import CompiledProgram, compile_source, param_slots
from .interp.machine import FunctionImage, Machine, ProgramImage, run_program
from .regalloc import allocate_gra, allocate_rap

__version__ = "1.0.0"

__all__ = [
    "compile_source",
    "CompiledProgram",
    "param_slots",
    "run_program",
    "Machine",
    "ProgramImage",
    "FunctionImage",
    "allocate_gra",
    "allocate_rap",
    "__version__",
]
