"""The spill-everywhere allocator — the fallback chain's bottom rung.

Every virtual register lives in its own spill slot; each instruction
loads its operands into scratch physical registers, executes, and stores
its result back.  No liveness, no interference graph, no coloring — and
therefore nothing that can fail: any function allocates with any
``k >= 3`` (two operand scratches plus one result scratch).  The code is
awful (that is the point — it is the allocation of last resort, and the
harness records every cell that had to sink this far), but it is
*correct by construction*: register lifetimes never cross an instruction
boundary, so no assignment decision exists to get wrong.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.iloc import Instr, Reg, Symbol, ldm, preg, stm
from ..pdg.graph import PDGFunction
from ..pdg.linearize import linearize
from .chaitin import AllocationResult


def allocate_spillall(
    func: PDGFunction,
    k: int,
    max_rounds: Optional[int] = None,  # accepted for interface parity
    **_ignored,
) -> AllocationResult:
    """Allocate one function by spilling every virtual register.

    ``func`` is read, not mutated (like GRA, it operates on a cloned
    linearization).  Scratch registers: sources use ``r0``/``r1`` in
    operand order, results use ``r2``.
    """
    if k < 3:
        raise ValueError("a load/store architecture needs at least 3 registers")
    code = [instr.clone() for instr in linearize(func).instrs]
    virtual_code = [instr.clone() for instr in code]

    out: List[Instr] = []
    spilled = sorted(
        {reg for instr in code for reg in instr.regs() if reg.is_virtual}
    )

    def slot_of(reg: Reg) -> Symbol:
        return Symbol(f"{func.name}.{reg}", "spill")

    for instr in code:
        # Sources and destination get *separate* mappings: an instruction
        # like ``add %v1, %v2 => %v1`` must read %v1 from its operand
        # scratch while writing the result scratch.
        use_map: Dict[Reg, Reg] = {}
        for position, reg in enumerate(dict.fromkeys(instr.uses)):
            if not reg.is_virtual:
                continue
            scratch = preg(position)
            use_map[reg] = scratch
            out.append(ldm(slot_of(reg), scratch))
        stores: List[Instr] = []
        if instr.dst is not None and instr.dst.is_virtual:
            stores.append(stm(slot_of(instr.dst), preg(2)))
            instr.dst = preg(2)
        instr.srcs = [use_map.get(reg, reg) for reg in instr.srcs]
        out.append(instr)
        out.extend(stores)

    # The trivial assignment: every live range is a point, colored by the
    # scratch convention above.  ``assignment`` stays empty because no
    # virtual register owns a register across instructions.
    return AllocationResult(
        name=func.name,
        code=out,
        k=k,
        rounds=1,
        spilled=spilled,
        assignment={},
        virtual_code=virtual_code,
    )
