"""Linear-scan register allocation — the ladder rung between GRA and
spill-everywhere.

Poletto & Sarkar's linear scan colors *live intervals* (the smallest
linear range covering every position where a register is live or
referenced) instead of an interference graph.  Intervals over-approximate
Chaitin interference — two registers that interfere always have
overlapping intervals — so a conflict-free interval assignment passes the
pipeline's independent coloring recheck, while costing one liveness pass
and a sort per round instead of a graph build.

In the fallback chain (``rap -> gra -> ssaspill -> linearscan ->
spillall``) this is the *reduced-precision* rung: if the hierarchical
allocator, the Chaitin baseline, and the SSA spill-then-color rung all
fail (or are knocked out by fault injection), the
harness lands here and still gets code with real cross-instruction
register lifetimes — measurably better than spill-everywhere's
correct-but-awful bottom rung — before sinking to the allocator of last
resort.  Under pressure the scan spills the interval that ends furthest
away (Poletto's heuristic) and re-runs, reusing the same
:func:`~repro.regalloc.spill.spill_linear` rewriter as GRA so the
spill-slot discipline checker applies unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..cfg.graph import CFG
from ..cfg.liveness import compute_liveness
from ..ir.iloc import Instr, Reg, preg, vreg
from ..pdg.graph import PDGFunction
from ..pdg.linearize import linearize
from .chaitin import MAX_ROUNDS, AllocationError, AllocationResult
from .spill import spill_linear


def _intervals(code: List[Instr]) -> Dict[Reg, Tuple[int, int]]:
    """Live interval of every virtual register, as closed position
    ranges.  A position is covered if the register is live immediately
    before it or the instruction there references it; the latter keeps a
    dead definition's position inside its own interval, which (together
    with liveness extending to the position *after* a definition) makes
    closed-interval overlap a superset of Chaitin interference."""
    live = compute_liveness(CFG(code))
    spans: Dict[Reg, Tuple[int, int]] = {}

    def cover(reg: Reg, position: int) -> None:
        if not reg.is_virtual:
            return
        lo, hi = spans.get(reg, (position, position))
        spans[reg] = (min(lo, position), max(hi, position))

    for position, instr in enumerate(code):
        for reg in instr.regs():
            cover(reg, position)
        for reg in live.live_at[position]:
            cover(reg, position)
    return spans


def allocate_linearscan(
    func: PDGFunction,
    k: int,
    max_rounds: Optional[int] = None,
    **_ignored,
) -> AllocationResult:
    """Allocate one function by linear scan over live intervals.

    ``func`` is read, not mutated (like GRA, it operates on a cloned
    linearization).  Spills and retries until every interval gets one of
    the ``k`` registers.
    """
    if k < 3:
        raise ValueError("a load/store architecture needs at least 3 registers")
    code = [instr.clone() for instr in linearize(func).instrs]
    rounds_cap = max_rounds or MAX_ROUNDS

    next_index = (
        max(
            (reg.index for instr in code for reg in instr.regs() if reg.is_virtual),
            default=-1,
        )
        + 1
    )

    def new_vreg() -> Reg:
        nonlocal next_index
        reg = vreg(next_index)
        next_index += 1
        return reg

    temps: Set[Reg] = set()
    spilled: List[Reg] = []
    assignment: Dict[Reg, int] = {}

    for rounds in range(1, rounds_cap + 1):
        spans = _intervals(code)
        order = sorted(spans.items(), key=lambda item: (item[1][0], item[0].index))
        assignment = {}
        free = set(range(k))
        #: currently allocated intervals as (end, reg); kept sorted
        active: List[Tuple[int, Reg]] = []
        victims: Set[Reg] = set()

        for reg, (start, end) in order:
            while active and active[0][0] < start:
                _, expired = active.pop(0)
                free.add(assignment[expired])
            if free:
                color = min(free)
                free.remove(color)
                assignment[reg] = color
                active.append((end, reg))
                active.sort()
                continue
            # Pressure: spill the furthest-ending spillable interval
            # among the active ones and the current one.  Spill-code
            # temporaries have point-like intervals and must never spill
            # again (Chaitin's infinite-cost rule).
            candidates = [
                (e, r) for e, r in active + [(end, reg)] if r not in temps
            ]
            if not candidates:
                raise AllocationError(
                    f"{func.name}: register pressure irreducible at "
                    f"position {start} with k={k}"
                )
            _, victim = max(candidates)
            victims.add(victim)
            if victim is not reg:
                active.remove((spans[victim][1], victim))
                free.add(assignment.pop(victim))
                color = min(free)
                free.remove(color)
                assignment[reg] = color
                active.append((end, reg))
                active.sort()

        if not victims:
            break
        ordered_victims = sorted(victims, key=lambda r: r.index)
        spilled.extend(ordered_victims)
        code, new_temps = spill_linear(
            code,
            ordered_victims,
            new_vreg,
            lambda reg: f"{func.name}.ls.{reg}",
        )
        temps |= new_temps
    else:
        raise AllocationError(
            f"{func.name}: linear scan did not converge in {rounds_cap} rounds"
        )

    virtual_code = [instr.clone() for instr in code]
    mapping = {reg: preg(color) for reg, color in assignment.items()}
    out: List[Instr] = []
    for instr in code:
        instr.rewrite_regs(mapping)
        if instr.is_copy and instr.dst == instr.srcs[0]:
            continue  # same-register copy, exactly like GRA
        out.append(instr)

    return AllocationResult(
        name=func.name,
        code=out,
        k=k,
        rounds=rounds,
        spilled=spilled,
        assignment=assignment,
        virtual_code=virtual_code,
    )
