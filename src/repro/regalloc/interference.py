"""Interference graphs whose nodes are *groups* of registers.

In Chaitin-style allocation each node is a single virtual register.  RAP's
hierarchical scheme additionally *combines* same-colored nodes when a
region's allocation is finished ("the same color nodes of the interference
graph are combined and this interference graph is saved for incorporation
into the interference graph of its parent region", §3.1.5), so a node in a
parent region's graph "may represent several virtual registers which RAP
has determined can be allocated to the same physical register in the
subregion".

One structure serves both allocators: a node (:class:`IGNode`) owns a set
of member registers; GRA simply never merges.  Merging maintains the
invariant that merged nodes are never adjacent (an adjacency between two
nodes being merged would mean RAP tried to share a register between
interfering values — asserted, because that is a correctness bug).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Set

from ..ir.iloc import Reg

_node_ids = itertools.count(1)


class IGNode:
    """A group of registers constrained to share one physical register."""

    __slots__ = ("id", "members", "adj", "spill_cost", "color")

    def __init__(self, members: Iterable[Reg]):
        self.id = next(_node_ids)
        self.members: Set[Reg] = set(members)
        self.adj: Set[IGNode] = set()
        self.spill_cost: float = 0.0
        self.color: Optional[int] = None

    @property
    def degree(self) -> int:
        return len(self.adj)

    def sort_key(self):
        """Deterministic ordering key (smallest member register)."""
        return min(self.members)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        members = ",".join(str(reg) for reg in sorted(self.members))
        return f"<IGNode {{{members}}} deg={self.degree}>"


class InterferenceGraph:
    """An undirected conflict graph over register groups."""

    def __init__(self) -> None:
        self._node_of: Dict[Reg, IGNode] = {}
        self.nodes: List[IGNode] = []

    # -- queries ------------------------------------------------------------

    def __contains__(self, reg: Reg) -> bool:
        return reg in self._node_of

    def node_of(self, reg: Reg) -> Optional[IGNode]:
        return self._node_of.get(reg)

    def registers(self) -> Set[Reg]:
        return set(self._node_of)

    def interferes(self, a: Reg, b: Reg) -> bool:
        node_a, node_b = self._node_of.get(a), self._node_of.get(b)
        if node_a is None or node_b is None:
            return False
        return node_b in node_a.adj

    def edge_count(self) -> int:
        return sum(node.degree for node in self.nodes) // 2

    # -- construction ----------------------------------------------------------

    def ensure(self, reg: Reg) -> IGNode:
        """The node containing ``reg``, creating a singleton if absent."""
        node = self._node_of.get(reg)
        if node is None:
            node = IGNode([reg])
            self._node_of[reg] = node
            self.nodes.append(node)
        return node

    def add_edge(self, a: Reg, b: Reg) -> None:
        """Record that ``a`` and ``b`` may not share a physical register."""
        node_a, node_b = self.ensure(a), self.ensure(b)
        self.add_node_edge(node_a, node_b)

    def add_node_edge(self, node_a: IGNode, node_b: IGNode) -> None:
        if node_a is node_b:
            return
        node_a.adj.add(node_b)
        node_b.adj.add(node_a)

    def union(self, a: Reg, b: Reg) -> IGNode:
        """Constrain ``a`` and ``b`` to share a register (merge their nodes)."""
        node_a, node_b = self.ensure(a), self.ensure(b)
        return self.merge_nodes(node_a, node_b)

    def merge_nodes(self, node_a: IGNode, node_b: IGNode) -> IGNode:
        if node_a is node_b:
            return node_a
        if node_b in node_a.adj:
            raise ValueError(
                f"cannot merge interfering nodes {node_a!r} and {node_b!r}"
            )
        # Merge the smaller into the larger.
        if len(node_b.members) > len(node_a.members):
            node_a, node_b = node_b, node_a
        for neighbor in node_b.adj:
            neighbor.adj.discard(node_b)
            self.add_node_edge(node_a, neighbor)
        node_a.members |= node_b.members
        node_a.spill_cost += node_b.spill_cost
        for reg in node_b.members:
            self._node_of[reg] = node_a
        self.nodes.remove(node_b)
        return node_a

    def add_group(self, members: Iterable[Reg]) -> IGNode:
        """Union a whole group of registers into one node."""
        regs = list(members)
        node = self.ensure(regs[0])
        for reg in regs[1:]:
            node = self.union(regs[0], reg)
        return node

    def remove_node(self, node: IGNode) -> None:
        """Detach a node and all its edges from the graph."""
        for neighbor in list(node.adj):
            neighbor.adj.discard(node)
        node.adj.clear()
        for reg in node.members:
            self._node_of.pop(reg, None)
        self.nodes.remove(node)

    def absorb_members(self, node: IGNode, regs: Iterable[Reg]) -> None:
        """Add registers to an existing node (same conflicts).

        Used when rematerialization replaces a register's uses inside an
        already-allocated subregion with constant-loading temporaries:
        each temporary's live range is a sub-range of the old register's,
        so inheriting its node (and thus its conflicts) is conservative
        and safe.
        """
        for reg in regs:
            existing = self._node_of.get(reg)
            if existing is node:
                continue
            if existing is not None:
                raise ValueError(f"{reg} already belongs to another node")
            node.members.add(reg)
            self._node_of[reg] = node

    def drop_member(self, reg: Reg) -> None:
        """Remove one register from its node (deleting empty nodes)."""
        node = self._node_of.pop(reg, None)
        if node is None:
            return
        node.members.discard(reg)
        if not node.members:
            self.remove_node(node)

    def rename_member(self, old: Reg, new: Reg) -> None:
        """Replace ``old`` by ``new`` inside its node (same conflicts).

        Used when RAP spills a register in a region and renames it inside
        an already-allocated subregion: the saved subregion graph stays
        valid because the renamed register covers exactly the old one's
        (shortened) live ranges there.
        """
        node = self._node_of.pop(old, None)
        if node is None:
            return
        node.members.discard(old)
        node.members.add(new)
        self._node_of[new] = node

    # -- validation ----------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert symmetry, irreflexivity, and membership consistency."""
        seen: Set[int] = set()
        for node in self.nodes:
            assert node.id not in seen, "duplicate node"
            seen.add(node.id)
            assert node not in node.adj, "self-interference"
            for neighbor in node.adj:
                assert node in neighbor.adj, "asymmetric edge"
            for reg in node.members:
                assert self._node_of[reg] is node, "stale member index"
