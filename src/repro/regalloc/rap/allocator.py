"""RAP: the hierarchical register allocator over the PDG (paper §3).

Three phases:

1. **Bottom-up allocation** (:mod:`.region_alloc`): every region's
   interference graph is built, spill-costed, colored with first-fit
   Briggs-optimistic simplify/select, and combined into a ≤k-node summary
   merged into its parent's graph; spills are local to the region and
   rename the victim per region.  The entry region's coloring is the
   physical register assignment.
2. **Spill-code motion** (:mod:`.motion`): loads and stores are hoisted
   out of loop regions into fresh spill nodes where the carried value owns
   its physical register for the whole loop.
3. **Load/store optimization** (:mod:`.peephole`): Figure 6's redundant
   direct loads and stores are removed within basic blocks, and
   same-register copies are dropped.

``allocate_rap`` mutates the :class:`~repro.pdg.graph.PDGFunction` it is
given (callers use :meth:`CompiledProgram.fresh_module` for a private
copy) and returns the same :class:`~repro.regalloc.chaitin.AllocationResult`
shape as the GRA baseline, so the harness and tests treat the two
allocators interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ...ir.iloc import Instr, Op, Reg, Symbol, preg
from ...pdg.graph import PDGFunction
from ...pdg.linearize import linearize
from ...pdg.liveness import FunctionAnalysis
from ...pdg.nodes import Region
from ..chaitin import AllocationError, AllocationResult
from ..coloring import ColoringResult
from ..interference import InterferenceGraph
from .motion import MotionReport, collect_loop_info, move_spill_code
from .peephole import PeepholeReport, eliminate_redundant_mem_ops
from .region_alloc import allocate_region


class RAPContext:
    """Shared state of one RAP run over one function."""

    def __init__(
        self,
        func: PDGFunction,
        k: int,
        optimistic: bool = True,
        remat: bool = False,
        max_region_rounds: Optional[int] = None,
        paranoid_analysis: bool = False,
    ):
        self.func = func
        self.k = k
        self.optimistic = optimistic
        self.remat = remat
        #: True rebuilds a FunctionAnalysis for every planning query (the
        #: pre-caching behaviour) — kept as an A/B switch so tests can
        #: prove the cache changes rebuild counts but not results.
        self.paranoid_analysis = paranoid_analysis
        #: per-region round budget override (None = module default).
        self.max_region_rounds = max_region_rounds
        #: temporaries introduced by rematerialization (never re-remat).
        self.remat_temps: Set[Reg] = set()
        #: (victim, constant) pairs rematerialized so far.
        self.remat_log: List[Tuple[Reg, object]] = []
        #: active combined graphs of already-allocated subregions
        self.sub_graphs: Dict[int, InterferenceGraph] = {}
        #: loop graphs retained for phase 2, id(region) -> (region, graph)
        self.loop_graphs: Dict[int, Tuple[Region, InterferenceGraph]] = {}
        #: region objects for every id appearing in sub_graphs
        self.region_by_id: Dict[int, Region] = {}
        #: renamed register -> original source register
        self.origin: Dict[Reg, Reg] = {}
        #: original register -> its spill slot (created on first spill)
        self.slots: Dict[Reg, Symbol] = {}
        self.final_graph: Optional[InterferenceGraph] = None
        self.final_coloring: Optional[ColoringResult] = None
        #: telemetry: (region name, victims) per spill event
        self.spill_log: List[Tuple[str, List[Reg]]] = []
        #: telemetry: FunctionAnalysis builds performed during this run.
        self.analysis_builds = 0
        self._analysis: Optional[FunctionAnalysis] = None
        #: False when the cached snapshot may be *structurally* stale
        #: (instructions deleted), which planning must never tolerate.
        self._planning_ok = False
        #: per-region referenced-register sets, valid for one func.version.
        self._region_refs: Dict[int, Set[Reg]] = {}
        self._region_refs_version = -1

    # -- analyses ----------------------------------------------------------

    def analysis(self) -> FunctionAnalysis:
        """A snapshot guaranteed current: rebuilt iff the function's
        version counter moved since the cached snapshot was taken."""
        if self._analysis is None or self._analysis.version != self.func.version:
            self._analysis = FunctionAnalysis(self.func)
            self._planning_ok = True
            self.analysis_builds += 1
        return self._analysis

    fresh_analysis = analysis

    def planning_analysis(self) -> FunctionAnalysis:
        """The round-start snapshot, tolerated stale across same-round
        spill insertions.

        Spilling victim A inserts ``ldm``/``stm`` around existing
        instructions and renames A — it never deletes an instruction,
        never changes the basic-block structure, and never touches a
        different victim B's references.  B's def-use chains, per-region
        liveness, and reachability queries against the round-start
        snapshot therefore still answer correctly, so same-round
        multi-victim spills can share one snapshot.  Anything that
        *deletes* instructions (rematerialization's dead-def sweep) calls
        :meth:`invalidate_analysis`, after which planning rebuilds.
        """
        if (
            not self.paranoid_analysis
            and self._planning_ok
            and self._analysis is not None
        ):
            return self._analysis
        return self.analysis()

    def invalidate_analysis(self) -> None:
        """Drop the snapshot entirely (after structural deletions)."""
        self._analysis = None
        self._planning_ok = False

    def mark_dirty(self) -> None:
        """Record that the function was mutated (bumps its version, so
        the next strict :meth:`analysis` call rebuilds)."""
        self.func.bump_version()

    # -- rename / slot bookkeeping ---------------------------------------------

    def origin_of(self, reg: Reg) -> Reg:
        return self.origin.get(reg, reg)

    def record_rename(self, new: Reg, old: Reg) -> None:
        self.origin[new] = self.origin_of(old)

    def known_renames(self) -> Set[Reg]:
        return set(self.origin)

    def slot_for(self, reg: Reg) -> Symbol:
        source = self.origin_of(reg)
        slot = self.slots.get(source)
        if slot is None:
            slot = Symbol(f"{self.func.name}.{source}", "spill")
            self.slots[source] = slot
        return slot

    # -- graph bookkeeping ---------------------------------------------------------

    def patch_subregion_graph(self, sub: Region, old: Reg, new: Reg) -> None:
        """After renaming ``old`` to ``new`` inside ``sub``, keep the saved
        graphs (the subregion's combined graph and any retained loop graph
        within the subtree) consistent."""
        graph = self.sub_graphs.get(id(sub))
        if graph is not None:
            graph.rename_member(old, new)
        member_ids = {id(r) for r in sub.walk_regions()}
        for region_id, (region, loop_graph) in self.loop_graphs.items():
            if region_id in member_ids:
                loop_graph.rename_member(old, new)

    def save_loop_graph(self, region: Region, graph: InterferenceGraph) -> None:
        self.loop_graphs[id(region)] = (region, graph)

    def region_refs(self, region: Region) -> Set[Reg]:
        """Registers referenced in ``region``'s subtree, cached per
        ``func.version``.

        Equivalent to ``region.referenced_regs()`` but computed
        recursively with memoization, so overlapping subtrees (a loop
        graph retained inside another saved region) and repeated queries
        at the same version share one walk instead of re-walking the
        whole subtree per saved graph.
        """
        if self._region_refs_version != self.func.version:
            self._region_refs.clear()
            self._region_refs_version = self.func.version
        refs = self._region_refs.get(id(region))
        if refs is None:
            refs = set()
            for item in region.items:
                if isinstance(item, Instr):
                    refs.update(item.regs())
                elif isinstance(item, Region):
                    refs |= self.region_refs(item)
                else:  # Predicate
                    refs.update(item.branch.regs())
                    for sub in item.regions():
                        refs |= self.region_refs(sub)
            self._region_refs[id(region)] = refs
        return refs

    def register_sub_graph(
        self, region: Region, graph: InterferenceGraph
    ) -> None:
        self.sub_graphs[id(region)] = graph
        self.region_by_id[id(region)] = region

    def purge_unreferenced_members(self) -> None:
        """Drop saved-graph members no longer referenced in their region.

        Every member of a region's combined graph is referenced somewhere
        in that region's subtree — an invariant the dead-code sweep after
        rematerialization can break (it may delete, e.g., a then-branch
        computation whose consumer was renamed dead).  A stale member is
        dangerous: importing the graph at an ancestor would merge the
        still-live outer register into the subregion's color group even
        though it no longer has any connection to it.
        """
        targets = [
            (self.region_by_id[rid], graph)
            for rid, graph in self.sub_graphs.items()
        ]
        targets.extend(self.loop_graphs.values())
        for region, graph in targets:
            refs = self.region_refs(region)
            for reg in sorted(graph.registers() - refs):
                graph.drop_member(reg)

    def patch_graphs_for_remat(self, victim: Reg, temps: Set[Reg]) -> None:
        """After a function-wide rematerialization of ``victim``, keep
        every saved graph consistent: the constant-loading temporaries
        referenced inside a saved region inherit the victim's node (their
        live ranges are sub-ranges of its old ones), and the victim itself
        is dropped everywhere."""
        targets = [
            (self.region_by_id[rid], graph)
            for rid, graph in self.sub_graphs.items()
        ]
        targets.extend(self.loop_graphs.values())
        for region, graph in targets:
            if victim not in graph:
                continue
            node = graph.node_of(victim)
            refs = self.region_refs(region)
            inherit = sorted(temp for temp in temps if temp in refs)
            unplaced = [t for t in inherit if graph.node_of(t) is None]
            graph.absorb_members(node, unplaced)
            graph.drop_member(victim)

    def log_spill(self, region: Region, victims: List[Reg]) -> None:
        self.spill_log.append((region.name, list(victims)))


@dataclass
class RAPResult(AllocationResult):
    """GRA-compatible result plus RAP phase telemetry."""

    spill_log: List[Tuple[str, List[Reg]]] = field(default_factory=list)
    motion: MotionReport = field(default_factory=MotionReport)
    peephole: PeepholeReport = field(default_factory=PeepholeReport)
    rematerialized: List[Tuple[Reg, object]] = field(default_factory=list)
    #: FunctionAnalysis (linearize + CFG + liveness) builds this run.
    analysis_builds: int = 0
    #: Snapshot of the linearized body after the physical rewrite but
    #: before spill-code motion (cloned instructions), plus each loop
    #: region's span within it — the raw material the independent motion
    #: validator recomputes availability over.  ``None`` when motion was
    #: disabled or had nothing to consider.
    pre_motion_code: Optional[List[Instr]] = None
    #: loop region name -> (start, end) span in ``pre_motion_code``.
    loop_spans: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: Snapshot of the linear body handed to the Figure-6 peephole
    #: (cloned), for the symbolic before/after equivalence recheck.
    pre_peephole_code: Optional[List[Instr]] = None

    def telemetry(self) -> Dict[str, int]:
        counters = super().telemetry()
        counters["peephole_hits"] = self.peephole.total
        counters["analysis_builds"] = self.analysis_builds
        return counters


def allocate_rap(
    func: PDGFunction,
    k: int,
    optimistic: bool = True,
    enable_motion: bool = True,
    enable_peephole: bool = True,
    remat: bool = False,
    global_peephole: bool = False,
    max_rounds: Optional[int] = None,
    paranoid_analysis: bool = False,
) -> RAPResult:
    """Run all three RAP phases on ``func`` (mutating it).

    ``remat=True`` enables the rematerialization extension (see
    :mod:`repro.regalloc.remat`); ``global_peephole=True`` replaces the
    basic-block peephole with the whole-CFG availability pass (the
    "move spill code out of any subregion" future-work extension, see
    :mod:`.global_opt`).  ``max_rounds`` overrides the per-region
    build/spill round budget.  ``paranoid_analysis=True`` disables the
    same-round analysis-snapshot reuse (rebuilding one per spill victim,
    the pre-caching behaviour) — results are identical either way; the
    flag exists so tests can prove that.
    """
    if k < 3:
        raise ValueError("a load/store architecture needs at least 3 registers")

    # ---- phase 1: bottom-up hierarchical allocation -------------------------
    ctx = RAPContext(
        func, k, optimistic=optimistic, remat=remat,
        max_region_rounds=max_rounds,
        paranoid_analysis=paranoid_analysis,
    )
    allocate_region(ctx, func.entry)
    if ctx.final_coloring is None:  # pragma: no cover - defensive
        raise AllocationError(f"{func.name}: entry region never colored")

    assignment: Dict[Reg, int] = {}
    mapping: Dict[Reg, Reg] = {}
    for node, color in ctx.final_coloring.colors.items():
        for reg in node.members:
            assignment[reg] = color
            mapping[reg] = preg(color)

    # Metadata for phase 2 must be collected before the rewrite erases the
    # virtual-register view; so must the snapshot the validate stage
    # rechecks the coloring against.
    loop_infos = (
        collect_loop_info(func, set(ctx.slots.values())) if enable_motion else []
    )
    virtual_code = [instr.clone() for instr in linearize(func).instrs]

    for instr in func.walk_instrs():
        instr.rewrite_regs(mapping)
    func.bump_version()

    # ---- phase 2: spill-code motion out of loops ----------------------------------
    motion_report = MotionReport()
    pre_motion_code: Optional[List[Instr]] = None
    loop_spans: Dict[str, Tuple[int, int]] = {}
    if enable_motion:
        if any(info.slot_instrs for info in loop_infos):
            # The motion validator replays every hoist against the
            # pre-motion view; snapshot it (cloned — motion mutates the
            # PDG in place) together with each loop region's span.
            pre_motion = linearize(func)
            pre_motion_code = [instr.clone() for instr in pre_motion.instrs]
            loop_spans = {
                region.name: span
                for region, span in pre_motion.region_span.items()
                if region.is_loop
            }
        slot_of_origin = dict(ctx.slots)
        motion_report = move_spill_code(
            func, loop_infos, assignment, dict(ctx.origin), slot_of_origin, k
        )

    # ---- phase 3: local load/store elimination --------------------------------------
    code = list(linearize(func).instrs)
    code = [
        instr
        for instr in code
        if not (instr.op is Op.I2I and instr.srcs[0] == instr.dst)
    ]
    peephole_report = PeepholeReport()
    pre_peephole_code: Optional[List[Instr]] = None
    if enable_peephole:
        if global_peephole:
            # The whole-CFG pass moves facts across block boundaries, so
            # the per-window peephole validator does not apply; no
            # snapshot means the validate stage skips it.
            from .global_opt import eliminate_redundant_mem_ops_global

            code, peephole_report = eliminate_redundant_mem_ops_global(code)
        else:
            pre_peephole_code = [instr.clone() for instr in code]
            code, peephole_report = eliminate_redundant_mem_ops(
                code, function=func.name
            )

    spilled = sorted({ctx.origin_of(reg) for _, regs in ctx.spill_log for reg in regs})
    return RAPResult(
        name=func.name,
        code=code,
        k=k,
        rounds=1 + len(ctx.spill_log),
        spilled=spilled,
        assignment=assignment,
        virtual_code=virtual_code,
        spill_log=ctx.spill_log,
        motion=motion_report,
        peephole=peephole_report,
        rematerialized=list(ctx.remat_log),
        analysis_builds=ctx.analysis_builds,
        pre_motion_code=pre_motion_code,
        loop_spans=loop_spans,
        pre_peephole_code=pre_peephole_code,
    )
