"""Phase 2 of RAP: spill-code motion out of loops (paper §3.2).

"After the allocation phase, RAP attempts to move loads and stores outside
of loops which were possibly inserted there because the virtual register
was spilled in another region. ... The spill code movement phase proceeds
in a top down traversal of the PDG so that moving loads and stores outside
of the entire loop nest is attempted before moving the loads and stores
out of inner loops of that nest.  Special spill nodes are created in the
PDG to hold the moved spill code."

Movability condition.  The paper tests "the virtual register was not
combined with another virtual register in the region" against the loop
region's saved interference graph.  We apply the equivalent test at the
physical level, which also covers registers renamed per-subregion during
spilling: all spill traffic of the slot inside the loop targets one
physical register ``r``, and no *other* source register in the loop was
assigned ``r``.  Live-through-but-unreferenced registers can never occupy
``r`` either, thanks to RAP's boundary interference rule, so ``r`` is free
to carry the value across the whole loop.

Transformation.  Hoisting happens only when the loop's *first* interior
access of the slot is a load — the paper's "a load must be inserted in the
spill node immediately prior to the loop if the first reference in the
loop is a use" — which also guarantees the preload reads an initialized
slot (the spill-discipline invariant) and makes the trailing store
zero-trip safe.  Interior ``ldm``/``stm`` of the slot are then deleted,
one preload goes in a spill node before the loop, and a store goes in a
spill node after the loop whenever the loop wrote the slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ...ir.iloc import Instr, Op, Reg, Symbol, ldm, preg, stm
from ...pdg.graph import PDGFunction
from ...pdg.nodes import Predicate, Region
from ...resilience import faults


@dataclass(frozen=True)
class HoistCert:
    """What one hoist claims: loop ``loop_name`` carried ``slot`` in
    physical register ``color`` for the whole loop, and ``had_store``
    says whether a trailing store was required (the loop wrote the slot).
    The independent motion validator recomputes every claim from the
    pre-motion snapshot instead of trusting this record; the certificate
    only tells it *which* hoists to recheck."""

    loop_name: str
    slot: Symbol
    color: int
    had_store: bool


@dataclass
class LoopSpillInfo:
    """Pre-rewrite metadata about one loop region, gathered before virtual
    registers are rewritten to physical ones."""

    loop: Region
    referenced_vregs: Set[Reg]
    #: slot -> spill instructions (ldm/stm) inside the loop's subtree
    slot_instrs: Dict[Symbol, List[Instr]]


@dataclass
class MotionReport:
    """What the motion phase did (used by tests and the ablation bench)."""

    hoisted_slots: List[Tuple[str, Symbol]] = field(default_factory=list)
    #: one certificate per hoist, for the independent motion validator.
    hoists: List[HoistCert] = field(default_factory=list)
    deleted_instrs: int = 0
    inserted_loads: int = 0
    inserted_stores: int = 0


def collect_loop_info(
    func: PDGFunction, spill_slots: Set[Symbol]
) -> List[LoopSpillInfo]:
    """Gather per-loop metadata, outermost loops first (pre-order)."""
    infos: List[LoopSpillInfo] = []
    for region in func.walk_regions():
        if not region.is_loop:
            continue
        slot_instrs: Dict[Symbol, List[Instr]] = {}
        referenced: Set[Reg] = set()
        for instr in region.walk_instrs():
            referenced.update(instr.regs())
            if instr.op in (Op.LDM, Op.STM) and instr.addr in spill_slots:
                slot_instrs.setdefault(instr.addr, []).append(instr)
        infos.append(LoopSpillInfo(region, referenced, slot_instrs))
    return infos


def move_spill_code(
    func: PDGFunction,
    infos: List[LoopSpillInfo],
    assignment: Dict[Reg, int],
    origin_of: Dict[Reg, Reg],
    slot_of_origin: Dict[Reg, Symbol],
    k: Optional[int] = None,
) -> MotionReport:
    """Hoist movable spill code out of loops (runs after the physical
    rewrite, using the pre-rewrite metadata in ``infos``)."""
    report = MotionReport()
    removed: Set[int] = set()

    for info in infos:
        for slot in sorted(info.slot_instrs, key=lambda s: s.name):
            instrs = [
                instr for instr in info.slot_instrs[slot] if id(instr) not in removed
            ]
            if not instrs:
                continue
            family = {
                reg
                for reg in info.referenced_vregs
                if slot_of_origin.get(origin_of.get(reg, reg)) == slot
            }
            if not family:
                continue
            colors = {assignment.get(reg) for reg in family}
            if len(colors) != 1 or None in colors:
                continue
            color = colors.pop()
            intruders = {
                reg
                for reg in info.referenced_vregs
                if assignment.get(reg) == color and reg not in family
            }
            if intruders:
                continue

            had_store = any(instr.op is Op.STM for instr in instrs)
            if instrs[0].op is not Op.LDM:
                # The loop's first access is a store (the value is not
                # live into the loop).  Hoisting would need a zero-trip
                # preload of a slot no store dominates — breaking the
                # spill-slot discipline invariant (every load preceded by
                # a store on all paths) — or an unconditional trailing
                # store of a possibly-uninitialized register.  The paper
                # only hoists a load "if the first reference in the loop
                # is a use"; we mirror that and leave such slots alone.
                continue
            _delete_instrs(info.loop, {id(instr) for instr in instrs})
            removed.update(id(instr) for instr in instrs)
            report.deleted_instrs += len(instrs)

            parent, index = _locate(func, info.loop)
            register = preg(color)
            load_color = color
            if faults.active() is not None and k is not None:
                load_color = faults.maybe_wrong_preg(
                    "rap.motion.wrong-reg", func.name, color, k
                )
            if had_store:
                drop_store = faults.active() is not None and faults.should_fire(
                    "rap.motion.drop-store", func.name
                )
                if not drop_store:
                    spill_node = Region(
                        kind="spill", note=f"post-{info.loop.name}"
                    )
                    spill_node.items.append(stm(slot, register))
                    parent.items.insert(index + 1, spill_node)
                    report.inserted_stores += 1
            # The first interior access was a load, so the value is live
            # into the loop: one preload replaces the per-iteration loads
            # (and makes the trailing store zero-trip safe).
            spill_node = Region(kind="spill", note=f"pre-{info.loop.name}")
            spill_node.items.append(ldm(slot, preg(load_color)))
            parent.items.insert(index, spill_node)
            report.inserted_loads += 1
            report.hoisted_slots.append((info.loop.name, slot))
            report.hoists.append(
                HoistCert(info.loop.name, slot, color, had_store)
            )
    if report.deleted_instrs or report.hoisted_slots:
        func.bump_version()
    return report


def _locate(func: PDGFunction, region: Region) -> Tuple[Region, int]:
    parents = func.parent_map()
    if region not in parents:
        raise ValueError(f"{region.name} has no parent (cannot hoist)")
    return parents[region]


def _delete_instrs(root: Region, doomed: Set[int]) -> None:
    """Remove instructions (by identity) anywhere in ``root``'s subtree."""
    for region in root.walk_regions():
        region.items = [
            item
            for item in region.items
            if not (isinstance(item, Instr) and id(item) in doomed)
        ]
