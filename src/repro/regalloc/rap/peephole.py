"""Phase 3 of RAP: basic-block load/store elimination (paper §3.3, Figure 6).

The hierarchical allocator renames a spilled register per subregion; when
several renamed copies land in the same physical register, a basic block
ends up with redundant direct loads and stores.  Figure 6's five patterns
(``ldm r, A`` is a direct load of address A into r; ``stm A, r`` a direct
store):

1. ``ldm r2,A ... ldm r2,A``          → second load deleted
2. ``ldm r2,A ... ldm r3,A``          → second load becomes ``mv r3, r2``
3. ``ldm r2,A ... stm A,r2``          → store deleted
4. ``stm A,r2 ... stm A,r2``          → second store deleted
5. ``stm A,r2 ... ldm r2,A``          → load deleted

all under "no redefinition of the register in between" — plus, in our
implementation, "no other store to A in between" (our symbolic ``ldm``/
``stm`` addresses make both conditions exact, no alias analysis needed).

A single forward pass per basic block tracks, per symbolic address, which
register currently mirrors the memory value; heap ``store`` instructions
cannot touch symbolic slots (disjoint address spaces), and calls clobber
only ``global``-space symbols (spill slots are private to the activation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...ir.iloc import Instr, Op, Reg, Symbol, copy as copy_instr
from ...resilience import faults


@dataclass
class PeepholeReport:
    """Counts of rewrites applied (per Figure 6 pattern family)."""

    loads_deleted: int = 0
    loads_to_copies: int = 0
    stores_deleted: int = 0

    @property
    def total(self) -> int:
        return self.loads_deleted + self.loads_to_copies + self.stores_deleted


def eliminate_redundant_mem_ops(
    code: List[Instr],
    function: str = "?",
) -> Tuple[List[Instr], PeepholeReport]:
    """Apply Figure 6 within each basic block of linear ``code``."""
    report = PeepholeReport()
    out: List[Instr] = []
    #: address -> register currently holding that address's value
    holder: Dict[Symbol, Reg] = {}

    def kill_register(reg: Reg) -> None:
        for addr in [a for a, r in holder.items() if r == reg]:
            del holder[addr]

    for instr in code:
        op = instr.op

        if op is Op.LABEL or instr.is_branch:
            holder.clear()
            out.append(instr)
            continue

        if op is Op.LDM:
            current = holder.get(instr.addr)
            if current is not None:
                if current == instr.dst:
                    report.loads_deleted += 1  # patterns 1 and 5
                    continue
                replacement = copy_instr(current, instr.dst)
                report.loads_to_copies += 1  # pattern 2
                kill_register(replacement.dst)
                holder[instr.addr] = replacement.dst
                out.append(replacement)
                continue
            kill_register(instr.dst)
            holder[instr.addr] = instr.dst
            out.append(instr)
            continue

        if op is Op.STM:
            if holder.get(instr.addr) == instr.srcs[0]:
                report.stores_deleted += 1  # patterns 3 and 4
                continue
            holder[instr.addr] = instr.srcs[0]
            out.append(instr)
            continue

        if op is Op.CALL:
            # A callee may read/write global scalars but can never touch
            # this activation's spill slots.
            for addr in [a for a in holder if a.space == "global"]:
                del holder[addr]

        for defined in instr.defs:
            if (
                faults.active() is not None
                and any(holder.get(a) == defined for a in holder)
                and faults.should_fire("rap.peephole.stale-holder", function)
            ):
                # Injected stale-availability bug: the holder map keeps
                # claiming `defined` mirrors its address after this
                # redefinition, so a later load of that address is
                # wrongly deleted or forwarded.
                continue
            kill_register(defined)
        out.append(instr)
    return out, report
