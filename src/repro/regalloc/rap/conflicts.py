"""Interference-graph construction for one region (paper §3.1.1).

Two steps, exactly as in the paper:

``add_region_conflicts``
    builds the part of the graph contributed by the *parent region's own*
    intermediate code — plus the RAP-specific rule that "adds an
    interference between any two virtual registers that are live on
    entrance to the parent region and referenced within the region"
    (restricted here, as in Figure 3, to registers that appear in the
    parent's code; live-in registers referenced only in subregions are
    handled by the first loop of ``add_subregion_conflicts``).  Registers
    that are live through the region but never referenced in it are
    deliberately **omitted** so that referenced registers get coloring
    priority (the paper's ``d`` example in Figure 3).

``add_subregion_conflicts``
    Figure 4: imports each subregion's *combined* graph (each of whose
    nodes may stand for several virtual registers the subregion allocation
    decided can share a register), merging nodes that contain the same
    register, then adds the "live but not referenced here" interferences
    in both directions.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ...ir.iloc import Instr, Reg
from ...pdg.liveness import FunctionAnalysis
from ...pdg.nodes import Region
from ..interference import IGNode, InterferenceGraph


def add_region_conflicts(
    region: Region, graph: InterferenceGraph, analysis: FunctionAnalysis
) -> None:
    """Populate ``graph`` from the parent region's directly attached code."""
    direct = region.direct_instrs()
    direct_refs: Set[Reg] = set()
    # Nodes enter the graph in first-reference program order; the coloring
    # pass relies on that order for its copy-aligning first-fit behaviour.
    for instr in direct:
        for reg in instr.regs():
            direct_refs.add(reg)
            graph.ensure(reg)

    for instr in direct:
        if not instr.defs:
            continue
        live_after = analysis.live_after(instr)
        for defined in instr.defs:
            for other in live_after:
                if other == defined or other not in direct_refs:
                    continue
                if instr.is_copy and other == instr.srcs[0]:
                    continue
                graph.add_edge(defined, other)

    # Live on entrance to the parent region and referenced in its code:
    # pairwise interference (the RAP addition to the standard technique).
    live_in = analysis.live_in(region)
    boundary = sorted(reg for reg in live_in if reg in direct_refs)
    for i, first in enumerate(boundary):
        for second in boundary[i + 1:]:
            graph.add_edge(first, second)


def add_subregion_conflicts(
    region: Region,
    graph: InterferenceGraph,
    sub_graphs: Dict[int, InterferenceGraph],
    analysis: FunctionAnalysis,
) -> None:
    """Incorporate subregion graphs into the parent's graph (Figure 4).

    ``sub_graphs`` maps ``id(subregion)`` to that subregion's combined
    interference graph (at most k nodes).
    """
    subregions = region.subregions()

    # Vars = registers referenced in the parent's code or any subregion.
    vars_: Set[Reg] = set()
    for instr in region.direct_instrs():
        vars_.update(instr.regs())
    for sub in subregions:
        vars_ |= analysis.referenced(sub)

    # First loop of Figure 4: registers live into the region, referenced
    # somewhere in it, but absent from the graph so far (i.e. referenced
    # only inside subregions) interfere with everything currently present
    # — including each other, since each is added to the graph in turn.
    live_in = analysis.live_in(region)
    for reg in sorted(vars_):
        if reg in graph or reg not in live_in:
            continue
        existing = list(graph.nodes)
        node = graph.ensure(reg)
        for other in existing:
            graph.add_node_edge(node, other)

    # Second loop: merge in each subregion's combined graph and add the
    # boundary interferences for registers live into (but not referenced
    # in) that subregion.
    for sub in subregions:
        sub_graph = sub_graphs.get(id(sub))
        if sub_graph is None:
            continue
        image = _import_graph(graph, sub_graph)
        sub_live_in = analysis.live_in(sub)
        sub_refs = analysis.referenced(sub)
        for reg in sorted(vars_):
            if reg in sub_refs:
                continue
            if reg not in sub_live_in:
                continue
            outsider = graph.ensure(reg)
            for node in image:
                if node is not outsider:
                    graph.add_node_edge(outsider, node)


def _import_graph(
    graph: InterferenceGraph, sub_graph: InterferenceGraph
) -> List[IGNode]:
    """Merge ``sub_graph`` (nodes and edges) into ``graph``.

    Returns the parent-graph nodes that now stand for the subregion's
    nodes.  Nodes sharing a register are merged — this is how a subregion
    node "is combined with one of the parent's nodes if the nodes
    correspond to the same virtual register".
    """
    image: Dict[int, IGNode] = {}
    for node in sorted(sub_graph.nodes, key=IGNode.sort_key):
        members = sorted(node.members)
        target = graph.ensure(members[0])
        for reg in members[1:]:
            target = graph.union(members[0], reg)
        image[node.id] = target
    for node in sub_graph.nodes:
        for neighbor in node.adj:
            graph.add_node_edge(image[node.id], image[neighbor.id])
    return list(dict.fromkeys(image.values()))
