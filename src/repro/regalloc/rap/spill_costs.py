"""Spill-cost calculation for one region's graph (paper Figure 5).

The algorithm, verbatim from the paper:

* nodes whose registers are all local to a single subregion, or contain a
  register already spilled in this region, get cost 999999 — "spilling
  these virtual registers will not help to make the graph colorable";
* otherwise cost starts at the number of references in the *parent
  region's* code (a load before each use, a store after each definition);
* plus one for each subregion the register enters live-and-used
  (a load would be needed there) and one for each subregion it leaves
  live-and-defined (a store would be needed);
* the degree of every node is incremented once for every *other* node
  that does not interfere with it but contains a register global to the
  region when this node does too (the global/global coloring constraint);
* finally each cost is divided by that adjusted degree.
"""

from __future__ import annotations

from typing import Dict, Set

from ...ir.iloc import Reg
from ...pdg.liveness import FunctionAnalysis
from ...pdg.nodes import Region
from ..coloring import INFINITE_COST, effective_degree
from ..interference import IGNode, InterferenceGraph


def calc_spill_costs(
    region: Region,
    graph: InterferenceGraph,
    analysis: FunctionAnalysis,
    spilled_here: Set[Reg],
    global_nodes: Set[IGNode],
) -> None:
    """Attach ``spill_cost`` to every node of ``graph`` (Figure 5)."""
    subregions = region.subregions()

    # Pre-compute per-subregion boundary sets:
    #   Livein_Ri  = live on entrance to Ri and *used* in Ri
    #   Liveout_Ri = live on exit from Ri and *defined* in Ri
    live_in_used = []
    live_out_defined = []
    for sub in subregions:
        used: Set[Reg] = set()
        defined: Set[Reg] = set()
        for instr in sub.walk_instrs():
            used.update(instr.uses)
            defined.update(instr.defs)
        live_in_used.append(analysis.live_in(sub) & used)
        live_out_defined.append(analysis.live_out(sub) & defined)

    # Initialization: protect hopeless spill candidates.
    for node in graph.nodes:
        if any(reg in spilled_here for reg in node.members):
            node.spill_cost = INFINITE_COST
        elif any(
            all(analysis.is_local_to(reg, sub) for reg in node.members)
            for sub in subregions
        ):
            node.spill_cost = INFINITE_COST
        else:
            node.spill_cost = 0.0

    # References in the parent region's own code.
    for instr in region.direct_instrs():
        for reg in instr.regs():
            node = graph.node_of(reg)
            if node is not None:
                node.spill_cost += 1

    # Loads/stores that a spill would force on subregion boundaries.
    for index, _sub in enumerate(subregions):
        for node in graph.nodes:
            if any(reg in live_in_used[index] for reg in node.members):
                node.spill_cost += 1
            if any(reg in live_out_defined[index] for reg in node.members):
                node.spill_cost += 1

    # Divide by the (global/global-adjusted) degree.
    for node in graph.nodes:
        node.spill_cost /= max(effective_degree(node, global_nodes), 1)


def compute_global_nodes(
    region: Region, graph: InterferenceGraph, analysis: FunctionAnalysis
) -> Set[IGNode]:
    """Nodes containing a register that is global to ``region``.

    A region-level invariant keeps at most one global register per merged
    node, so "the node's global register" is well defined.
    """
    return {
        node
        for node in graph.nodes
        if any(analysis.is_global_to(reg, region) for reg in node.members)
    }
