"""Global redundant load/store elimination — the paper's last future-work
item, generalizing the Figure 6 peephole across basic blocks.

§4 / Conclusions: "RAP currently attempts to move spill code out of loop
regions, but moving spill code out of any subregion is also likely to
reduce the amount of spill code executed."  The effect the authors are
after — one load where sibling regions each issued one — is exactly
*partial redundancy* of direct loads, so we implement it as a forward
must-availability dataflow over the whole CFG:

* a fact ``slot -> (reg, synced)`` means "on **every** path to this point,
  register ``reg`` holds the current value of ``slot``" (and, if
  ``synced``, memory already equals the register, making a store dead);
* the meet is intersection with agreement (same holder register on all
  predecessors); block transfer is the peephole's value tracking;
* at a ``ldm r, S`` with an available fact: delete (same register) or
  rewrite to a copy (different register); at a ``stm S, r`` with a synced
  fact for ``r``: delete.

Calls kill global-space facts (never activation-private spill slots);
heap ``store`` cannot touch symbolic slots.  Deleting a load/store never
invalidates the analysis (the facts it generated are already available),
so one pass per fixpoint round suffices; the driver iterates until no
rewrite fires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ...cfg.graph import CFG
from ...ir.iloc import Instr, Op, Reg, Symbol, copy as copy_instr
from .peephole import PeepholeReport

#: A fact value: (holder register, memory-synced flag).
Fact = Tuple[Reg, bool]
#: Lattice top for a whole block-in state (unknown, pre-fixpoint).
_TOP = None

MAX_ROUNDS = 10


def _transfer(state: Dict[Symbol, Fact], instr: Instr) -> None:
    """Apply one instruction to a fact state (in place)."""
    op = instr.op

    def kill_register(reg: Reg) -> None:
        for addr in [a for a, (r, _) in state.items() if r == reg]:
            del state[addr]

    if op is Op.LDM:
        kill_register(instr.dst)
        state[instr.addr] = (instr.dst, True)
        return
    if op is Op.STM:
        state[instr.addr] = (instr.srcs[0], True)
        return
    if op is Op.CALL:
        for addr in [a for a in state if a.space == "global"]:
            del state[addr]
    if op is Op.I2I:
        # The copy's destination mirrors whatever its source mirrors.
        src_facts = [
            (addr, fact) for addr, fact in state.items() if fact[0] == instr.srcs[0]
        ]
        kill_register(instr.dst)
        # Keep at most one mirror via the copy (deterministic: first addr).
        for addr, (reg, synced) in sorted(src_facts, key=lambda x: x[0].name)[:1]:
            state[addr] = (instr.dst, synced)
        return
    for reg in instr.defs:
        kill_register(reg)


def _meet(states: List[Optional[Dict[Symbol, Fact]]]) -> Dict[Symbol, Fact]:
    known = [s for s in states if s is not _TOP]
    if not known:
        return {}
    result = dict(known[0])
    for other in known[1:]:
        for addr in list(result):
            fact = other.get(addr)
            if fact is None or fact[0] != result[addr][0]:
                del result[addr]
            elif not fact[1]:
                result[addr] = (result[addr][0], False)
    return result


def eliminate_redundant_mem_ops_global(
    code: List[Instr],
) -> Tuple[List[Instr], PeepholeReport]:
    """One whole-function availability pass; apply until a fixpoint."""
    report = PeepholeReport()
    for _ in range(MAX_ROUNDS):
        code, changed = _one_round(code, report)
        if not changed:
            break
    return code, report


def _one_round(
    code: List[Instr], report: PeepholeReport
) -> Tuple[List[Instr], bool]:
    cfg = CFG(code)
    n = len(cfg.blocks)
    entry = cfg.entry_block().index
    #: optimistic initialization (TOP = "all facts"); the meet skips TOP
    #: predecessors, so facts shrink monotonically to the fixpoint.
    block_out: List[Optional[Dict[Symbol, Fact]]] = [_TOP] * n
    block_in: List[Dict[Symbol, Fact]] = [{} for _ in range(n)]

    order = cfg.reverse_postorder()
    changed = True
    while changed:
        changed = False
        for block in order:
            if block.index == entry:
                in_state: Dict[Symbol, Fact] = {}
            else:
                in_state = _meet([block_out[p.index] for p in block.preds])
            block_in[block.index] = in_state
            state = dict(in_state)
            for index in block.instr_indices():
                _transfer(state, code[index])
            if block_out[block.index] != state:
                block_out[block.index] = state
                changed = True

    # Rewrite using the converged in-states.
    out: List[Instr] = []
    rewrote = False
    for block in cfg.blocks:
        state = dict(block_in[block.index] or {})
        for index in block.instr_indices():
            instr = code[index]
            if instr.op is Op.LDM:
                fact = state.get(instr.addr)
                if fact is not None:
                    holder, _ = fact
                    if holder == instr.dst:
                        report.loads_deleted += 1
                        rewrote = True
                        continue
                    replacement = copy_instr(holder, instr.dst)
                    report.loads_to_copies += 1
                    rewrote = True
                    _transfer(state, replacement)
                    out.append(replacement)
                    continue
            elif instr.op is Op.STM:
                fact = state.get(instr.addr)
                if fact is not None and fact == (instr.srcs[0], True):
                    report.stores_deleted += 1
                    rewrote = True
                    continue
            _transfer(state, instr)
            out.append(instr)
    return out, rewrote
