"""The per-region allocation loop — Figure 2 of the paper.

.. code-block:: text

    procedure rap(V, Gv) {
        spill = true
        while (spill) {
            add_region_conflicts(V, Gv)
            add_subregion_conflicts(V, Gv)
            calc_spill_costs(V, Gv)
            color_stack = simplify(Gv)
            spill_list = color(Gv, color_stack)
            if (spill_list is empty) {
                combine
                spill = false
                delete non-loop subregion graphs
            } else
                insert_spill_code(V, spill_list)
        }
    }

driven bottom-up over the PDG by :func:`allocate_region` (each subregion
is fully allocated before its parent's graph is ever built).  Loop-region
graphs are retained for the spill-code-motion phase instead of being
deleted, as §3.1.5 specifies.
"""

from __future__ import annotations

from typing import List, Set

from ...ir.iloc import Reg
from ...pdg.nodes import Region
from ...resilience import faults
from ..chaitin import AllocationError
from ..coloring import color_graph
from ..interference import InterferenceGraph
from .combine import combine
from .conflicts import add_region_conflicts, add_subregion_conflicts
from .spill_costs import calc_spill_costs, compute_global_nodes
from .spill_insert import spill_register

#: Rounds of the while(spill) loop allowed per region before giving up.
MAX_REGION_ROUNDS = 40


def allocate_region(ctx, region: Region) -> InterferenceGraph:
    """Allocate ``region`` bottom-up; return its combined (≤ k node) graph."""
    for sub in region.subregions():
        ctx.register_sub_graph(sub, allocate_region(ctx, sub))

    if faults.active() is not None:
        faults.maybe_raise("rap.region.raise", ctx.func.name)

    round_budget = ctx.max_region_rounds or MAX_REGION_ROUNDS
    spilled_here: Set[Reg] = set()
    for _round in range(round_budget):
        analysis = ctx.analysis()
        graph = InterferenceGraph()
        add_region_conflicts(region, graph, analysis)
        add_subregion_conflicts(region, graph, ctx.sub_graphs, analysis)
        if faults.active() is not None:
            faults.maybe_drop_edge("rap.region.drop-edge", ctx.func.name, graph)
        global_nodes = compute_global_nodes(region, graph, analysis)
        calc_spill_costs(region, graph, analysis, spilled_here, global_nodes)
        result = color_graph(graph, ctx.k, global_nodes, optimistic=ctx.optimistic)

        if result.succeeded:
            summary = combine(graph, result)
            if region is ctx.func.entry:
                ctx.final_graph = graph
                ctx.final_coloring = result
            for sub in region.subregions():
                sub_graph = ctx.sub_graphs.pop(id(sub), None)
                if sub_graph is not None and sub.is_loop:
                    ctx.save_loop_graph(sub, sub_graph)
            return summary

        victims: List[Reg] = []
        for node in result.spilled:
            victims.extend(sorted(node.members))
        for victim in victims:
            if victim in spilled_here:
                raise AllocationError(
                    f"{ctx.func.name}: register {victim} selected for spilling "
                    f"twice in region {region.name} (k={ctx.k})"
                )
        ctx.log_spill(region, victims)
        for victim in victims:
            new_names = _spill_one(ctx, region, victim)
            spilled_here.add(victim)
            spilled_here.update(new_names)

    raise AllocationError(
        f"{ctx.func.name}: region {region.name} did not converge after "
        f"{round_budget} rounds (k={ctx.k})"
    )


def _spill_one(ctx, region: Region, victim: Reg) -> Set[Reg]:
    """Spill (or rematerialize) one register; report the fresh names."""
    if ctx.remat and victim not in ctx.remat_temps:
        from ..remat import (
            constant_registers,
            rematerialize_pdg,
            sweep_dead_defs_pdg,
        )

        constants = constant_registers(ctx.planning_analysis().linear.instrs)
        if victim in constants:
            temps = rematerialize_pdg(ctx.func, victim, constants[victim])
            ctx.patch_graphs_for_remat(victim, temps)
            if sweep_dead_defs_pdg(ctx.func):
                ctx.purge_unreferenced_members()
            ctx.remat_temps |= temps
            ctx.remat_log.append((victim, constants[victim]))
            # Rematerialization deletes instructions (the dead-def sweep),
            # so the round snapshot is structurally stale: drop it rather
            # than let same-round planning reuse it.
            ctx.invalidate_analysis()
            ctx.mark_dirty()
            return temps
    before = ctx.known_renames()
    spill_register(ctx, region, victim)
    return ctx.known_renames() - before
