"""Combining a colored region graph (paper §3.1.5).

"After the interference graph for the parent region has been colored, the
same color nodes of the interference graph are combined and this
interference graph is saved for incorporation into the interference graph
of its parent region. ... the final interference graph contains at most k
nodes, where k is the number of physical registers."

Safety: two same-colored nodes are never adjacent, and the global/global
select rule guarantees at most one of the registers folded into a combined
node is global to the region — everything else is local, so committing
the group to one register can never conflict with code outside the region.
"""

from __future__ import annotations

from typing import Dict

from ..coloring import ColoringResult
from ..interference import IGNode, InterferenceGraph


def combine(graph: InterferenceGraph, coloring: ColoringResult) -> InterferenceGraph:
    """Build the ≤k-node summary graph of a successfully colored region."""
    combined = InterferenceGraph()
    node_for_color: Dict[int, IGNode] = {}
    color_of: Dict[int, int] = {}

    for node in sorted(graph.nodes, key=IGNode.sort_key):
        color = coloring.colors[node]
        color_of[node.id] = color
        if color in node_for_color:
            node_for_color[color] = combined.merge_nodes(
                node_for_color[color], combined.add_group(sorted(node.members))
            )
        else:
            node_for_color[color] = combined.add_group(sorted(node.members))

    for node in graph.nodes:
        mine = node_for_color[color_of[node.id]]
        for neighbor in node.adj:
            other = node_for_color[color_of[neighbor.id]]
            combined.add_node_edge(mine, other)
    return combined
