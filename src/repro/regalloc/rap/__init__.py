"""RAP — Register Allocation over the Program Dependence Graph."""

from .allocator import RAPContext, RAPResult, allocate_rap
from .motion import MotionReport
from .peephole import PeepholeReport, eliminate_redundant_mem_ops

__all__ = [
    "allocate_rap",
    "RAPResult",
    "RAPContext",
    "MotionReport",
    "PeepholeReport",
    "eliminate_redundant_mem_ops",
]
