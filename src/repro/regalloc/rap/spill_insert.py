"""Hierarchical spill-code insertion (paper §3.1.4).

Spilling a virtual register *within a region* — not throughout the whole
procedure — is the heart of RAP's local-spill advantage: "a variable may
be assigned to register R1 in one region, register R2 in another region,
and spilled in another region" (§1).

For a victim register ``v`` spilled while allocating region ``V``:

1. **Parent region code**: a load is inserted before each use and a store
   after each definition in V's directly attached statements, and ``v`` is
   renamed there (one fresh name for the parent region).
2. **Each subregion** ``Ri`` referencing ``v``: if ``v`` is live on
   entrance, a load is inserted before the first item referencing it; a
   store is inserted after each definition whose value can reach a spill
   load (the paper's "definition which has a corresponding use outside of
   the subregion", extended with a CFG-reachability test so that
   loop-carried values crossing a re-executed load are also stored — the
   extra stores this adds are exactly the "excess spill code" §4 blames on
   small regions and later cleans up).  ``v`` is renamed inside ``Ri``,
   "making it completely local to the subregion", and the renamed register
   replaces ``v`` in the subregion's saved interference graph.
3. **Outside the region** (the paper's recursive patch-up): every outside
   definition that feeds a load inside the region — or that co-reaches an
   outside use whose defining instruction was renamed away — gets a store;
   every outside use whose reaching definitions include a renamed-away
   inside definition gets a load.  These reference the original ``v``,
   which remains a live register candidate outside the region.

All spill traffic of one source register shares a single per-function slot
(named after the *original* register), so loads and stores issued by
different regions stay mutually consistent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...cfg.graph import CFG, BasicBlock
from ...ir.iloc import Instr, Op, Reg, Symbol, ldm, stm
from ...pdg.liveness import FunctionAnalysis
from ...pdg.nodes import Item, Predicate, Region
from ...resilience import faults


class _Reachability:
    """Memoized forward block reachability over a CFG."""

    def __init__(self, cfg: CFG):
        self._cfg = cfg
        self._cache: Dict[int, Set[int]] = {}

    def from_successors(self, block: BasicBlock) -> Set[int]:
        cached = self._cache.get(block.index)
        if cached is not None:
            return cached
        seen: Set[int] = set()
        stack = [succ for succ in block.succs]
        while stack:
            current = stack.pop()
            if current.index in seen:
                continue
            seen.add(current.index)
            stack.extend(current.succs)
        self._cache[block.index] = seen
        return seen

    def reaches(self, cfg: CFG, from_index: int, to_index: int) -> bool:
        from_block = cfg.block_at[from_index]
        to_block = cfg.block_at[to_index]
        if from_block is None or to_block is None:
            return False
        if from_block is to_block and from_index < to_index:
            return True
        return to_block.index in self.from_successors(from_block)


def _item_references(item: Item, reg: Reg) -> bool:
    if isinstance(item, Instr):
        return reg in item.regs()
    if isinstance(item, Predicate):
        if reg in item.branch.regs():
            return True
        return any(reg in sub.referenced_regs() for sub in item.regions())
    return reg in item.referenced_regs()


def _first_instr_of(item: Item) -> Optional[Instr]:
    if isinstance(item, Instr):
        return item
    if isinstance(item, Predicate):
        return item.branch
    for instr in item.walk_instrs():
        return instr
    return None


def _first_snapshot_instr_of(item: Item, linear) -> Optional[Instr]:
    """Like :func:`_first_instr_of`, but restricted to instructions the
    analysis snapshot knows about.

    When a same-round sibling spill already inserted spill code, an
    item's literal first instruction may be a fresh ``ldm`` absent from
    the round-start snapshot.  The first *snapshot* instruction of the
    item anchors the same position in snapshot coordinates: the skipped
    instructions are non-branch insertions sitting immediately before it,
    so block membership and reachability are unchanged.
    """
    first = _first_instr_of(item)
    if first is None or linear.contains(first):
        return first
    if isinstance(item, Region):
        for instr in item.walk_instrs():
            if linear.contains(instr):
                return instr
    return None


def spill_register(ctx, region: Region, victim: Reg) -> None:
    """Insert spill code for one victim register spilled at ``region``.

    ``ctx`` is the :class:`~repro.regalloc.rap.allocator.RAPContext`; the
    function mutates the PDG, records rename origins, and patches saved
    subregion graphs.
    """
    # The round-start snapshot: safely shared by every victim of this
    # round's spill list (see RAPContext.planning_analysis for why pure
    # spill insertions keep it valid for the *other* victims).
    analysis: FunctionAnalysis = ctx.planning_analysis()
    func = ctx.func
    slot = ctx.slot_for(victim)
    # Loads normally reference the same slot as the stores; the fault
    # probe can desynchronize them for one spill event to model a
    # slot-naming bug (spill-discipline validation must catch it).
    load_slot = slot
    if faults.active() is not None:
        corrupted = faults.maybe_corrupt_slot(
            "rap.spill.corrupt-slot", func.name, slot.name
        )
        if corrupted != slot.name:
            load_slot = Symbol(corrupted, "spill")
    chains = analysis.chains(victim)

    inside_ids = {id(instr) for instr in region.walk_instrs()}
    direct = region.direct_instrs()
    direct_ids = {id(instr) for instr in direct}
    subregions = region.subregions()

    inside_defs = [d for d in chains.all_defs() if id(d) in inside_ids]
    outside_defs = [d for d in chains.all_defs() if id(d) not in inside_ids]
    outside_uses = [u for u in chains.all_uses() if id(u) not in inside_ids]

    # ---- patch-up sets (step 3) --------------------------------------------
    uses_needing_load = [
        use
        for use in outside_uses
        if any(
            not isinstance(site, str) and id(site) in inside_ids
            for site in chains.defs_reaching(use)
        )
    ]
    patched_use_ids = {id(use) for use in uses_needing_load}
    defs_needing_store: List[Instr] = []
    for definition in outside_defs:
        reached = chains.uses_reached_by(definition)
        if any(id(use) in inside_ids for use in reached) or any(
            id(use) in patched_use_ids for use in reached
        ):
            defs_needing_store.append(definition)

    # ---- plan instruction-anchored edits --------------------------------------
    # Each edit is (anchor_instr, "before"|"after", new_instr).
    edits: List[Tuple[Instr, str, Instr]] = []

    parent_name = func.new_vreg()
    ctx.record_rename(parent_name, victim)
    load_anchor_instrs: List[Instr] = []

    for instr in direct:
        if victim in instr.uses:
            edits.append((instr, "before", ldm(load_slot, parent_name)))
            load_anchor_instrs.append(instr)
        if victim in instr.defs:
            edits.append((instr, "after", stm(slot, parent_name)))

    # Subregion planning: renames, entry loads, and reachability anchors.
    sub_renames: List[Tuple[Region, Reg]] = []
    entry_loads: List[Tuple[Region, Reg]] = []
    for sub in subregions:
        if victim not in analysis.referenced(sub):
            continue
        sub_name = func.new_vreg()
        ctx.record_rename(sub_name, victim)
        sub_renames.append((sub, sub_name))
        if victim in analysis.live_in(sub):
            entry_loads.append((sub, sub_name))
            for item in sub.items:
                if _item_references(item, victim):
                    anchor = _first_snapshot_instr_of(item, analysis.linear)
                    if anchor is not None:
                        load_anchor_instrs.append(anchor)
                    break

    for use in uses_needing_load:
        load_anchor_instrs.append(use)

    # Stores after inside definitions.  Parent-region definitions always
    # store; subregion definitions store when their value can reach a
    # spill load (see module docstring).
    reach = _Reachability(analysis.cfg)
    linear = analysis.linear
    load_positions = [linear.index_of(instr) for instr in load_anchor_instrs]
    rename_of_sub: Dict[int, Reg] = {id(sub): name for sub, name in sub_renames}

    def sub_containing(instr: Instr) -> Optional[Region]:
        for sub in subregions:
            if any(existing is instr for existing in sub.walk_instrs()):
                return sub
        return None

    for definition in inside_defs:
        if id(definition) in direct_ids:
            continue  # already planned above
        owner = sub_containing(definition)
        if owner is None:  # pragma: no cover - defensive
            continue
        def_pos = linear.index_of(definition)
        if any(
            reach.reaches(analysis.cfg, def_pos, pos) for pos in load_positions
        ):
            edits.append(
                (definition, "after", stm(slot, rename_of_sub[id(owner)]))
            )

    # Patch-up edits outside the region (reference the original register).
    for use in uses_needing_load:
        edits.append((use, "before", ldm(load_slot, victim)))
    for definition in defs_needing_store:
        edits.append((definition, "after", stm(slot, victim)))

    _apply_edits(ctx.func, edits)

    # Entry loads are positional: before the first item that still
    # references the (not yet renamed) victim.
    for sub, sub_name in entry_loads:
        index = len(sub.items)
        for position, item in enumerate(sub.items):
            if _item_references(item, victim):
                index = position
                break
        sub.items.insert(index, ldm(load_slot, sub_name))

    # ---- renames ------------------------------------------------------------------
    for instr in direct:
        instr.rewrite_regs({victim: parent_name})
    for sub, sub_name in sub_renames:
        mapping = {victim: sub_name}
        for instr in sub.walk_instrs():
            instr.rewrite_regs(mapping)
        ctx.patch_subregion_graph(sub, victim, sub_name)

    ctx.mark_dirty()


def _apply_edits(func, edits: Sequence[Tuple[Instr, str, Instr]]) -> None:
    """Insert new instructions around identity-anchored existing ones.

    Skips an insertion when the neighbouring item is already an identical
    ``ldm``/``stm`` (deduplicating patch-up code across successive spills
    of the same register by sibling regions).
    """
    if not edits:
        return
    locations = func.instr_locations()
    per_slot: Dict[Tuple[int, int], Dict[str, List[Instr]]] = {}
    region_by_id: Dict[int, Region] = {}
    for anchor, where, new_instr in edits:
        owner, index = locations[id(anchor)]
        region_by_id[id(owner)] = owner
        bucket = per_slot.setdefault((id(owner), index), {"before": [], "after": []})
        bucket[where].append(new_instr)

    by_region: Dict[int, List[Tuple[int, Dict[str, List[Instr]]]]] = {}
    for (owner_id, index), bucket in per_slot.items():
        by_region.setdefault(owner_id, []).append((index, bucket))

    for owner_id, entries in by_region.items():
        owner = region_by_id[owner_id]
        for index, bucket in sorted(entries, key=lambda e: e[0], reverse=True):
            afters = [
                instr
                for instr in bucket["after"]
                if not _same_mem_instr(owner.items, index + 1, instr)
            ]
            owner.items[index + 1:index + 1] = afters
            befores = [
                instr
                for instr in bucket["before"]
                if not _same_mem_instr(owner.items, index - 1, instr)
            ]
            owner.items[index:index] = befores


def _same_mem_instr(items: List[Item], index: int, instr: Instr) -> bool:
    if index < 0 or index >= len(items):
        return False
    existing = items[index]
    if not isinstance(existing, Instr) or existing.op is not instr.op:
        return False
    return (
        existing.addr == instr.addr
        and existing.srcs == instr.srcs
        and existing.dst == instr.dst
    )
