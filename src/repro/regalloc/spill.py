"""Spill code insertion for the GRA baseline (linear code).

The target is a load/store architecture, so "spill code insertion consists
of inserting loads immediately before variable uses and stores immediately
after variable definitions" (§1).  Each reference gets a fresh temporary
virtual register, producing the tiny live ranges that make the next
coloring round converge; the temporaries are marked unspillable
(infinite cost), as is standard for Chaitin-style allocators.

Parameters need no special case: their incoming values sit in memory
already, and the prologue ``ldm`` that loads one is an ordinary definition
that gets a store after it like any other when its register is spilled.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Set, Tuple

from ..ir.iloc import Instr, Op, Reg, Symbol, ldm, stm


def spill_linear(
    code: List[Instr],
    victims: Iterable[Reg],
    new_vreg: Callable[[], Reg],
    slot_name: Callable[[Reg], str],
    load_slot_name: Optional[Callable[[Reg], str]] = None,
) -> Tuple[List[Instr], Set[Reg]]:
    """Rewrite ``code`` spilling every register in ``victims``.

    Returns the new instruction list and the set of temporaries created
    (which the caller must mark unspillable).  ``load_slot_name``
    defaults to ``slot_name``; it exists so the fault-injection layer can
    desynchronize load slots from store slots (a deliberate slot-naming
    bug the validators must catch).
    """
    victims = set(victims)
    temps: Set[Reg] = set()
    out: List[Instr] = []
    if load_slot_name is None:
        load_slot_name = slot_name

    for instr in code:
        used = [reg for reg in instr.uses if reg in victims]
        defined = [reg for reg in instr.defs if reg in victims]
        if not used and not defined:
            out.append(instr)
            continue
        mapping = {}
        for reg in dict.fromkeys(used + defined):
            temp = new_vreg()
            temps.add(temp)
            mapping[reg] = temp
        for reg in dict.fromkeys(used):
            out.append(ldm(Symbol(load_slot_name(reg)), mapping[reg]))
        instr.rewrite_regs(mapping)
        out.append(instr)
        for reg in dict.fromkeys(defined):
            out.append(stm(Symbol(slot_name(reg)), mapping[reg]))
    return out, temps
