"""Decoupled spill-then-color allocation over SSA form.

Bouchez, Darte & Rastello ("On the Complexity of Spill Everywhere under
SSA Form") observe that the interference graph of a program in SSA form
is *chordal*, and a chordal graph is k-colorable iff its largest clique
— which for SSA interference equals MAXLIVE, the peak number of
simultaneously live values — is at most k.  That decouples register
allocation into two independent phases:

1. **Spill** until MAXLIVE <= k.  Spill-everywhere on whole SSA values:
   a store after the definition, a load into a fresh point-like
   temporary before each use (a spilled phi disappears: its argument is
   stored at the end of each predecessor instead).  Victims are chosen
   at the first program point over pressure, by *furthest next use* in
   linear order (Belady's heuristic).
2. **Color** greedily along a perfect elimination order.  Definitions
   in dominance-tree preorder are the *reverse* of a perfect
   elimination order of the chordal interference graph, so every value
   sees at most MAXLIVE - 1 <= k - 1 already-colored neighbors and the
   first free color always exists: zero coloring-time spills, by
   construction rather than by luck.  The claim is re-proved after the
   fact by the independent chordal recheck in
   :mod:`repro.resilience.validators`.

Only then is SSA destructed (:mod:`repro.ssa.destruct`) — parallel
copies are sequentialized at the *color* level so the emitted moves
stay correct after the physical rewrite.

Contrast on the measurement path: RAP spills *locally* where a region's
pressure demands it, GRA spills whole live ranges chosen by
spill-cost/degree, linear scan spills whole intervals; this rung spills
whole SSA values chosen by next-use distance and is the only one whose
coloring phase provably cannot fail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..ir.iloc import Instr, Reg, Symbol, ldm, preg, stm
from ..pdg.graph import PDGFunction
from ..pdg.linearize import linearize
from ..resilience import faults
from ..ssa import SSAForm, build_ssa, destruct, ssa_liveness
from ..ssa.form import DEF_INSTR, DEF_PHI, Phi
from .chaitin import AllocationError, AllocationResult

#: Spill-iteration safety cap: each iteration spills one value, and a
#: function has finitely many spillable values, so this only trips on a
#: rewriting bug that re-creates pressure forever.
MAX_SPILL_ITERATIONS = 500


@dataclass
class SSACert:
    """Evidence carried from the allocator to the independent validators.

    Two snapshots: construction time (for the rename recheck against
    reaching definitions of the original registers) and post-spill time
    (what was actually colored and destructed).
    """

    func_name: str
    k: int
    # --- construction-time snapshot (positions align 1:1) -------------
    pre_ssa: List[Instr]
    renamed: List[Instr]
    renamed_phis: Dict[int, List[Phi]]
    origin: Dict[Reg, Reg]
    undef: FrozenSet[Reg]
    # --- post-spill snapshot (input of coloring and destruction) ------
    ssa_code: List[Instr]
    phis: Dict[int, List[Phi]]
    unspillable: FrozenSet[Reg]
    order: List[Reg]
    assignment: Dict[Reg, int]
    maxlive: int
    spill_slots: FrozenSet[str]
    shuffle_slots: FrozenSet[str]


@dataclass
class SSAAllocationResult(AllocationResult):
    """:class:`AllocationResult` plus the SSA evidence and phase counters."""

    cert: Optional[SSACert] = None
    phis: int = 0
    maxlive_entry: int = 0
    maxlive_final: int = 0
    parallel_copies: int = 0
    cycle_breaks: int = 0

    def telemetry(self) -> Dict[str, int]:
        counters = super().telemetry()
        counters["analysis_builds"] = self.rounds
        counters["phis"] = self.phis
        counters["maxlive_entry"] = self.maxlive_entry
        counters["maxlive_final"] = self.maxlive_final
        counters["parallel_copies"] = self.parallel_copies
        counters["cycle_breaks"] = self.cycle_breaks
        return counters


def allocate_ssaspill(
    func: PDGFunction,
    k: int,
    max_rounds: Optional[int] = None,
    **_ignored,
) -> SSAAllocationResult:
    """Allocate one function by SSA-based spill-then-color.

    ``func`` is read, not mutated (a cloned linearization, like the
    other allocators).  ``max_rounds`` caps spill iterations.
    """
    if k < 3:
        raise ValueError("a load/store architecture needs at least 3 registers")
    code = [instr.clone() for instr in linearize(func).instrs]
    ssa = build_ssa(code, func.name)
    phi_count = sum(len(phis) for phis in ssa.phis.values())

    # Construction-time snapshot, before the spiller rewrites anything.
    pre_ssa = ssa.pre_ssa
    renamed = [instr.clone() for instr in ssa.code]
    renamed_phis = ssa.clone_phis()
    origin_snapshot = dict(ssa.origin)
    undef_snapshot = frozenset(ssa.undef)

    spilled, slots, rounds, maxlive_entry = _lower_pressure(
        ssa, k, max_rounds or MAX_SPILL_ITERATIONS
    )
    assignment, order, maxlive_final = _color(ssa, k)

    ssa_code = [instr.clone() for instr in ssa.code]
    phis_snapshot = ssa.clone_phis()
    unspillable_snapshot = frozenset(ssa.unspillable)

    dres = destruct(ssa, assignment)
    virtual_code = [instr.clone() for instr in dres.code]

    mapping = {value: preg(color) for value, color in assignment.items()}
    out: List[Instr] = []
    for instr in dres.code:
        instr.rewrite_regs(mapping)
        if instr.is_copy and instr.dst == instr.srcs[0]:
            continue  # same-register copy, exactly like GRA
        out.append(instr)

    cert = SSACert(
        func_name=func.name,
        k=k,
        pre_ssa=pre_ssa,
        renamed=renamed,
        renamed_phis=renamed_phis,
        origin=origin_snapshot,
        undef=undef_snapshot,
        ssa_code=ssa_code,
        phis=phis_snapshot,
        unspillable=unspillable_snapshot,
        order=order,
        assignment=dict(assignment),
        maxlive=maxlive_final,
        spill_slots=frozenset(slot.name for slot in slots.values()),
        shuffle_slots=frozenset(dres.shuffle_slots),
    )
    return SSAAllocationResult(
        name=func.name,
        code=out,
        k=k,
        rounds=rounds,
        spilled=spilled,
        assignment=assignment,
        virtual_code=virtual_code,
        cert=cert,
        phis=phi_count,
        maxlive_entry=maxlive_entry,
        maxlive_final=maxlive_final,
        parallel_copies=dres.copies,
        cycle_breaks=dres.cycle_breaks,
    )


# ---------------------------------------------------------------------------
# Phase 1: lower MAXLIVE to k by spill-everywhere on SSA values
# ---------------------------------------------------------------------------


def _lower_pressure(
    ssa: SSAForm, k: int, cap: int
) -> Tuple[List[Reg], Dict[Reg, Symbol], int, int]:
    """Spill one furthest-next-use value per iteration until no program
    point has more than ``k`` simultaneously live values."""
    spilled: List[Reg] = []
    slots: Dict[Reg, Symbol] = {}
    maxlive_entry: Optional[int] = None
    rounds = 0
    while True:
        rounds += 1
        if rounds > cap:
            raise AllocationError(
                f"{ssa.func_name}: spilling did not lower pressure to "
                f"k={k} in {cap} iterations"
            )
        live = ssa_liveness(ssa.code, ssa.cfg, ssa.phis)
        if maxlive_entry is None:
            maxlive_entry = live.maxlive
        overflow = _first_overflow(ssa, live, k)
        if overflow is None:
            return spilled, slots, rounds, maxlive_entry
        position, candidates = overflow
        victim = _choose_victim(ssa, candidates, position)
        if victim is None:
            raise AllocationError(
                f"{ssa.func_name}: register pressure irreducible at "
                f"position {position} with k={k}"
            )
        slot = Symbol(f"{ssa.func_name}.{victim}", "spill")
        _spill_value(ssa, victim, slot, slots)
        slots[victim] = slot
        spilled.append(victim)


def _first_overflow(ssa: SSAForm, live, k: int):
    """First program point (linear order) with pressure above ``k``.
    Returns ``(position, live set)`` — the position next-use distances
    are measured from — or ``None``."""
    code = ssa.code
    for block in ssa.cfg.blocks:
        at_entry = live.live_before[block.start] | ssa.phi_dests(block.index)
        if len(at_entry) > k:
            return block.start, at_entry
        for index in block.instr_indices():
            before = live.live_before[index]
            if len(before) > k:
                return index, before
            after = live.live_after[index] | {
                reg for reg in code[index].defs if reg.is_virtual
            }
            if len(after) > k:
                return index + 1, after
    return None


def _choose_victim(
    ssa: SSAForm, candidates: Set[Reg], position: int
) -> Optional[Reg]:
    """The spillable candidate whose next use (in linear order,
    wrapping) is furthest from ``position``; ties break on the higher
    value index.  Phi arguments count as uses at the predecessor's
    terminator."""
    uses: Dict[Reg, List[int]] = {}
    for index, instr in enumerate(ssa.code):
        for reg in instr.srcs:
            if reg.is_virtual:
                uses.setdefault(reg, []).append(index)
    for block_index in sorted(ssa.phis):
        block = ssa.cfg.blocks[block_index]
        for phi in ssa.phis[block_index]:
            for pred in block.preds:
                arg = phi.args[pred.index]
                if arg.is_virtual:
                    uses.setdefault(arg, []).append(pred.end - 1)

    horizon = len(ssa.code) + 1
    best: Optional[Tuple[int, int, Reg]] = None
    for value in candidates:
        if value in ssa.unspillable:
            continue
        positions = sorted(uses.get(value, ()))
        upcoming = next((p for p in positions if p >= position), None)
        if upcoming is not None:
            distance = upcoming - position
        elif positions:
            distance = horizon + positions[0]  # only reached via back edge
        else:
            distance = 2 * horizon  # never used again
        key = (distance, value.index, value)
        if best is None or key > best:
            best = key
    return best[2] if best is not None else None


def _spill_value(
    ssa: SSAForm, victim: Reg, slot: Symbol, slots: Dict[Reg, Symbol]
) -> None:
    """Spill-everywhere rewrite of one SSA value.

    Normal definition: ``stm slot`` right after the def.  Phi
    definition: the phi is removed and each predecessor stores the
    incoming argument at its end instead.  Every use reads through a
    fresh point-like temporary (``ldm`` immediately before the
    instruction; for a phi-argument use, at the predecessor's end).
    """
    code = ssa.code
    before: Dict[int, List[Instr]] = {}
    after: Dict[int, List[Instr]] = {}

    def at_block_end(block, instr: Instr) -> None:
        last = block.end - 1
        if code[last].is_branch:
            before.setdefault(last, []).append(instr)
        else:
            after.setdefault(last, []).append(instr)

    def fresh_temp() -> Reg:
        temp = ssa.new_value(ssa.origin.get(victim, victim))
        ssa.unspillable.add(temp)
        return temp

    kind, where = ssa.def_site[victim]
    if kind == DEF_INSTR:
        after.setdefault(where, []).append(stm(slot, victim))
        ssa.unspillable.add(victim)  # now a point-like def-store pair
    elif kind == DEF_PHI:
        phi = next(p for p in ssa.phis[where] if p.dest == victim)
        ssa.phis[where].remove(phi)
        block = ssa.cfg.blocks[where]
        for pred in block.preds:
            arg = phi.args[pred.index]
            if arg == victim or arg in ssa.undef:
                # Self-loop argument: the slot already holds the value on
                # that path.  (Undef arguments cannot occur: phis with one
                # are unspillable.)
                continue
            if arg in slots:
                temp = fresh_temp()
                at_block_end(pred, ldm(slots[arg], temp))
                at_block_end(pred, stm(slot, temp))
            else:
                at_block_end(pred, stm(slot, arg))
        del ssa.origin[victim]
    else:  # pragma: no cover - undef values are unspillable
        raise AllocationError(f"{ssa.func_name}: cannot spill undef {victim}")

    # Instruction uses: one load into one fresh temporary per instruction.
    for index, instr in enumerate(code):
        if victim in instr.srcs:
            temp = fresh_temp()
            before.setdefault(index, []).append(ldm(slot, temp))
            instr.srcs = [temp if reg == victim else reg for reg in instr.srcs]

    # Phi-argument uses elsewhere: load at the predecessor's end, one
    # temporary per predecessor block.
    edge_temp: Dict[int, Reg] = {}
    for block_index in sorted(ssa.phis):
        block = ssa.cfg.blocks[block_index]
        for phi in ssa.phis[block_index]:
            for pred in block.preds:
                if phi.args[pred.index] != victim:
                    continue
                temp = edge_temp.get(pred.index)
                if temp is None:
                    temp = fresh_temp()
                    edge_temp[pred.index] = temp
                    at_block_end(pred, ldm(slot, temp))
                phi.args[pred.index] = temp

    if before or after:
        rebuilt: List[Instr] = []
        for index, instr in enumerate(code):
            rebuilt.extend(before.get(index, ()))
            rebuilt.append(instr)
            rebuilt.extend(after.get(index, ()))
        ssa.code[:] = rebuilt
    ssa.refresh()


# ---------------------------------------------------------------------------
# Phase 2: greedy coloring along a perfect elimination order
# ---------------------------------------------------------------------------


def _color(ssa: SSAForm, k: int) -> Tuple[Dict[Reg, int], List[Reg], int]:
    """Greedy coloring in dominance preorder of definitions.

    For a chordal SSA interference graph this order is the reverse of a
    perfect elimination order: when a value is colored, its
    already-colored neighbors are exactly the values live at its
    definition — at most ``maxlive - 1 <= k - 1`` of them — so a free
    color always exists and no coloring-time spill can occur.
    """
    live = ssa_liveness(ssa.code, ssa.cfg, ssa.phis)
    if live.maxlive > k:
        raise AllocationError(
            f"{ssa.func_name}: MAXLIVE {live.maxlive} > k={k} after spilling"
        )
    adjacency = build_ssa_interference(ssa, live)
    order = elimination_order(ssa)
    known = set(order)
    missing = [value for value in ssa.origin if value not in known]
    if missing:
        raise AllocationError(
            f"{ssa.func_name}: values outside the elimination order: "
            f"{sorted(missing, key=lambda r: r.index)}"
        )

    assignment: Dict[Reg, int] = {}
    for value in order:
        forbidden = {
            assignment[neighbor]
            for neighbor in adjacency.get(value, ())
            if neighbor in assignment
        }
        color = next((c for c in range(k) if c not in forbidden), None)
        if color is None:
            raise AllocationError(
                f"{ssa.func_name}: no free color for {value} — "
                "chordal guarantee violated"
            )
        if (
            faults.active() is not None
            and forbidden
            and faults.should_fire("ssaspill.color.clash", ssa.func_name)
        ):
            color = min(forbidden)
        assignment[value] = color
    return assignment, order, live.maxlive


def build_ssa_interference(ssa: SSAForm, live) -> Dict[Reg, Set[Reg]]:
    """Interference of SSA values: each definition interferes with
    everything live just after it; a block's phi destinations interfere
    with each other and with the block's live-through values (they are
    written by one parallel copy); values live at function entry
    (undef values) interfere pairwise, having no definition point."""
    adjacency: Dict[Reg, Set[Reg]] = {value: set() for value in ssa.origin}

    def connect(a: Reg, b: Reg) -> None:
        if a != b:
            adjacency[a].add(b)
            adjacency[b].add(a)

    code = ssa.code
    for block in ssa.cfg.blocks:
        current: Set[Reg] = set(live.block_live_out[block.index])
        for index in range(block.end - 1, block.start - 1, -1):
            instr = code[index]
            defs = [reg for reg in instr.defs if reg.is_virtual]
            for dst in defs:
                for other in current:
                    connect(dst, other)
            current -= set(defs)
            current |= {reg for reg in instr.srcs if reg.is_virtual}
        dests = ssa.phi_dests(block.index)
        top = current | dests
        for dst in dests:
            for other in top:
                connect(dst, other)

    entry_live = sorted(
        live.block_live_in[ssa.cfg.entry_block().index],
        key=lambda reg: reg.index,
    )
    for i, a in enumerate(entry_live):
        for b in entry_live[i + 1 :]:
            connect(a, b)
    return adjacency


def elimination_order(ssa: SSAForm) -> List[Reg]:
    """Definitions in dominance-tree preorder (reverse perfect
    elimination order): undef values first (live at entry, no def), then
    per block — phi destinations, then instruction definitions in
    program order.  Dominator-tree children are visited in block-index
    order, matching the renaming walk."""
    order: List[Reg] = sorted(ssa.undef, key=lambda reg: reg.index)
    children = ssa.dom.children()
    entry = ssa.cfg.entry_block().index
    blocks = {block.index: block for block in ssa.cfg.blocks}
    stack = [entry]
    while stack:
        block_index = stack.pop()
        block = blocks[block_index]
        for phi in ssa.phis.get(block_index, ()):
            order.append(phi.dest)
        for index in block.instr_indices():
            for dst in ssa.code[index].defs:
                if dst.is_virtual:
                    order.append(dst)
        for child in reversed(children.get(block_index, ())):
            stack.append(child)
    return order
