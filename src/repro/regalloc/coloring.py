"""Simplify/select graph coloring with the Briggs optimistic enhancement.

Used by both allocators:

* GRA colors one whole-procedure graph with plain degrees;
* RAP colors one graph per region, with two extra rules from the paper —
  the *global/global* constraint ("if a node corresponds to a global
  virtual register, then this virtual register cannot be colored the same
  color as any other global virtual register", §3.1.3, with the matching
  degree adjustment of Figure 5), and first-fit color choice (whose
  register-reuse behaviour drives the copy-elimination effect §4 reports).

The Briggs et al. enhancement (the paper's reference [9]): a node that
cannot be trivially simplified is *still pushed* on the stack, and the
decision to spill is deferred to select time — "the set of nodes spilled
by this method is a subset of the nodes spilled by Chaitin's method".
Passing ``optimistic=False`` gives Chaitin's original pessimistic rule
(used by the coloring-heuristic ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .interference import IGNode, InterferenceGraph

INFINITE_COST = 999999.0  # the paper's Figure 5 uses this literal


@dataclass
class ColoringResult:
    """Outcome of one simplify/select round."""

    colors: Dict[IGNode, int] = field(default_factory=dict)
    spilled: List[IGNode] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return not self.spilled


def effective_degree(
    node: IGNode, global_nodes: Optional[Set[IGNode]] = None
) -> int:
    """Degree plus the RAP global/global adjustment of Figure 5.

    Two nodes that are both global to the region and *not* adjacent still
    constrain each other's colors, so each contributes one to the other's
    degree.
    """
    degree = node.degree
    if global_nodes and node in global_nodes:
        degree += sum(
            1 for other in global_nodes if other is not node and other not in node.adj
        )
    return degree


def color_graph(
    graph: InterferenceGraph,
    k: int,
    global_nodes: Optional[Set[IGNode]] = None,
    optimistic: bool = True,
) -> ColoringResult:
    """Color ``graph`` with at most ``k`` colors.

    ``node.spill_cost`` must already hold each node's (cost / degree)
    figure; nodes with :data:`INFINITE_COST` are never chosen as spill
    candidates unless nothing else remains.

    Returns the color assignment and the list of nodes that could not be
    colored (empty on success).  Node ``color`` attributes are updated on
    the nodes themselves as well.
    """
    global_nodes = global_nodes or set()
    nodes = list(graph.nodes)
    for node in nodes:
        node.color = None

    # --- simplify: peel the graph onto a stack ------------------------------
    # Degrees are maintained incrementally: removing a node decrements
    # each still-active neighbor, plus (for a removed global) every other
    # active global it was *not* adjacent to — the Figure 5 mutual
    # constraint.  This keeps the per-probe test O(1) while selecting the
    # exact nodes a from-scratch recount would.
    removed: Set[IGNode] = set()
    remaining_degree: Dict[IGNode, int] = {}
    for node in nodes:
        remaining_degree[node] = effective_degree(node, global_nodes)

    def retire(gone: IGNode) -> None:
        for neighbor in gone.adj:
            if neighbor not in removed:
                remaining_degree[neighbor] -= 1
        if gone in global_nodes:
            adj = gone.adj
            for other in global_nodes:
                if other is not gone and other not in removed and other not in adj:
                    remaining_degree[other] -= 1

    stack: List[IGNode] = []
    pessimistic_spills: List[IGNode] = []
    # Insertion order = first-reference program order (graphs are built by
    # walking the code).  Simplifying in that order makes select color in
    # reverse program order with first-fit, which is what aligns the colors
    # of copy operands in small graphs — the effect §4 credits for RAP's
    # copy elimination.
    work = list(nodes)
    while len(removed) < len(nodes):
        candidate = None
        for node in work:
            if node not in removed and remaining_degree[node] < k:
                candidate = node
                break
        if candidate is None:
            # No trivially colorable node: remove the cheapest spill
            # candidate.  Chaitin marks it spilled outright; Briggs pushes
            # it optimistically.
            candidate = min(
                (node for node in work if node not in removed),
                key=lambda node: (node.spill_cost, node.sort_key()),
            )
            if not optimistic:
                pessimistic_spills.append(candidate)
                removed.add(candidate)
                retire(candidate)
                continue
        removed.add(candidate)
        retire(candidate)
        stack.append(candidate)

    # --- select: pop and first-fit color -------------------------------------
    result = ColoringResult()
    result.spilled.extend(pessimistic_spills)
    colored_globals: List[IGNode] = []
    while stack:
        node = stack.pop()
        forbidden: Set[int] = set()
        for neighbor in node.adj:
            if neighbor.color is not None:
                forbidden.add(neighbor.color)
        if node in global_nodes:
            for other in colored_globals:
                if other is not node and other.color is not None:
                    forbidden.add(other.color)
        color = next((c for c in range(k) if c not in forbidden), None)
        if color is None:
            result.spilled.append(node)
        else:
            node.color = color
            result.colors[node] = color
            if node in global_nodes:
                colored_globals.append(node)
    return result
