"""Conservative (Briggs) copy coalescing — the paper's future work.

§4/Conclusions: "We expect that the performance of RAP will be improved by
implementing coalescing, and we are interested in comparing the results
when coalescing is performed by both RAP and GRA" (with the prediction
that an explicit coalescing step "particularly ... should improve the
performance of GRA", since RAP already eliminates most copies through
first-fit coloring of small region graphs).

This pass runs *before* either allocator, directly on the PDG: for each
``i2i src => dst`` whose operands do not interfere, the two virtual
registers are merged when the Briggs conservative test holds (the merged
node has fewer than k neighbours of significant degree), the copy
instruction is deleted, and ``dst`` is rewritten to ``src`` everywhere.
The ablation benchmark measures exactly the comparison the paper proposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..ir.iloc import Instr, Op, Reg
from ..pdg.graph import PDGFunction
from ..pdg.linearize import linearize
from ..pdg.nodes import Predicate, Region
from .chaitin import build_interference

MAX_PASSES = 8


@dataclass
class CoalesceReport:
    """Copies removed by the pre-allocation coalescing pass."""

    coalesced: int = 0
    passes: int = 0
    merged_pairs: List[Tuple[Reg, Reg]] = field(default_factory=list)


def coalesce_function(func: PDGFunction, k: int) -> CoalesceReport:
    """Iteratively coalesce non-interfering copies in ``func`` (mutates)."""
    report = CoalesceReport()
    for _ in range(MAX_PASSES):
        report.passes += 1
        if not _one_pass(func, k, report):
            break
    return report


def _one_pass(func: PDGFunction, k: int, report: CoalesceReport) -> bool:
    code = list(linearize(func).instrs)
    graph = build_interference(code)

    mapping: Dict[Reg, Reg] = {}
    doomed: Set[int] = set()
    changed = False

    def resolve(reg: Reg) -> Reg:
        while reg in mapping:
            reg = mapping[reg]
        return reg

    for instr in code:
        if instr.op is not Op.I2I:
            continue
        src = resolve(instr.srcs[0])
        dst = resolve(instr.dst)
        if src == dst:
            doomed.add(id(instr))
            changed = True
            continue
        node_src = graph.node_of(src)
        node_dst = graph.node_of(dst)
        if node_src is None or node_dst is None or node_dst in node_src.adj:
            continue
        # Briggs conservative test on the would-be merged node.
        significant = {
            neighbor
            for neighbor in (node_src.adj | node_dst.adj)
            if neighbor.degree >= k
        }
        if len(significant) >= k:
            continue
        graph.merge_nodes(node_src, node_dst)
        mapping[dst] = src
        doomed.add(id(instr))
        report.coalesced += 1
        report.merged_pairs.append((dst, src))
        changed = True

    if not changed:
        return False

    full_mapping = {reg: resolve(reg) for reg in mapping}
    _delete_and_rewrite(func.entry, doomed, full_mapping)
    func.bump_version()
    return True


def _delete_and_rewrite(
    root: Region, doomed: Set[int], mapping: Dict[Reg, Reg]
) -> None:
    for region in root.walk_regions():
        region.items = [
            item
            for item in region.items
            if not (isinstance(item, Instr) and id(item) in doomed)
        ]
        for item in region.items:
            if isinstance(item, Instr):
                item.rewrite_regs(mapping)
            elif isinstance(item, Predicate):
                item.branch.rewrite_regs(mapping)
