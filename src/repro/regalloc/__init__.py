"""Register allocators: the GRA baseline and the RAP hierarchical allocator."""

from .chaitin import AllocationError, AllocationResult, allocate_gra
from .coloring import color_graph
from .interference import IGNode, InterferenceGraph
from .rap import allocate_rap

__all__ = [
    "allocate_gra",
    "allocate_rap",
    "AllocationResult",
    "AllocationError",
    "InterferenceGraph",
    "IGNode",
    "color_graph",
]
