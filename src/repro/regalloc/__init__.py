"""Register allocators: the GRA baseline, the RAP hierarchical allocator,
the SSA-based spill-then-color allocator, and the linear-scan /
spill-everywhere fallback rungs."""

from .chaitin import AllocationError, AllocationResult, allocate_gra
from .coloring import color_graph
from .interference import IGNode, InterferenceGraph
from .linearscan import allocate_linearscan
from .rap import allocate_rap
from .spillall import allocate_spillall
from .ssaspill import SSAAllocationResult, SSACert, allocate_ssaspill

__all__ = [
    "allocate_gra",
    "allocate_rap",
    "allocate_ssaspill",
    "allocate_linearscan",
    "allocate_spillall",
    "SSAAllocationResult",
    "SSACert",
    "AllocationResult",
    "AllocationError",
    "InterferenceGraph",
    "IGNode",
    "color_graph",
]
