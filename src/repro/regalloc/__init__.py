"""Register allocators: the GRA baseline and the RAP hierarchical allocator."""

from .chaitin import AllocationError, AllocationResult, allocate_gra
from .coloring import color_graph
from .interference import IGNode, InterferenceGraph
from .rap import allocate_rap
from .spillall import allocate_spillall

__all__ = [
    "allocate_gra",
    "allocate_rap",
    "allocate_spillall",
    "AllocationResult",
    "AllocationError",
    "InterferenceGraph",
    "IGNode",
    "color_graph",
]
