"""Rematerialization — the paper's second excluded extension.

§4: "No coalescing or rematerialization is done [14, 11]" (reference [11]
is Briggs/Cooper/Torczon, *Rematerialization*, PLDI 1992).  The idea: a
spill candidate whose value can be recomputed in one instruction should be
*recomputed at each use* instead of being stored to and loaded from a
spill slot — the stores disappear entirely and each reload becomes a
``loadI``.

Scope here (classic "never-killed constant" rematerialization): a virtual
register is rematerializable when every definition makes it the same
constant, directly (``loadI c``) or through copies of constant registers.
A small constant-propagation fixpoint discovers these.

Both allocators accept ``remat=True``: rematerializable spill victims are
rewritten (defs deleted, each use fed by a fresh ``loadI`` temporary) and
never touch memory; everything else spills normally.  The ablation
benchmark measures the effect — in the paper's 1-cycle model the win is
the removed stores plus shorter live ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple, Union

from ..ir.iloc import Instr, Op, Reg
from ..pdg.graph import PDGFunction
from ..pdg.nodes import Predicate, Region

Number = Union[int, float]

#: Lattice: None = no information yet (bottom); a Number = that constant;
#: _TOP = conflicting definitions (not constant).
_TOP = object()


def constant_registers(instrs: Iterable[Instr]) -> Dict[Reg, Number]:
    """Registers whose every definition yields one known constant.

    A definition contributes ``loadI c`` directly or ``i2i s`` where ``s``
    is itself constant; any other defining opcode makes the register
    non-constant.  Iterates to a fixpoint so copy chains resolve in any
    order.
    """
    instr_list = list(instrs)
    value: Dict[Reg, object] = {}

    def merge(reg: Reg, new: object) -> bool:
        old = value.get(reg)
        if old is _TOP:
            return False
        if new is _TOP:
            value[reg] = _TOP
            return old is not _TOP
        if old is None:
            value[reg] = new
            return True
        if old == new and type(old) is type(new):
            return False
        value[reg] = _TOP
        return True

    changed = True
    while changed:
        changed = False
        for instr in instr_list:
            if instr.dst is None:
                continue
            if instr.op is Op.LOADI:
                changed |= merge(instr.dst, instr.imm)
            elif instr.op is Op.I2I:
                src_value = value.get(instr.srcs[0])
                if src_value is None:
                    continue  # wait for the source to resolve
                changed |= merge(instr.dst, src_value)
            else:
                changed |= merge(instr.dst, _TOP)
    return {
        reg: val  # type: ignore[misc]
        for reg, val in value.items()
        if val is not _TOP and val is not None
    }


@dataclass
class RematReport:
    """What rematerialization did during one allocation."""

    rematerialized: List[Tuple[Reg, Number]] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.rematerialized)


# ----------------------------------------------------------------------------
# Linear code (GRA)
# ----------------------------------------------------------------------------


def rematerialize_linear(
    code: List[Instr],
    victim: Reg,
    constant: Number,
    new_vreg: Callable[[], Reg],
) -> Tuple[List[Instr], Set[Reg]]:
    """Replace every use of ``victim`` with a freshly loaded constant and
    delete its definitions.  Returns the new code and the temporaries."""
    out: List[Instr] = []
    temps: Set[Reg] = set()
    for instr in code:
        if victim in instr.defs:
            # The whole definition is dead: loadI/i2i have no side effect.
            continue
        if victim in instr.uses:
            temp = new_vreg()
            temps.add(temp)
            out.append(Instr(Op.LOADI, imm=constant, dst=temp))
            instr.rewrite_regs({victim: temp})
        out.append(instr)
    return out, temps


#: Opcodes with no side effect: a definition by one of these whose result
#: is never read can be deleted outright.
_PURE_OPS = {
    Op.LOADI,
    Op.I2I,
    Op.ADD,
    Op.SUB,
    Op.MUL,
    Op.NEG,
    Op.CMP_LT,
    Op.CMP_LE,
    Op.CMP_GT,
    Op.CMP_GE,
    Op.CMP_EQ,
    Op.CMP_NE,
    Op.AND,
    Op.OR,
    Op.NOT,
    Op.LOADA,
}


def sweep_dead_defs_linear(code: List[Instr]) -> List[Instr]:
    """Remove pure definitions whose results are never used (iterated).

    Rematerializing a copy target typically leaves the copy's source
    ``loadI`` dead; this sweep reclaims those cycles.  Division is *not*
    treated as pure (it can fault), matching the interpreter.
    """
    while True:
        used: Set[Reg] = set()
        for instr in code:
            used.update(instr.uses)
        kept = [
            instr
            for instr in code
            if not (
                instr.op in _PURE_OPS
                and instr.dst is not None
                and instr.dst not in used
            )
        ]
        if len(kept) == len(code):
            return kept
        code = kept


def sweep_dead_defs_pdg(func: PDGFunction) -> int:
    """The PDG-side dead-definition sweep; returns instructions removed."""
    removed = 0
    while True:
        used: Set[Reg] = set()
        for instr in func.walk_instrs():
            used.update(instr.uses)
        change = 0
        for region in func.walk_regions():
            kept = []
            for item in region.items:
                if (
                    isinstance(item, Instr)
                    and item.op in _PURE_OPS
                    and item.dst is not None
                    and item.dst not in used
                ):
                    change += 1
                    continue
                kept.append(item)
            region.items = kept
        removed += change
        if not change:
            if removed:
                func.bump_version()
            return removed


# ----------------------------------------------------------------------------
# PDG (RAP)
# ----------------------------------------------------------------------------


def rematerialize_pdg(
    func: PDGFunction, victim: Reg, constant: Number
) -> Set[Reg]:
    """The PDG-side equivalent: rewrite every region in place."""
    temps: Set[Reg] = set()
    for region in func.walk_regions():
        new_items: List = []
        for item in region.items:
            if isinstance(item, Instr):
                if victim in item.defs:
                    continue
                if victim in item.uses:
                    temp = func.new_vreg()
                    temps.add(temp)
                    new_items.append(Instr(Op.LOADI, imm=constant, dst=temp))
                    item.rewrite_regs({victim: temp})
                new_items.append(item)
            else:
                if isinstance(item, Predicate) and victim in item.branch.uses:
                    temp = func.new_vreg()
                    temps.add(temp)
                    new_items.append(Instr(Op.LOADI, imm=constant, dst=temp))
                    item.branch.rewrite_regs({victim: temp})
                new_items.append(item)
        region.items = new_items
    func.bump_version()
    return temps
