"""GRA: the baseline global register allocator of the paper's §4.

"GRA is basically an implementation of Chaitin's global register allocator
with two exceptions: (1) The enhancement suggested by Briggs et al. has
been incorporated.  (2) No coalescing or rematerialization is done."

The build/simplify/select/spill loop iterates until the interference graph
colors with ``k`` colors, then rewrites every virtual register to its
physical register and drops self-copies ("a copy statement ... can be
eliminated when both operands of the copy are allocated the same
register").  Spill costs "count each use and definition of a variable in
the whole procedure" divided by degree, as §4 describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..cfg.graph import CFG
from ..cfg.liveness import compute_liveness
from ..ir.iloc import Instr, Op, Reg, preg, vreg
from ..pdg.graph import PDGFunction
from ..pdg.linearize import linearize
from ..resilience import faults
from .coloring import INFINITE_COST, color_graph
from .interference import InterferenceGraph
from .spill import spill_linear

#: Hard cap on build/spill rounds; hitting it indicates a pressure bug.
MAX_ROUNDS = 60


@dataclass
class AllocationResult:
    """An allocated function body plus allocation telemetry.

    ``virtual_code`` is the body as it stood immediately before physical
    registers were substituted (spill code included) — the input the
    pipeline's validate stage uses to recheck ``assignment`` against an
    independently rebuilt interference graph.
    """

    name: str
    code: List[Instr]
    k: int
    rounds: int = 1
    spilled: List[Reg] = field(default_factory=list)
    assignment: Dict[Reg, int] = field(default_factory=dict)
    virtual_code: Optional[List[Instr]] = None

    def telemetry(self) -> Dict[str, int]:
        """Counters the pipeline's metrics collector folds into the
        allocate stage: build/spill rounds, distinct spilled registers,
        and (for allocators with a peephole phase) peephole rewrites."""
        return {
            "rounds": self.rounds,
            "spills": len(self.spilled),
            "peephole_hits": 0,
        }


class AllocationError(RuntimeError):
    """The allocator failed to converge (should never happen for k >= 3)."""


def build_interference(code: List[Instr]) -> InterferenceGraph:
    """Chaitin-style interference graph over linear code.

    A definition interferes with everything live after it (minus the
    source of a copy, the standard refinement that enables same-color copy
    elimination).
    """
    cfg = CFG(code)
    live = compute_liveness(cfg)
    graph = InterferenceGraph()

    for instr in code:
        for reg in instr.regs():
            graph.ensure(reg)

    for instr in code:
        if not instr.defs:
            continue
        live_after = live.live_after(instr)
        for defined in instr.defs:
            for other in live_after:
                if other == defined:
                    continue
                if instr.is_copy and other == instr.srcs[0]:
                    continue
                graph.add_edge(defined, other)
    return graph


def _spill_costs(
    code: List[Instr],
    graph: InterferenceGraph,
    temps: Set[Reg],
    loop_weight: bool = False,
) -> None:
    """Attach spill costs: references (optionally weighted by 10^depth for
    references inside loops — the classic Chaitin estimate the paper's GRA
    deliberately does *not* use, kept here as an ablation) / degree."""
    weights: Dict[int, float] = {}
    if loop_weight:
        from ..cfg.dominators import natural_loops

        cfg = CFG(code)
        depth: Dict[int, int] = {}
        for loop in natural_loops(cfg):
            for block_index in loop["body"]:
                depth[block_index] = depth.get(block_index, 0) + 1
        for block in cfg.blocks:
            weight = 10.0 ** depth.get(block.index, 0)
            for index in block.instr_indices():
                weights[index] = weight

    counts: Dict[Reg, float] = {}
    for index, instr in enumerate(code):
        weight = weights.get(index, 1.0)
        for reg in instr.regs():
            counts[reg] = counts.get(reg, 0.0) + weight
    for node in graph.nodes:
        reg = next(iter(node.members))
        if reg in temps:
            node.spill_cost = INFINITE_COST
        else:
            refs = counts.get(reg, 0.0)
            node.spill_cost = refs / max(node.degree, 1)


def allocate_gra(
    func: PDGFunction,
    k: int,
    optimistic: bool = True,
    remat: bool = False,
    loop_weight: bool = False,
    max_rounds: Optional[int] = None,
) -> AllocationResult:
    """Allocate one function with the GRA baseline.

    ``func`` is read, not mutated: GRA operates on a cloned linearization,
    exactly as the paper runs GRA on "the unallocated iloc code" that RAP
    can "simply output".

    ``remat=True`` enables the rematerialization extension: spill victims
    whose value is a known constant are recomputed at each use instead of
    going through memory (the paper's excluded reference [11]).
    """
    if k < 3:
        raise ValueError("a load/store architecture needs at least 3 registers")
    code = [instr.clone() for instr in linearize(func).instrs]

    next_index = _max_vreg_index(code) + 1

    def new_vreg() -> Reg:
        nonlocal next_index
        reg = vreg(next_index)
        next_index += 1
        return reg

    temps: Set[Reg] = set()
    remat_temps: Set[Reg] = set()
    all_spilled: List[Reg] = []

    round_budget = max_rounds if max_rounds is not None else MAX_ROUNDS
    for round_number in range(1, round_budget + 1):
        graph = build_interference(code)
        if faults.active() is not None:
            faults.maybe_drop_edge(
                "gra.interference.drop-edge", func.name, graph
            )
        _spill_costs(code, graph, temps, loop_weight=loop_weight)
        result = color_graph(graph, k, optimistic=optimistic)
        if result.succeeded:
            virtual_code = [instr.clone() for instr in code]
            assignment: Dict[Reg, int] = {}
            mapping: Dict[Reg, Reg] = {}
            for node, color in result.colors.items():
                for reg in node.members:
                    assignment[reg] = color
                    mapping[reg] = preg(color)
            for instr in code:
                instr.rewrite_regs(mapping)
            code = [
                instr
                for instr in code
                if not (instr.op is Op.I2I and instr.srcs[0] == instr.dst)
            ]
            return AllocationResult(
                name=func.name,
                code=code,
                k=k,
                rounds=round_number,
                spilled=all_spilled,
                assignment=assignment,
                virtual_code=virtual_code,
            )
        victims: List[Reg] = []
        for node in result.spilled:
            reg = next(iter(node.members))
            if reg in temps:
                raise AllocationError(
                    f"{func.name}: spill temporary {reg} became uncolorable "
                    f"with k={k}"
                )
            victims.append(reg)
        all_spilled.extend(victims)
        if remat:
            from .remat import (
                constant_registers,
                rematerialize_linear,
                sweep_dead_defs_linear,
            )

            constants = constant_registers(code)
            spill_victims = []
            swept = False
            for reg in victims:
                if reg in constants and reg not in remat_temps:
                    code, new_temps = rematerialize_linear(
                        code, reg, constants[reg], new_vreg
                    )
                    # Remat temporaries stay normally spillable (unlike
                    # spill temporaries) but must never re-rematerialize,
                    # which would loop.
                    remat_temps |= new_temps
                    swept = True
                else:
                    spill_victims.append(reg)
            if swept:
                code = sweep_dead_defs_linear(code)
            victims = spill_victims
        slot_name = lambda reg: f"{func.name}.{reg}"  # noqa: E731
        load_slot_name = slot_name
        if faults.active() is not None:
            load_slot_name = lambda reg: faults.maybe_corrupt_slot(  # noqa: E731
                "gra.spill.corrupt-slot", func.name, slot_name(reg)
            )
        code, new_temps = spill_linear(
            code,
            victims,
            new_vreg,
            slot_name=slot_name,
            load_slot_name=load_slot_name,
        )
        temps |= new_temps
    raise AllocationError(
        f"{func.name}: no convergence after {round_budget} rounds"
    )


def _max_vreg_index(code: List[Instr]) -> int:
    top = -1
    for instr in code:
        for reg in instr.regs():
            if reg.is_virtual:
                top = max(top, reg.index)
    return top
