"""One-call compilation pipeline.

``compile_source`` turns Mini-C text into a :class:`CompiledProgram`, from
which you can obtain:

* the *reference* image (unallocated code on the infinite virtual register
  file) — the ground truth for behavioural comparison;
* a GRA-allocated image (the paper's baseline: Chaitin-style global
  coloring with the Briggs enhancement, no coalescing/rematerialization);
* a RAP-allocated image (the paper's contribution: hierarchical allocation
  over the PDG, spill-code motion, and the load/store peephole).

Example
-------

>>> from repro.compiler import compile_source
>>> prog = compile_source('''
... void main() { int i; int s; s = 0;
...     for (i = 0; i < 10; i = i + 1) { s = s + i; }
...     print(s); }
... ''')
>>> from repro.interp.machine import run_program
>>> run_program(prog.reference_image()).output
[45]
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List

from .interp.machine import FunctionImage, ProgramImage
from .ir.builder import arg_slot_name
from .ir.iloc import Instr, Op
from .pdg.graph import Module, PDGFunction
from .pdg.linearize import linearize


def param_slots(func: PDGFunction) -> List[str]:
    """The incoming-argument slot names of a function, in order."""
    return [arg_slot_name(func.name, i) for i in range(len(func.params))]


@dataclass
class CompiledProgram:
    """A compiled module plus convenience constructors for executables."""

    module: Module
    _reference: Dict[bool, ProgramImage] = field(
        default_factory=dict, init=False, repr=False
    )

    def reference_image(self, schedule: bool = False) -> ProgramImage:
        """Unallocated code (virtual registers, infinite register file).

        ``schedule=True`` list-schedules each function body (the same
        block-local scheduler the pipeline's optional schedule stage
        runs), so the reference can be measured with and without the
        phase-ordering experiment.

        Cached *per schedule setting*: images are immutable during
        execution (machines keep all mutable state in frames and their
        own memory), so one image — and therefore one pre-decoded form
        per function — is shared by every machine run against this
        program (e.g. all k-cells of a sweep).  The two variants are
        distinct images with distinct decode caches; a scheduled request
        can never be served the unscheduled instruction order or vice
        versa.
        """
        key = bool(schedule)
        if key not in self._reference:
            functions = {}
            for name, func in self.module.functions.items():
                code = [instr.clone() for instr in linearize(func).instrs]
                if key:
                    from .sched.list_scheduler import schedule_code

                    code, _ = schedule_code(code, function=name)
                functions[name] = FunctionImage(name, code, param_slots(func))
            self._reference[key] = ProgramImage(
                list(self.module.globals.values()), functions
            )
        return self._reference[key]

    def fresh_module(self) -> Module:
        """A deep copy of the module, safe for a destructive allocator.

        ``copy.deepcopy`` on purpose: a pickle round trip rebuilds the
        graph faster but loses string-object sharing (deepcopy treats
        ``str`` as atomic), and the de-interned slot names then slow
        every frame-slot dict lookup downstream by more than the copy
        saves.
        """
        return copy.deepcopy(self.module)


def compile_source(
    source: str,
    filename: str = "<string>",
    granularity: str = "statement",
    pipeline=None,
) -> CompiledProgram:
    """Front end + lowering: Mini-C text to PDG module.

    Runs the parse -> sema -> pdg-build stages of a
    :class:`~repro.resilience.pipeline.PassPipeline`.  By default
    front-end errors surface unwrapped (the historical contract:
    :class:`~repro.frontend.errors.FrontendError` with a source location)
    while internal failures are wrapped into structured
    :class:`~repro.resilience.errors.StageError` diagnostics; pass your
    own ``pipeline`` to change either policy.
    """
    from .resilience.pipeline import PassPipeline, PipelineConfig  # late: cycle

    if pipeline is None:
        pipeline = PassPipeline(
            PipelineConfig(granularity=granularity, wrap_frontend_errors=False),
            filename=filename,
        )
    return pipeline.compile(source, filename)


def strip_self_copies(code: List[Instr]) -> List[Instr]:
    """Drop ``i2i r => r`` instructions.

    "A copy statement in the unallocated iloc code can be eliminated when
    both operands of the copy are allocated the same register." (§4) —
    this applies to GRA and RAP alike and is the mechanism behind the
    paper's copy-elimination analysis.
    """
    return [
        instr
        for instr in code
        if not (instr.op is Op.I2I and instr.srcs[0] == instr.dst)
    ]
