"""Resilience subsystem: staged pipeline, fault injection, and triage.

This package is the repository's answer to "what happens when an
allocator is wrong?".  Four layers, each usable on its own:

* :mod:`.pipeline` — the compiler as named, verified stages with
  structured :class:`~repro.resilience.errors.StageError` diagnostics;
* :mod:`.validators` — independent semantic checkers that re-prove the
  transforming phases (spill-code motion, Figure-6 peephole, list
  scheduling, SSA construction/destruction, and the chordal coloring of
  the SSA rung) sound from scratch after every run;
* :mod:`.fallback` — the rap → gra → ssaspill → linearscan → spillall
  retry ladder used by the benchmark harness so a sweep degrades
  instead of dying;
* :mod:`.faults` — deterministic probe points inside the allocators,
  the scheduler, and the rewrite phases that let tests *prove* the
  verification and fallback nets catch corruption;
* :mod:`.telemetry` — per-stage wall time and allocation counters
  (rounds, spills, peephole hits), surfaced by the ``--profile`` and
  ``--metrics-out`` CLI flags;
* :mod:`.triage` / :mod:`.fuzz` — differential fuzzing with
  delta-minimized repro bundles written to ``artifacts/``.
"""

from .errors import (
    ChordalValidationError,
    DestructValidationError,
    MiscompileError,
    MotionValidationError,
    PeepholeValidationError,
    ScheduleValidationError,
    SSAValidationError,
    StageContext,
    StageError,
)
from .fallback import FALLBACK_CHAIN, FallbackEvent, chain_for
from .faults import PROBE_POINTS, FaultInjected, FaultPlan, FaultSpec, injected
from .pipeline import STAGES, PassPipeline, PipelineConfig
from .telemetry import MetricsCollector, StageMetrics, aggregate
from .triage import (
    Failure,
    ReplayResult,
    TriageBundle,
    load_bundle,
    make_bundle,
    minimize_source,
    probe_failure,
    replay_bundle,
    write_bundle,
)

__all__ = [
    "ChordalValidationError",
    "DestructValidationError",
    "FALLBACK_CHAIN",
    "Failure",
    "FallbackEvent",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "MetricsCollector",
    "MiscompileError",
    "MotionValidationError",
    "PROBE_POINTS",
    "PassPipeline",
    "PeepholeValidationError",
    "PipelineConfig",
    "ReplayResult",
    "SSAValidationError",
    "ScheduleValidationError",
    "STAGES",
    "StageContext",
    "StageError",
    "StageMetrics",
    "TriageBundle",
    "aggregate",
    "chain_for",
    "injected",
    "load_bundle",
    "make_bundle",
    "minimize_source",
    "probe_failure",
    "replay_bundle",
    "write_bundle",
]
