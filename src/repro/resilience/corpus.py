"""Fuzz corpus management: keep the seeds that earn their keep.

Random fuzzing rediscovers interesting programs from scratch every run;
most generator seeds exercise nothing beyond the happy path.  This module
maintains a small committed corpus under ``tests/corpus/`` of Mini-C
programs chosen because they drive the pipeline through its risky
machinery — GRA spilling, RAP spilling, spill-code motion (and therefore
the motion validator), and the Figure-6 peephole (and therefore the
peephole validator).  ``python -m repro fuzz`` replays the corpus ahead
of the random seed range, so every fuzz run — local or CI — starts with
known-interesting inputs instead of hoping the RNG finds them again.

The corpus is greedy-minimal: a seed is persisted only when it covers a
feature no existing entry covers.  ``MANIFEST.json`` records, per entry,
the generator seed, size, and feature set, so coverage is inspectable
without running anything.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from .pipeline import PassPipeline, PipelineConfig

#: Default committed corpus location, relative to the repository root.
DEFAULT_CORPUS_DIR = os.path.join("tests", "corpus")

MANIFEST = "MANIFEST.json"

#: The feature axes the corpus tries to cover.  Motion and peephole
#: features double as validator coverage: every replayed program with
#: them runs the corresponding independent validator on real output.
#:
#: ``linearscan.spill`` and ``ssaspill.spill`` keep seeds that make the
#: ladder's lower rungs spill (so fuzz runs exercise the interval
#: machinery and the SSA spill-everywhere lowering, not just their happy
#: paths).  The ``error.*`` axes keep seeds that can *trigger* each
#: transformation validator's error path: under the matching armed fault
#: probe the program provably raises MotionValidationError /
#: ScheduleValidationError / PeepholeValidationError /
#: DestructValidationError — which is the only way corpus minimization
#: can preserve witnesses for those code paths (a seed with hoists but
#: no write-back, say, covers ``rap.motion`` yet can never reach the
#: drop-store error branch; a seed with no permutation cycle in any
#: parallel copy can never reach the lost-copy branch).
FEATURES = (
    "gra.spill",
    "rap.spill",
    "rap.motion",
    "rap.peephole",
    "linearscan.spill",
    "ssaspill.spill",
    "error.motion",
    "error.schedule",
    "error.peephole",
    "error.ssa-destruct",
)

#: feature -> (probe point, error class name, allocator, schedule stage
#: on?) for the validator-error axes: the probe is armed, allocation
#: re-run on the named allocator, and the feature granted iff the named
#: error class is raised.
ERROR_AXES = (
    (
        "error.motion",
        "rap.motion.drop-store",
        "MotionValidationError",
        "rap",
        False,
    ),
    (
        "error.schedule",
        "sched.reorder-dependent",
        "ScheduleValidationError",
        "rap",
        True,
    ),
    (
        "error.peephole",
        "rap.peephole.stale-holder",
        "PeepholeValidationError",
        "rap",
        False,
    ),
    (
        "error.ssa-destruct",
        "ssa.destruct.lost-copy",
        "DestructValidationError",
        "ssaspill",
        False,
    ),
)


@dataclass
class CorpusEntry:
    """One persisted program and why it is in the corpus."""

    seed: int
    size: str
    features: List[str]
    file: str

    def path(self, directory: str) -> str:
        return os.path.join(directory, self.file)


@dataclass
class Corpus:
    """The committed corpus: entries plus the features they cover."""

    directory: str
    entries: List[CorpusEntry] = field(default_factory=list)

    def covered(self) -> Set[str]:
        return {f for entry in self.entries for f in entry.features}

    def sources(self) -> List[str]:
        out = []
        for entry in self.entries:
            with open(entry.path(self.directory)) as handle:
                out.append(handle.read())
        return out


def program_features(
    source: str, config: Optional[PipelineConfig] = None, k: int = 3
) -> Set[str]:
    """Which risky paths does this program drive at register count ``k``?

    Runs GRA, RAP, and linear-scan allocation (no execution) and reads
    the telemetry: spill lists, hoist certificates, peephole rewrite
    counts.  The validator-error axes re-run RAP under each armed fault
    probe and record whether the matching ``*ValidationError`` fires.  A
    program that fails to compile or allocate has no features — the
    corpus keeps *interesting* programs, not broken ones (those belong
    in triage bundles).
    """
    from .errors import StageError

    features: Set[str] = set()
    try:
        pipe = PassPipeline(config)
        prog = pipe.compile(source)
        module = prog.fresh_module()
        for func in module.functions.values():
            result = pipe.allocate(func, "gra", k)
            if result.spilled:
                features.add("gra.spill")
        module = prog.fresh_module()
        for func in module.functions.values():
            result = pipe.allocate(func, "linearscan", k)
            if result.spilled:
                features.add("linearscan.spill")
        module = prog.fresh_module()
        for func in module.functions.values():
            result = pipe.allocate(func, "ssaspill", k)
            if result.spilled:
                features.add("ssaspill.spill")
        module = prog.fresh_module()
        for func in module.functions.values():
            result = pipe.allocate(func, "rap", k)
            if result.spilled:
                features.add("rap.spill")
            if getattr(result.motion, "hoists", []):
                features.add("rap.motion")
            if result.peephole.total:
                features.add("rap.peephole")
    except StageError:
        return set()
    features |= _error_path_features(pipe, prog, k)
    return features


def _error_path_features(pipe: PassPipeline, prog, k: int) -> Set[str]:
    """The ``error.*`` axes: can this program trigger each transformation
    validator's error path?

    Arms the matching corruption probe (``times=None`` so every
    opportunity fires), re-runs RAP allocation, and grants the feature
    iff the validator's own error class escapes.  Any other failure —
    including a probe that found nothing to corrupt — yields nothing;
    the probes are restored to their prior plan on exit, so feature
    scanning composes with an outer fuzz run's own injection.
    """
    from . import errors, faults
    from .errors import StageError

    found: Set[str] = set()
    for feature, point, error_name, allocator, schedule in ERROR_AXES:
        if schedule and not _scheduler_moves_something(pipe, prog, k):
            # The swap probe fires in any block with a dependent adjacent
            # pair — near-universal.  Requiring a non-trivially scheduled
            # program keeps the axis discriminating: the corpus wants a
            # seed whose *real* schedule the validator defends, not any
            # straight-line print.
            continue
        runner = pipe
        if allocator == "ssaspill":
            # Defense in depth means the generic assignment check catches
            # a corrupted copy window before the destruction validator
            # runs; the axis wants a witness for the *destruct* error
            # path specifically, so the generic check is switched off for
            # this probe (exactly what the verify_* switches are for).
            runner = PassPipeline(
                _with_overrides(pipe.config, verify_assignment=False)
            )
        error_cls = getattr(errors, error_name)
        with faults.injected(faults.FaultSpec(point, times=None)):
            try:
                module = prog.fresh_module()
                for func in module.functions.values():
                    runner.allocate(func, allocator, k, schedule=schedule)
            except error_cls:
                found.add(feature)
            except StageError:
                pass
    return found


def _with_overrides(config: Optional[PipelineConfig], **overrides):
    """A copy of ``config`` (or the defaults) with fields replaced."""
    import dataclasses

    return dataclasses.replace(config or PipelineConfig(), **overrides)


def _scheduler_moves_something(pipe: PassPipeline, prog, k: int) -> bool:
    """True when the list scheduler reorders at least one instruction of
    the RAP-allocated program (measured on a clean, un-probed run)."""
    from .telemetry import MetricsCollector

    collector = MetricsCollector()
    probe = PassPipeline(pipe.config, metrics=collector)
    module = prog.fresh_module()
    for func in module.functions.values():
        probe.allocate(func, "rap", k, schedule=True)
    schedule = collector.stages.get("schedule")
    return schedule is not None and schedule.sched_moved > 0


def load_corpus(directory: str = DEFAULT_CORPUS_DIR) -> Corpus:
    """Load the manifest; an absent corpus is simply empty."""
    manifest = os.path.join(directory, MANIFEST)
    corpus = Corpus(directory)
    if not os.path.exists(manifest):
        return corpus
    with open(manifest) as handle:
        data = json.load(handle)
    for item in data.get("entries", []):
        entry = CorpusEntry(**item)
        if os.path.exists(entry.path(directory)):
            corpus.entries.append(entry)
    return corpus


def save_corpus(corpus: Corpus) -> None:
    os.makedirs(corpus.directory, exist_ok=True)
    data = {
        "entries": [asdict(entry) for entry in corpus.entries],
        "features": sorted(corpus.covered()),
    }
    with open(os.path.join(corpus.directory, MANIFEST), "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def consider(
    corpus: Corpus,
    seed: int,
    size: str,
    source: str,
    features: Optional[Set[str]] = None,
    config: Optional[PipelineConfig] = None,
) -> Optional[CorpusEntry]:
    """Add ``source`` to the corpus iff it covers a new feature.

    Returns the new entry, or ``None`` when the corpus already covers
    everything this program exercises.  The caller persists with
    :func:`save_corpus` (so a sweep batches one manifest write).
    """
    if features is None:
        features = program_features(source, config)
    fresh = features - corpus.covered()
    if not fresh:
        return None
    entry = CorpusEntry(
        seed=seed,
        size=size,
        features=sorted(features),
        # Size-qualified name for non-small entries, so one generator
        # seed can contribute at several sizes without a collision.
        file=f"seed{seed}.mc" if size == "small" else f"seed{seed}.{size}.mc",
    )
    os.makedirs(corpus.directory, exist_ok=True)
    with open(entry.path(corpus.directory), "w") as handle:
        handle.write(source)
    corpus.entries.append(entry)
    return entry


def seed_corpus(
    directory: str = DEFAULT_CORPUS_DIR,
    seeds: Sequence[int] = range(25),
    sizes: Sequence[str] = ("small", "medium"),
    config: Optional[PipelineConfig] = None,
) -> Corpus:
    """Build (or extend) a corpus by scanning generator seeds greedily.

    Scans ``sizes`` in order (small first, so the corpus stays minimal in
    bytes), walking ``seeds`` within each size, and stops as soon as
    every :data:`FEATURES` axis is covered.  Some axes — notably
    ``error.motion``, which needs a loop-carried spill value *written
    back* after the loop — simply never occur in small generated
    programs, which is why the scan escalates size instead of walking
    the seed range forever.
    """
    from ..testing.generator import random_source

    corpus = load_corpus(directory)
    for size in sizes:
        for seed in seeds:
            if corpus.covered() >= set(FEATURES):
                break
            source = random_source(seed, size)
            consider(corpus, seed, size, source, config=config)
    save_corpus(corpus)
    return corpus
