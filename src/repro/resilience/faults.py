"""Deterministic fault injection for the allocators.

The verification-plus-fallback safety net is itself code, and untested
safety code is decoration.  This module plants *probe points* inside the
allocators — places where a realistic allocator bug can be switched on
deliberately — so the test suite can prove that each class of corruption
is (a) caught by structural validation rather than by output divergence,
and (b) contained by the harness's fallback chain.

Probes are disabled by default and cost one module-attribute check when
off.  A :class:`FaultPlan` is installed globally (the allocators are
deterministic single-threaded code; a plan is active for the dynamic
extent of one test or one CLI invocation) and every firing is recorded so
tests can assert a probe actually triggered.

Probe points
------------

``gra.interference.drop-edge``
    Remove one edge from GRA's freshly built interference graph (the two
    highest-degree adjacent nodes).  Models a liveness/interference bug;
    the coloring may then share one physical register between two
    simultaneously live values.  Caught by ``check_assignment``.
``gra.spill.corrupt-slot``
    Rename the spill slot used by GRA's spill *loads* (stores keep the
    real slot).  Models a slot-naming bug; every load of the corrupt slot
    reads memory no store initializes.  Caught by
    ``check_spill_discipline``.
``rap.region.drop-edge``
    Remove one edge from a region's interference graph during RAP's
    bottom-up walk.  Caught by ``check_assignment``.
``rap.spill.corrupt-slot``
    Rename the slot used by the loads of one RAP spill event.  Caught by
    ``check_spill_discipline``.
``rap.region.raise``
    Raise :class:`FaultInjected` at a region boundary (on entry to the
    per-region allocation loop).  Models an outright allocator crash;
    contained by the fallback chain, no validation needed.
``rap.motion.drop-store``
    Suppress the trailing store a spill-code hoist must insert after a
    loop that wrote the slot.  Models a lost-update motion bug; the loop's
    final value never reaches memory.  Caught by the motion validator
    (the recomputed hoist requires the post-loop store).
``rap.motion.wrong-reg``
    Hoist the pre-loop preload into the wrong physical register (the
    carried color plus one, mod k).  Models a color-bookkeeping motion
    bug; the loop body reads a register the preload never wrote.  Caught
    by the motion validator (the preload must target the single register
    carrying the slot's traffic).
``rap.peephole.stale-holder``
    Skip one holder-map invalidation when a register is redefined inside
    the Figure-6 peephole.  Models a stale-availability bug; a later load
    of the address is deleted even though the register no longer mirrors
    memory.  Caught by the peephole validator (symbolic before/after
    execution of the block disagrees).
``sched.reorder-dependent``
    Swap the first adjacent dependent pair in a scheduled block's emitted
    order.  Models a dropped DAG edge in the scheduler; the emitted order
    is no longer a topological order of the block's dependences.  Caught
    by the scheduler validator.
``ssa.rename.stale-def``
    During SSA renaming, resolve one use to the *second* entry of the
    renaming stack — a definition shadowed (and therefore killed on
    every path) by the one on top.  Models a stack-discipline bug in
    construction.  Caught by the SSA-construction validator, which
    cross-checks every use against independently computed reaching
    definitions of the original register.
``ssa.destruct.lost-copy``
    While sequentializing one parallel copy during out-of-SSA
    destruction, emit the move that closes a permutation cycle without
    first saving the value its destination holds — the textbook
    lost-copy bug.  Caught by the destruction validator's symbolic
    replay of the edge's copy window.
``ssaspill.color.clash``
    Give one SSA value a color already assigned to an interfering
    neighbor during the chordal greedy coloring.  Models a broken
    interference or elimination-order bug.  Caught by the independent
    chordal-coloring recheck.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Dict, List, Optional, Tuple

#: Registry of every probe point with a one-line description (rendered by
#: ``python -m repro faults``).
PROBE_POINTS: Dict[str, str] = {
    "gra.interference.drop-edge": (
        "drop one edge from GRA's interference graph (liveness bug)"
    ),
    "gra.spill.corrupt-slot": (
        "corrupt the slot name of GRA spill loads (slot-naming bug)"
    ),
    "rap.region.drop-edge": (
        "drop one edge from a RAP region interference graph"
    ),
    "rap.spill.corrupt-slot": (
        "corrupt the slot name of one RAP spill event's loads"
    ),
    "rap.region.raise": "raise at a region boundary inside RAP",
    "rap.motion.drop-store": (
        "drop the trailing store of one spill-code hoist (lost update)"
    ),
    "rap.motion.wrong-reg": (
        "preload one spill-code hoist into the wrong physical register"
    ),
    "rap.peephole.stale-holder": (
        "skip one holder invalidation in the Figure-6 peephole"
    ),
    "sched.reorder-dependent": (
        "swap the first adjacent dependent pair of a scheduled block"
    ),
    "ssa.rename.stale-def": (
        "rename one SSA use to a shadowed (killed) definition"
    ),
    "ssa.destruct.lost-copy": (
        "skip the save when breaking one parallel-copy cycle (lost copy)"
    ),
    "ssaspill.color.clash": (
        "assign one SSA value a color already used by a live neighbor"
    ),
}

#: Suffix appended to a corrupted spill-slot name.  Kept printable so the
#: corruption is visible in ``emit --what alloc`` listings.
CORRUPT_SUFFIX = "!corrupt"


class FaultInjected(RuntimeError):
    """Raised by a ``raise``-type probe; deliberately *not* a subclass of
    any validation or allocation error so tests can tell an injected crash
    from a genuine one."""

    def __init__(self, point: str, function: str):
        super().__init__(f"injected fault at probe {point!r} in {function}")
        self.point = point
        self.function = function


@dataclass(frozen=True)
class FaultSpec:
    """Arms one probe point.

    ``function`` is an ``fnmatch`` pattern on the function being
    allocated (``"*"`` = any).  ``times`` bounds how often the probe
    fires (``None`` = every time it is reached), ``skip`` lets it pass
    the first occurrences through unharmed — together they make firings
    deterministic and addressable ("the second spill in dgefa").
    """

    point: str
    function: str = "*"
    times: Optional[int] = 1
    skip: int = 0

    def __post_init__(self) -> None:
        if self.point not in PROBE_POINTS:
            raise ValueError(
                f"unknown probe point {self.point!r}; known: "
                f"{', '.join(sorted(PROBE_POINTS))}"
            )


@dataclass
class FaultPlan:
    """A set of armed probes plus the firing log."""

    specs: List[FaultSpec] = field(default_factory=list)
    #: (point, function) for every shot actually fired.
    fired: List[Tuple[str, str]] = field(default_factory=list)
    _seen: Dict[int, int] = field(default_factory=dict)

    def should_fire(self, point: str, function: str) -> bool:
        for spec in self.specs:
            if spec.point != point or not fnmatch(function, spec.function):
                continue
            count = self._seen.get(id(spec), 0)
            self._seen[id(spec)] = count + 1
            if count < spec.skip:
                return False
            if spec.times is not None and count - spec.skip >= spec.times:
                return False
            self.fired.append((point, function))
            return True
        return False

    def fired_points(self) -> List[str]:
        return sorted({point for point, _ in self.fired})


#: The active plan; ``None`` keeps every probe dormant.  Checked by the
#: allocators through :func:`active`, so the disabled-path overhead is one
#: global read.
_PLAN: Optional[FaultPlan] = None


def active() -> Optional[FaultPlan]:
    return _PLAN


def install(*specs: FaultSpec) -> FaultPlan:
    """Activate a plan arming ``specs``; returns it for log inspection."""
    global _PLAN
    _PLAN = FaultPlan(list(specs))
    return _PLAN


def clear() -> None:
    global _PLAN
    _PLAN = None


@contextmanager
def injected(*specs: FaultSpec):
    """Context manager: arm ``specs`` for the duration of the block.

    Restores whatever plan (or absence of one) was active before, so
    nested scopes — e.g. a per-probe plan inside a test's outer plan —
    compose instead of clobbering each other.
    """
    global _PLAN
    previous = _PLAN
    plan = install(*specs)
    try:
        yield plan
    finally:
        _PLAN = previous


# ---------------------------------------------------------------------------
# Probe-site helpers (called from inside the allocators)
# ---------------------------------------------------------------------------


def maybe_raise(point: str, function: str) -> None:
    """Raise :class:`FaultInjected` if ``point`` is armed."""
    plan = _PLAN
    if plan is not None and plan.should_fire(point, function):
        raise FaultInjected(point, function)


def maybe_drop_edge(point: str, function: str, graph) -> None:
    """Remove the edge between the two highest-degree adjacent nodes.

    Deterministic: node order is fixed by each node's smallest member
    register.  A graph with no edges leaves the shot unconsumed (the probe
    waits for a graph where the corruption can matter).
    """
    plan = _PLAN
    if plan is None:
        return
    best = None
    for node in graph.nodes:
        for neighbor in node.adj:
            key = (
                node.degree + neighbor.degree,
                max(node.sort_key(), neighbor.sort_key()),
            )
            if best is None or key > best[0]:
                best = (key, node, neighbor)
    if best is None:
        return  # no edges: nothing to corrupt
    if not plan.should_fire(point, function):
        return
    _, node, neighbor = best
    node.adj.discard(neighbor)
    neighbor.adj.discard(node)


def maybe_corrupt_slot(point: str, function: str, name: str) -> str:
    """Return a corrupted variant of a spill-slot name if armed."""
    plan = _PLAN
    if plan is not None and plan.should_fire(point, function):
        return name + CORRUPT_SUFFIX
    return name


def should_fire(point: str, function: str) -> bool:
    """Bare armed-probe query for sites that apply the corruption
    themselves (e.g. skipping an action rather than performing one)."""
    plan = _PLAN
    return plan is not None and plan.should_fire(point, function)


def maybe_wrong_preg(point: str, function: str, color: int, k: int) -> int:
    """Return a *different* valid physical register index if armed."""
    plan = _PLAN
    if plan is not None and plan.should_fire(point, function):
        return (color + 1) % k
    return color


def maybe_swap_dependent(point: str, function: str, order: list) -> None:
    """Swap the first adjacent *dependent* pair of ``order`` in place.

    Dependence here is the cheap sufficient test — register overlap
    (flow/anti/output) or a conflicting memory/observable pair — so the
    swap provably violates the block's dependence DAG.  A block with no
    adjacent dependent pair leaves the shot unconsumed, like
    :func:`maybe_drop_edge`.
    """
    plan = _PLAN
    if plan is None:
        return
    target = None
    for i in range(len(order) - 1):
        if _instrs_dependent(order[i], order[i + 1]):
            target = i
            break
    if target is None:
        return
    if not plan.should_fire(point, function):
        return
    order[target], order[target + 1] = order[target + 1], order[target]


def _instrs_dependent(a, b) -> bool:
    """Sufficient (not exhaustive) dependence test between two adjacent
    instructions — register overlap, same-symbol memory traffic, heap
    store conflicts, or observable order."""
    from ..ir.iloc import Op

    a_defs, b_defs = set(a.defs), set(b.defs)
    a_uses, b_uses = set(a.uses), set(b.uses)
    if a_defs & (b_uses | b_defs) or a_uses & b_defs:
        return True
    mem = (Op.LOAD, Op.STORE, Op.LDM, Op.STM)
    if a.op in mem and b.op in mem:
        if Op.STORE in (a.op, b.op) and {a.op, b.op} <= {Op.LOAD, Op.STORE}:
            return True
        if (
            a.op in (Op.LDM, Op.STM)
            and b.op in (Op.LDM, Op.STM)
            and a.addr is not None
            and b.addr is not None
            and a.addr.name == b.addr.name
            and Op.STM in (a.op, b.op)
        ):
            return True
    ordered = (Op.PRINT, Op.PARAM, Op.CALL, Op.RET, Op.ALLOCA)
    if a.op in ordered and b.op in ordered:
        return True
    return False
