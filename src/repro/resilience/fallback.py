"""The allocator fallback ladder.

When an allocator crashes, fails validation, or miscompiles, the harness
does not abort the sweep: it retries the same (program, k) cell with the
next-simpler allocator, recording the degradation.  The ladder is ordered
by ambition:

    rap -> gra -> ssaspill -> linearscan -> spillall

RAP (the paper's contribution) falls back to GRA (the paper's baseline),
which falls back to the SSA spill-then-color rung (decoupled phases over
a chordal interference graph — its coloring provably cannot fail, so
only its spill phase can), which falls back to linear scan (no
interference graph, intervals only — reduced precision, real register
lifetimes), which falls back to the trivial spill-everywhere allocation
— which cannot fail for any k >= 3, because it performs no analysis at
all.  A sweep therefore always completes; the output reports *which*
cells are degraded instead of the whole table dying on the first bad
cell.  Every rung re-runs the full validate stage, so a fallback result
is held to the same proof obligations as a first-choice one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: allocator -> the allocators to try next, in order.
FALLBACK_CHAIN: Dict[str, Tuple[str, ...]] = {
    "rap": ("gra", "ssaspill", "linearscan", "spillall"),
    "gra": ("ssaspill", "linearscan", "spillall"),
    "ssaspill": ("linearscan", "spillall"),
    "linearscan": ("spillall",),
    "spillall": (),
}


def chain_for(allocator: str) -> List[str]:
    """The full attempt order starting at ``allocator``."""
    if allocator not in FALLBACK_CHAIN:
        raise ValueError(f"unknown allocator {allocator!r}")
    return [allocator, *FALLBACK_CHAIN[allocator]]


@dataclass(frozen=True)
class FallbackEvent:
    """One rung abandoned: which allocator failed, at which stage, why."""

    allocator: str
    stage: str
    reason: str

    def __str__(self) -> str:
        return f"{self.allocator} failed at {self.stage}: {self.reason}"

    def as_dict(self) -> Dict[str, str]:
        return {
            "allocator": self.allocator,
            "stage": self.stage,
            "reason": self.reason,
        }
