"""Independent semantic validators for the transforming phases.

PR 1's validate stage rechecks *allocation* decisions (coloring against a
rebuilt interference graph, spill-slot discipline).  The transformations
that come after allocation — spill-code motion out of loops, the Figure-6
peephole, and the list scheduler — previously trusted their own analyses:
a bug there miscompiled silently until the interpreter diverged.  This
module closes that gap with one independent checker per phase, each
recomputing the transformation's safety argument from scratch:

``validate_motion``
    Replays every hoist certificate against the *pre-motion* snapshot:
    recomputes which register carries the slot, proves the hoisted
    preload is anticipated (the loop's first interior access is a load),
    runs a from-scratch forward must-analysis showing the carried
    register mirrors the slot on **all paths** through the loop
    (including the back edge), and checks the post-motion PDG has the
    preload, the trailing store exactly when the loop wrote the slot,
    and no leftover interior traffic.

``validate_schedule``
    Re-derives the must-precede relation of every basic block from the
    *original* instruction order — register flow/anti/output overlap,
    conflicting memory accesses, observable-operation order, terminator
    last — with pairwise rules written independently of
    :mod:`repro.sched.dag`, then checks the scheduled order is a
    topological order of that relation, permutes each block exactly, and
    never regresses the simulated schedule length.

``validate_peephole``
    Symbolically executes each basic-block window before and after the
    Figure-6 rewrites and proves the final register file, symbolic
    memory, heap state, and observable event trace are equal.

All three raise typed :class:`~repro.resilience.errors.StageError`
subclasses carrying the stage context plus the precise region/block/pc
where the proof failed, so a caught corruption is debuggable — and
transportable through the ``--jobs N`` process pool — without re-running
anything.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..ir.iloc import Instr, Op, Reg, Symbol
from .errors import (
    MotionValidationError,
    PeepholeValidationError,
    ScheduleValidationError,
    StageContext,
)

#: Instructions whose relative order is observable machine state (kept in
#: sync with the interpreter's semantics, not imported from the scheduler
#: — the validator must not share the code it checks).
_OBSERVABLE_OPS = (Op.PRINT, Op.PARAM, Op.CALL, Op.RET, Op.ALLOCA)


def _extend(context: StageContext, **extra: Any) -> StageContext:
    merged = dict(context.extra)
    merged.update(extra)
    return replace(context, extra=merged)


# ---------------------------------------------------------------------------
# Motion validation
# ---------------------------------------------------------------------------


def validate_motion(func, result, context: StageContext) -> None:
    """Recheck every spill-code hoist of one RAP run from scratch.

    ``func`` is the post-motion PDG function and ``result`` the
    :class:`~repro.regalloc.rap.allocator.RAPResult` carrying the hoist
    certificates plus the pre-motion snapshot.  Raises
    :class:`MotionValidationError` on the first unsound hoist.
    """
    hoists = getattr(result.motion, "hoists", [])
    if not hoists:
        return
    snapshot = result.pre_motion_code
    if snapshot is None:
        raise MotionValidationError(
            "motion reported hoists but captured no pre-motion snapshot",
            _extend(context, phase="motion"),
        )
    regions = {region.name: region for region in func.walk_regions()}
    for cert in hoists:
        ctx = _extend(
            context,
            phase="motion",
            loop=cert.loop_name,
            slot=str(cert.slot),
        )
        span = result.loop_spans.get(cert.loop_name)
        if span is None:
            raise MotionValidationError(
                f"hoisted loop {cert.loop_name} has no recorded span",
                ctx,
            )
        _check_one_hoist(func, regions, cert, snapshot, span, ctx)


def _check_one_hoist(
    func,
    regions: Dict[str, Any],
    cert,
    snapshot: List[Instr],
    span: Tuple[int, int],
    ctx: StageContext,
) -> None:
    start, end = span
    body = snapshot[start:end]
    slot = cert.slot

    interior = [
        (i, instr)
        for i, instr in enumerate(body)
        if instr.op in (Op.LDM, Op.STM) and instr.addr == slot
    ]
    if not interior:
        raise MotionValidationError(
            f"hoist of {slot} out of {cert.loop_name} deleted no interior "
            f"access (nothing to hoist)",
            ctx,
        )

    # One physical register must carry all of the slot's interior traffic.
    carriers = {
        instr.dst if instr.op is Op.LDM else instr.srcs[0]
        for _, instr in interior
    }
    if len(carriers) != 1:
        raise MotionValidationError(
            f"interior accesses of {slot} in {cert.loop_name} use several "
            f"registers {sorted(map(str, carriers))}; a hoist needs one",
            ctx,
        )
    carrier = carriers.pop()
    if not carrier.is_physical:
        raise MotionValidationError(
            f"interior accesses of {slot} use non-physical {carrier}", ctx
        )

    # Anticipation: the loop's first interior access must be the load the
    # preload replaces — hoisting around a store-first loop would need a
    # preload no store dominates.
    if interior[0][1].op is not Op.LDM:
        raise MotionValidationError(
            f"first interior access of {slot} in {cert.loop_name} is a "
            f"store; the hoisted preload is not anticipated",
            ctx,
        )
    had_store = any(instr.op is Op.STM for _, instr in interior)

    # From-scratch must-analysis over the pre-motion loop body: with the
    # preload establishing "carrier == slot" at loop entry, the fact must
    # hold at every interior load (so deleting it is a no-op) and at every
    # non-return loop exit (so the trailing store writes the final value).
    violations = _carrier_mirrors_slot(body, slot, carrier)
    for kind, position in violations:
        instr = body[position] if position < len(body) else None
        if kind == "load":
            raise MotionValidationError(
                f"{carrier} does not mirror {slot} on every path reaching "
                f"the deleted load at {cert.loop_name}+{position} "
                f"({instr})",
                _extend(ctx, pc=start + position),
            )
        if kind == "exit" and had_store:
            raise MotionValidationError(
                f"{carrier} does not mirror {slot} on the loop exit at "
                f"{cert.loop_name}+{position}; the trailing store would "
                f"write a stale value",
                _extend(ctx, pc=start + position),
            )

    # Post-motion structure: the PDG must carry the preload (into the
    # carrier register), the trailing store exactly when the loop wrote
    # the slot, and no leftover interior traffic.
    loop = regions.get(cert.loop_name)
    if loop is None:
        raise MotionValidationError(
            f"hoisted loop {cert.loop_name} vanished from the PDG", ctx
        )
    for instr in loop.walk_instrs():
        if instr.op in (Op.LDM, Op.STM) and instr.addr == slot:
            raise MotionValidationError(
                f"interior access of {slot} survives inside "
                f"{cert.loop_name} after its hoist ({instr})",
                ctx,
            )
    parents = func.parent_map()
    if loop not in parents:
        raise MotionValidationError(
            f"hoisted loop {cert.loop_name} has no parent region", ctx
        )
    parent, _ = parents[loop]
    preload = _spill_node_access(parent, f"pre-{cert.loop_name}", Op.LDM, slot)
    if preload is None:
        raise MotionValidationError(
            f"no pre-loop spill node loads {slot} before {cert.loop_name}",
            ctx,
        )
    if preload.dst != carrier:
        raise MotionValidationError(
            f"preload of {slot} targets {preload.dst}, but the loop "
            f"carries the slot in {carrier}",
            ctx,
        )
    trailing = _spill_node_access(parent, f"post-{cert.loop_name}", Op.STM, slot)
    if had_store and trailing is None:
        raise MotionValidationError(
            f"loop {cert.loop_name} wrote {slot} but no trailing store "
            f"follows it; the final value is lost",
            ctx,
        )
    if not had_store and trailing is not None:
        raise MotionValidationError(
            f"loop {cert.loop_name} never wrote {slot} yet a trailing "
            f"store follows it",
            ctx,
        )
    if trailing is not None and trailing.srcs[0] != carrier:
        raise MotionValidationError(
            f"trailing store of {slot} reads {trailing.srcs[0]}, but the "
            f"loop carries the slot in {carrier}",
            ctx,
        )


def _spill_node_access(
    parent, note: str, op: Op, slot: Symbol
) -> Optional[Instr]:
    """The ``op`` access of ``slot`` inside a spill node with ``note``
    among ``parent``'s items, or ``None``."""
    from ..pdg.nodes import Region

    for item in parent.items:
        if not isinstance(item, Region) or item.kind != "spill":
            continue
        if item.note != note:
            continue
        for instr in item.walk_instrs():
            if instr.op is op and instr.addr == slot:
                return instr
    return None


def _carrier_mirrors_slot(
    body: Sequence[Instr], slot: Symbol, carrier: Reg
) -> List[Tuple[str, int]]:
    """Forward must-analysis of the fact "``carrier`` holds ``slot``'s
    current value" over the loop body's own control flow.

    The body is a self-contained span of the pre-motion linearization
    (loop header label first, exit label last, back edge included as a
    branch to an interior label).  Entry is seeded TRUE — the hoisted
    preload establishes the fact — and the meet over paths is AND, so a
    single path that breaks the mirror kills it.  Returns violations:
    ``("load", i)`` for interior loads of the slot the fact does not
    reach, ``("exit", i)`` for non-return exits where it does not hold.
    """
    n = len(body)
    labels = {
        instr.label: i for i, instr in enumerate(body) if instr.op is Op.LABEL
    }

    def successors(i: int) -> List[int]:
        """Successor positions; ``n`` stands for the loop exit."""
        instr = body[i]
        if instr.op is Op.CBR:
            out = []
            for target in (instr.label, instr.label_false):
                out.append(labels.get(target, n))
            return out
        if instr.op is Op.JMP:
            return [labels.get(instr.label, n)]
        if instr.op is Op.RET:
            return []  # function exit: the trailing store never runs
        return [i + 1] if i + 1 < n else [n]

    def transfer(i: int, fact: bool) -> bool:
        instr = body[i]
        if instr.op is Op.LDM and instr.addr == slot and instr.dst == carrier:
            return True
        if instr.op is Op.STM and instr.addr == slot:
            return instr.srcs[0] == carrier
        if carrier in instr.defs:
            return False
        return fact

    # Optimistic initialization, entry forced TRUE, iterate to fixpoint.
    fact_in = [True] * (n + 1)
    entry_fact = True
    changed = True
    while changed:
        changed = False
        for i in range(n):
            preds_fact = entry_fact if i == 0 else True
            incoming = [preds_fact] if i == 0 else []
            for j in range(n):
                if i in successors(j):
                    incoming.append(transfer(j, fact_in[j]))
            new = all(incoming) if incoming else (i == 0)
            if new != fact_in[i]:
                fact_in[i] = new
                changed = True

    violations: List[Tuple[str, int]] = []
    for i, instr in enumerate(body):
        if instr.op is Op.LDM and instr.addr == slot and not fact_in[i]:
            violations.append(("load", i))
    for i in range(n):
        if n in successors(i) and not transfer(i, fact_in[i]):
            violations.append(("exit", i))
    return violations


# ---------------------------------------------------------------------------
# Schedule validation
# ---------------------------------------------------------------------------


def validate_schedule(
    original: Sequence[Instr],
    scheduled: Sequence[Instr],
    context: StageContext,
    model=None,
) -> None:
    """Prove ``scheduled`` is a sound reordering of ``original``.

    Blocks must be permuted in place (same positions, labels pinned,
    terminator last), every block's scheduled order must be a topological
    order of the must-precede relation re-derived from the original
    order, and the simulated in-order completion time must not regress.
    Raises :class:`ScheduleValidationError` on the first violation.
    """
    from ..cfg.graph import CFG
    from ..sched.latency import LatencyModel
    from ..sched.list_scheduler import simulate_block

    model = model or LatencyModel()
    original = list(original)
    scheduled = list(scheduled)
    ctx = _extend(context, phase="schedule")
    if len(original) != len(scheduled):
        raise ScheduleValidationError(
            f"scheduler changed the instruction count "
            f"({len(original)} -> {len(scheduled)})",
            ctx,
        )

    cfg = CFG(original)
    for block in cfg.blocks:
        before = original[block.start:block.end]
        after = scheduled[block.start:block.end]
        bctx = _extend(ctx, block=block.index, pc=block.start)
        before_ids = sorted(id(instr) for instr in before)
        after_ids = sorted(id(instr) for instr in after)
        if before_ids != after_ids:
            raise ScheduleValidationError(
                f"block {block.index} is not a permutation of its "
                f"original instructions (moved across a block boundary, "
                f"dropped, or duplicated)",
                bctx,
            )
        position = {id(instr): i for i, instr in enumerate(after)}
        for i, a in enumerate(before):
            if a.op is Op.LABEL and position[id(a)] != i:
                raise ScheduleValidationError(
                    f"label {a.label} moved inside block {block.index}",
                    bctx,
                )
        if before and before[-1].is_branch:
            if after[-1] is not before[-1]:
                raise ScheduleValidationError(
                    f"terminator {before[-1]} is no longer last in block "
                    f"{block.index}",
                    bctx,
                )
        for i in range(len(before)):
            for j in range(i + 1, len(before)):
                if not _must_precede(before[i], before[j]):
                    continue
                if position[id(before[i])] > position[id(before[j])]:
                    raise ScheduleValidationError(
                        f"scheduled order of block {block.index} violates "
                        f"the dependence '{before[i]}' -> '{before[j]}'",
                        _extend(bctx, earlier=str(before[i]), later=str(before[j])),
                    )
        body_before = [x for x in before if x.op is not Op.LABEL]
        body_after = [x for x in after if x.op is not Op.LABEL]
        length_before = simulate_block(body_before, model)
        length_after = simulate_block(body_after, model)
        if length_after > length_before:
            raise ScheduleValidationError(
                f"block {block.index} schedule regressed "
                f"({length_before} -> {length_after} cycles)",
                bctx,
            )


def _must_precede(a: Instr, b: Instr) -> bool:
    """Must ``a`` stay before ``b``?  ``a`` precedes ``b`` in original
    program order.  Pairwise re-derivation of the dependence rules —
    deliberately *not* shared with :class:`repro.sched.dag.BlockDag`."""
    a_defs, b_defs = set(a.defs), set(b.defs)
    if a_defs & set(b.uses) or set(a.uses) & b_defs or a_defs & b_defs:
        return True
    heap = (Op.LOAD, Op.STORE)
    if a.op in heap and b.op in heap and Op.STORE in (a.op, b.op):
        return True
    if (a.op is Op.CALL and b.op in heap) or (a.op in heap and b.op is Op.CALL):
        return True
    direct = (Op.LDM, Op.STM)
    if a.op in direct and b.op in direct:
        if (
            a.addr is not None
            and b.addr is not None
            and a.addr.name == b.addr.name
            and Op.STM in (a.op, b.op)
        ):
            return True
    for first, second in ((a, b), (b, a)):
        if (
            first.op is Op.CALL
            and second.op in direct
            and second.addr is not None
            and second.addr.space == "global"
        ):
            return True
    if a.op in _OBSERVABLE_OPS and b.op in _OBSERVABLE_OPS:
        return True
    return False


# ---------------------------------------------------------------------------
# Peephole validation
# ---------------------------------------------------------------------------


def validate_peephole(
    before: Sequence[Instr],
    after: Sequence[Instr],
    context: StageContext,
) -> None:
    """Prove the Figure-6 rewrites preserved every basic block's
    semantics by symbolic execution.

    Both code lists are split at the shared boundary instructions (labels
    and branches, which the peephole passes through untouched); each
    before/after window pair is executed symbolically from an identical
    fresh state, and the final register file, symbolic memory, heap
    state, and observable event trace must be equal.  Raises
    :class:`PeepholeValidationError` on the first disagreement.
    """
    ctx = _extend(context, phase="peephole")
    bounds_before, windows_before = _split_windows(before)
    bounds_after, windows_after = _split_windows(after)
    # The before snapshot is a clone, so boundaries compare structurally,
    # not by identity.
    keys_before = [_boundary_key(x) for x in bounds_before]
    keys_after = [_boundary_key(x) for x in bounds_after]
    if keys_before != keys_after:
        raise PeepholeValidationError(
            "peephole changed the block structure (a label or branch was "
            "added, dropped, or reordered)",
            ctx,
        )
    for index, (win_before, win_after) in enumerate(
        zip(windows_before, windows_after)
    ):
        state_before = _sym_exec(win_before)
        state_after = _sym_exec(win_after)
        mismatch = _first_mismatch(state_before, state_after)
        if mismatch is not None:
            what, detail = mismatch
            raise PeepholeValidationError(
                f"window {index} is not equivalent after the peephole: "
                f"{what} differs ({detail})",
                _extend(ctx, window=index, component=what),
            )


def _boundary_key(instr: Instr) -> Tuple[Any, ...]:
    """Structural identity of a window boundary (label or branch)."""
    return (
        instr.op,
        tuple(instr.srcs),
        instr.dst,
        instr.addr,
        instr.label,
        instr.label_false,
        getattr(instr, "imm", None),
        getattr(instr, "callee", None),
    )


def _split_windows(
    code: Sequence[Instr],
) -> Tuple[List[Instr], List[List[Instr]]]:
    """Split at labels/branches; returns (boundaries, windows).  There is
    always one more window than boundaries (possibly empty windows)."""
    boundaries: List[Instr] = []
    windows: List[List[Instr]] = [[]]
    for instr in code:
        if instr.op is Op.LABEL or instr.is_branch:
            boundaries.append(instr)
            windows.append([])
        else:
            windows[-1].append(instr)
    return boundaries, windows


class _SymState:
    """Final symbolic state of one window execution."""

    def __init__(self) -> None:
        self.regs: Dict[Reg, Any] = {}
        self.mem: Dict[Symbol, Any] = {}
        self.heap: Any = ("heap0",)
        self.global_epoch: Any = ("g0",)
        self.trace: List[Any] = []


def _sym_exec(window: Sequence[Instr]) -> _SymState:
    """Execute one straight-line window over symbolic values.

    Values are hash-consed expression tuples, so two executions that
    compute the same thing produce structurally equal values — no
    nondeterministic fresh-value counters."""
    state = _SymState()

    def reg(r: Reg) -> Any:
        return state.regs.get(r, ("init", r))

    def mem_read(addr: Symbol) -> Any:
        if addr in state.mem:
            return state.mem[addr]
        if addr.space == "global":
            return ("gmem", addr.name, state.global_epoch)
        return ("mem0", addr.name)

    for instr in window:
        op = instr.op
        if op is Op.LOADI:
            state.regs[instr.dst] = ("const", instr.imm)
        elif op is Op.I2I:
            state.regs[instr.dst] = reg(instr.srcs[0])
        elif op is Op.LDM:
            state.regs[instr.dst] = mem_read(instr.addr)
        elif op is Op.STM:
            state.mem[instr.addr] = reg(instr.srcs[0])
        elif op is Op.LOADA:
            state.regs[instr.dst] = ("base", instr.addr.name, instr.addr.space)
        elif op is Op.LOAD:
            state.regs[instr.dst] = ("heapload", state.heap, reg(instr.srcs[0]))
        elif op is Op.STORE:
            state.heap = (
                "heapstore",
                state.heap,
                reg(instr.srcs[1]),
                reg(instr.srcs[0]),
            )
        elif op is Op.PRINT:
            state.trace.append(("print", reg(instr.srcs[0])))
        elif op is Op.PARAM:
            state.trace.append(("param", reg(instr.srcs[0])))
        elif op is Op.ALLOCA:
            token = ("alloca", len(state.trace), instr.imm)
            state.trace.append(token)
            state.regs[instr.dst] = token
        elif op is Op.CALL:
            index = len(state.trace)
            state.trace.append(
                (
                    "call",
                    instr.callee,
                    tuple(reg(r) for r in instr.srcs),
                    state.heap,
                    state.global_epoch,
                )
            )
            # A callee may write the heap and any global scalar, but can
            # never touch this activation's spill slots.
            state.heap = ("postcall-heap", index)
            state.global_epoch = ("postcall", index)
            for addr in [a for a in state.mem if a.space == "global"]:
                del state.mem[addr]
            if instr.dst is not None:
                state.regs[instr.dst] = ("callret", index)
        elif op is Op.NOP:
            pass
        else:
            # Arithmetic / comparison / logic: a pure function of the
            # source values.
            state.regs[instr.dst] = (
                op.value,
                tuple(reg(r) for r in instr.srcs),
            )

    # Normalize away entries equal to their defaults, so "wrote back the
    # value that was already there" compares equal to "never wrote".
    for r in [r for r, v in state.regs.items() if v == ("init", r)]:
        del state.regs[r]
    for addr in list(state.mem):
        default = (
            ("gmem", addr.name, state.global_epoch)
            if addr.space == "global"
            else ("mem0", addr.name)
        )
        if state.mem[addr] == default:
            del state.mem[addr]
    return state


def _first_mismatch(
    a: _SymState, b: _SymState
) -> Optional[Tuple[str, str]]:
    if a.trace != b.trace:
        for i, (x, y) in enumerate(zip(a.trace, b.trace)):
            if x != y:
                return "observable trace", f"event {i}: {x} vs {y}"
        return "observable trace", f"lengths {len(a.trace)} vs {len(b.trace)}"
    if a.heap != b.heap:
        return "heap state", f"{a.heap} vs {b.heap}"
    if a.regs != b.regs:
        for r in sorted(set(a.regs) | set(b.regs)):
            va = a.regs.get(r, ("init", r))
            vb = b.regs.get(r, ("init", r))
            if va != vb:
                return "register file", f"{r}: {va} vs {vb}"
    if a.mem != b.mem:
        for addr in sorted(set(a.mem) | set(b.mem)):
            va, vb = a.mem.get(addr), b.mem.get(addr)
            if va != vb:
                return "memory", f"{addr}: {va} vs {vb}"
    return None
