"""Independent semantic validators for the transforming phases.

PR 1's validate stage rechecks *allocation* decisions (coloring against a
rebuilt interference graph, spill-slot discipline).  The transformations
that come after allocation — spill-code motion out of loops, the Figure-6
peephole, and the list scheduler — previously trusted their own analyses:
a bug there miscompiled silently until the interpreter diverged.  This
module closes that gap with one independent checker per phase, each
recomputing the transformation's safety argument from scratch:

``validate_motion``
    Replays every hoist certificate against the *pre-motion* snapshot:
    recomputes which register carries the slot, proves the hoisted
    preload is anticipated (the loop's first interior access is a load),
    runs a from-scratch forward must-analysis showing the carried
    register mirrors the slot on **all paths** through the loop
    (including the back edge), and checks the post-motion PDG has the
    preload, the trailing store exactly when the loop wrote the slot,
    and no leftover interior traffic.

``validate_schedule``
    Re-derives the must-precede relation of every basic block from the
    *original* instruction order — register flow/anti/output overlap,
    conflicting memory accesses, observable-operation order, terminator
    last — with pairwise rules written independently of
    :mod:`repro.sched.dag`, then checks the scheduled order is a
    topological order of that relation, permutes each block exactly, and
    never regresses the simulated schedule length.

``validate_peephole``
    Symbolically executes each basic-block window before and after the
    Figure-6 rewrites and proves the final register file, symbolic
    memory, heap state, and observable event trace are equal.

The SSA spill-then-color rung (:mod:`repro.regalloc.ssaspill`) carries a
certificate with two snapshots, checked by three further validators:

``validate_ssa_construction``
    Structural SSA invariants (single defs, phi arity, definitions
    dominate uses) plus two semantic rechecks on the aligned pre-rename
    snapshot: every use must resolve to the *nearest* dominating
    definition of its original register (a shadowed — stale — definition
    on the renaming stack is rejected even though it, too, dominates),
    and the original definitions transitively feeding each renamed use
    (through phis) must all appear among that use's independently
    recomputed reaching definitions.

``validate_destruction``
    Aligns the post-spill SSA snapshot with the destructed code block by
    block, proves everything outside the inserted copy windows survived
    untouched, then symbolically replays each window at the *location*
    (color) level: every phi destination must end up holding the value
    its incoming argument held on entry to the window, and no value live
    through the edge may be clobbered — the lost-copy and swap proofs.

``validate_chordal``
    Rebuilds SSA liveness and interference from the certificate and
    re-proves the zero-coloring-time-spill claim: MAXLIVE <= k, the
    elimination order is perfect (each value's earlier neighbors form a
    clique) with fewer than k earlier neighbors per value, the coloring
    is proper in [0, k), and no spill slot appears in the destructed
    code beyond those certified by the spill phase and cycle breaking.

All of them raise typed :class:`~repro.resilience.errors.StageError`
subclasses carrying the stage context plus the precise region/block/pc
where the proof failed, so a caught corruption is debuggable — and
transportable through the ``--jobs N`` process pool — without re-running
anything.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..ir.iloc import Instr, Op, Reg, Symbol
from .errors import (
    ChordalValidationError,
    DestructValidationError,
    MotionValidationError,
    PeepholeValidationError,
    ScheduleValidationError,
    SSAValidationError,
    StageContext,
)

#: Instructions whose relative order is observable machine state (kept in
#: sync with the interpreter's semantics, not imported from the scheduler
#: — the validator must not share the code it checks).
_OBSERVABLE_OPS = (Op.PRINT, Op.PARAM, Op.CALL, Op.RET, Op.ALLOCA)


def _extend(context: StageContext, **extra: Any) -> StageContext:
    merged = dict(context.extra)
    merged.update(extra)
    return replace(context, extra=merged)


# ---------------------------------------------------------------------------
# Motion validation
# ---------------------------------------------------------------------------


def validate_motion(func, result, context: StageContext) -> None:
    """Recheck every spill-code hoist of one RAP run from scratch.

    ``func`` is the post-motion PDG function and ``result`` the
    :class:`~repro.regalloc.rap.allocator.RAPResult` carrying the hoist
    certificates plus the pre-motion snapshot.  Raises
    :class:`MotionValidationError` on the first unsound hoist.
    """
    hoists = getattr(result.motion, "hoists", [])
    if not hoists:
        return
    snapshot = result.pre_motion_code
    if snapshot is None:
        raise MotionValidationError(
            "motion reported hoists but captured no pre-motion snapshot",
            _extend(context, phase="motion"),
        )
    regions = {region.name: region for region in func.walk_regions()}
    for cert in hoists:
        ctx = _extend(
            context,
            phase="motion",
            loop=cert.loop_name,
            slot=str(cert.slot),
        )
        span = result.loop_spans.get(cert.loop_name)
        if span is None:
            raise MotionValidationError(
                f"hoisted loop {cert.loop_name} has no recorded span",
                ctx,
            )
        _check_one_hoist(func, regions, cert, snapshot, span, ctx)


def _check_one_hoist(
    func,
    regions: Dict[str, Any],
    cert,
    snapshot: List[Instr],
    span: Tuple[int, int],
    ctx: StageContext,
) -> None:
    start, end = span
    body = snapshot[start:end]
    slot = cert.slot

    interior = [
        (i, instr)
        for i, instr in enumerate(body)
        if instr.op in (Op.LDM, Op.STM) and instr.addr == slot
    ]
    if not interior:
        raise MotionValidationError(
            f"hoist of {slot} out of {cert.loop_name} deleted no interior "
            f"access (nothing to hoist)",
            ctx,
        )

    # One physical register must carry all of the slot's interior traffic.
    carriers = {
        instr.dst if instr.op is Op.LDM else instr.srcs[0]
        for _, instr in interior
    }
    if len(carriers) != 1:
        raise MotionValidationError(
            f"interior accesses of {slot} in {cert.loop_name} use several "
            f"registers {sorted(map(str, carriers))}; a hoist needs one",
            ctx,
        )
    carrier = carriers.pop()
    if not carrier.is_physical:
        raise MotionValidationError(
            f"interior accesses of {slot} use non-physical {carrier}", ctx
        )

    # Anticipation: the loop's first interior access must be the load the
    # preload replaces — hoisting around a store-first loop would need a
    # preload no store dominates.
    if interior[0][1].op is not Op.LDM:
        raise MotionValidationError(
            f"first interior access of {slot} in {cert.loop_name} is a "
            f"store; the hoisted preload is not anticipated",
            ctx,
        )
    had_store = any(instr.op is Op.STM for _, instr in interior)

    # From-scratch must-analysis over the pre-motion loop body: with the
    # preload establishing "carrier == slot" at loop entry, the fact must
    # hold at every interior load (so deleting it is a no-op) and at every
    # non-return loop exit (so the trailing store writes the final value).
    violations = _carrier_mirrors_slot(body, slot, carrier)
    for kind, position in violations:
        instr = body[position] if position < len(body) else None
        if kind == "load":
            raise MotionValidationError(
                f"{carrier} does not mirror {slot} on every path reaching "
                f"the deleted load at {cert.loop_name}+{position} "
                f"({instr})",
                _extend(ctx, pc=start + position),
            )
        if kind == "exit" and had_store:
            raise MotionValidationError(
                f"{carrier} does not mirror {slot} on the loop exit at "
                f"{cert.loop_name}+{position}; the trailing store would "
                f"write a stale value",
                _extend(ctx, pc=start + position),
            )

    # Post-motion structure: the PDG must carry the preload (into the
    # carrier register), the trailing store exactly when the loop wrote
    # the slot, and no leftover interior traffic.
    loop = regions.get(cert.loop_name)
    if loop is None:
        raise MotionValidationError(
            f"hoisted loop {cert.loop_name} vanished from the PDG", ctx
        )
    for instr in loop.walk_instrs():
        if instr.op in (Op.LDM, Op.STM) and instr.addr == slot:
            raise MotionValidationError(
                f"interior access of {slot} survives inside "
                f"{cert.loop_name} after its hoist ({instr})",
                ctx,
            )
    parents = func.parent_map()
    if loop not in parents:
        raise MotionValidationError(
            f"hoisted loop {cert.loop_name} has no parent region", ctx
        )
    parent, _ = parents[loop]
    preload = _spill_node_access(parent, f"pre-{cert.loop_name}", Op.LDM, slot)
    if preload is None:
        raise MotionValidationError(
            f"no pre-loop spill node loads {slot} before {cert.loop_name}",
            ctx,
        )
    if preload.dst != carrier:
        raise MotionValidationError(
            f"preload of {slot} targets {preload.dst}, but the loop "
            f"carries the slot in {carrier}",
            ctx,
        )
    trailing = _spill_node_access(parent, f"post-{cert.loop_name}", Op.STM, slot)
    if had_store and trailing is None:
        raise MotionValidationError(
            f"loop {cert.loop_name} wrote {slot} but no trailing store "
            f"follows it; the final value is lost",
            ctx,
        )
    if not had_store and trailing is not None:
        raise MotionValidationError(
            f"loop {cert.loop_name} never wrote {slot} yet a trailing "
            f"store follows it",
            ctx,
        )
    if trailing is not None and trailing.srcs[0] != carrier:
        raise MotionValidationError(
            f"trailing store of {slot} reads {trailing.srcs[0]}, but the "
            f"loop carries the slot in {carrier}",
            ctx,
        )


def _spill_node_access(
    parent, note: str, op: Op, slot: Symbol
) -> Optional[Instr]:
    """The ``op`` access of ``slot`` inside a spill node with ``note``
    among ``parent``'s items, or ``None``."""
    from ..pdg.nodes import Region

    for item in parent.items:
        if not isinstance(item, Region) or item.kind != "spill":
            continue
        if item.note != note:
            continue
        for instr in item.walk_instrs():
            if instr.op is op and instr.addr == slot:
                return instr
    return None


def _carrier_mirrors_slot(
    body: Sequence[Instr], slot: Symbol, carrier: Reg
) -> List[Tuple[str, int]]:
    """Forward must-analysis of the fact "``carrier`` holds ``slot``'s
    current value" over the loop body's own control flow.

    The body is a self-contained span of the pre-motion linearization
    (loop header label first, exit label last, back edge included as a
    branch to an interior label).  Entry is seeded TRUE — the hoisted
    preload establishes the fact — and the meet over paths is AND, so a
    single path that breaks the mirror kills it.  Returns violations:
    ``("load", i)`` for interior loads of the slot the fact does not
    reach, ``("exit", i)`` for non-return exits where it does not hold.
    """
    n = len(body)
    labels = {
        instr.label: i for i, instr in enumerate(body) if instr.op is Op.LABEL
    }

    def successors(i: int) -> List[int]:
        """Successor positions; ``n`` stands for the loop exit."""
        instr = body[i]
        if instr.op is Op.CBR:
            out = []
            for target in (instr.label, instr.label_false):
                out.append(labels.get(target, n))
            return out
        if instr.op is Op.JMP:
            return [labels.get(instr.label, n)]
        if instr.op is Op.RET:
            return []  # function exit: the trailing store never runs
        return [i + 1] if i + 1 < n else [n]

    def transfer(i: int, fact: bool) -> bool:
        instr = body[i]
        if instr.op is Op.LDM and instr.addr == slot and instr.dst == carrier:
            return True
        if instr.op is Op.STM and instr.addr == slot:
            return instr.srcs[0] == carrier
        if carrier in instr.defs:
            return False
        return fact

    # Optimistic initialization, entry forced TRUE, iterate to fixpoint.
    fact_in = [True] * (n + 1)
    entry_fact = True
    changed = True
    while changed:
        changed = False
        for i in range(n):
            preds_fact = entry_fact if i == 0 else True
            incoming = [preds_fact] if i == 0 else []
            for j in range(n):
                if i in successors(j):
                    incoming.append(transfer(j, fact_in[j]))
            new = all(incoming) if incoming else (i == 0)
            if new != fact_in[i]:
                fact_in[i] = new
                changed = True

    violations: List[Tuple[str, int]] = []
    for i, instr in enumerate(body):
        if instr.op is Op.LDM and instr.addr == slot and not fact_in[i]:
            violations.append(("load", i))
    for i in range(n):
        if n in successors(i) and not transfer(i, fact_in[i]):
            violations.append(("exit", i))
    return violations


# ---------------------------------------------------------------------------
# Schedule validation
# ---------------------------------------------------------------------------


def validate_schedule(
    original: Sequence[Instr],
    scheduled: Sequence[Instr],
    context: StageContext,
    model=None,
) -> None:
    """Prove ``scheduled`` is a sound reordering of ``original``.

    Blocks must be permuted in place (same positions, labels pinned,
    terminator last), every block's scheduled order must be a topological
    order of the must-precede relation re-derived from the original
    order, and the simulated in-order completion time must not regress.
    Raises :class:`ScheduleValidationError` on the first violation.
    """
    from ..cfg.graph import CFG
    from ..sched.latency import LatencyModel
    from ..sched.list_scheduler import simulate_block

    model = model or LatencyModel()
    original = list(original)
    scheduled = list(scheduled)
    ctx = _extend(context, phase="schedule")
    if len(original) != len(scheduled):
        raise ScheduleValidationError(
            f"scheduler changed the instruction count "
            f"({len(original)} -> {len(scheduled)})",
            ctx,
        )

    cfg = CFG(original)
    for block in cfg.blocks:
        before = original[block.start:block.end]
        after = scheduled[block.start:block.end]
        bctx = _extend(ctx, block=block.index, pc=block.start)
        before_ids = sorted(id(instr) for instr in before)
        after_ids = sorted(id(instr) for instr in after)
        if before_ids != after_ids:
            raise ScheduleValidationError(
                f"block {block.index} is not a permutation of its "
                f"original instructions (moved across a block boundary, "
                f"dropped, or duplicated)",
                bctx,
            )
        position = {id(instr): i for i, instr in enumerate(after)}
        for i, a in enumerate(before):
            if a.op is Op.LABEL and position[id(a)] != i:
                raise ScheduleValidationError(
                    f"label {a.label} moved inside block {block.index}",
                    bctx,
                )
        if before and before[-1].is_branch:
            if after[-1] is not before[-1]:
                raise ScheduleValidationError(
                    f"terminator {before[-1]} is no longer last in block "
                    f"{block.index}",
                    bctx,
                )
        for i in range(len(before)):
            for j in range(i + 1, len(before)):
                if not _must_precede(before[i], before[j]):
                    continue
                if position[id(before[i])] > position[id(before[j])]:
                    raise ScheduleValidationError(
                        f"scheduled order of block {block.index} violates "
                        f"the dependence '{before[i]}' -> '{before[j]}'",
                        _extend(bctx, earlier=str(before[i]), later=str(before[j])),
                    )
        body_before = [x for x in before if x.op is not Op.LABEL]
        body_after = [x for x in after if x.op is not Op.LABEL]
        length_before = simulate_block(body_before, model)
        length_after = simulate_block(body_after, model)
        if length_after > length_before:
            raise ScheduleValidationError(
                f"block {block.index} schedule regressed "
                f"({length_before} -> {length_after} cycles)",
                bctx,
            )


def _must_precede(a: Instr, b: Instr) -> bool:
    """Must ``a`` stay before ``b``?  ``a`` precedes ``b`` in original
    program order.  Pairwise re-derivation of the dependence rules —
    deliberately *not* shared with :class:`repro.sched.dag.BlockDag`."""
    a_defs, b_defs = set(a.defs), set(b.defs)
    if a_defs & set(b.uses) or set(a.uses) & b_defs or a_defs & b_defs:
        return True
    heap = (Op.LOAD, Op.STORE)
    if a.op in heap and b.op in heap and Op.STORE in (a.op, b.op):
        return True
    if (a.op is Op.CALL and b.op in heap) or (a.op in heap and b.op is Op.CALL):
        return True
    direct = (Op.LDM, Op.STM)
    if a.op in direct and b.op in direct:
        if (
            a.addr is not None
            and b.addr is not None
            and a.addr.name == b.addr.name
            and Op.STM in (a.op, b.op)
        ):
            return True
    for first, second in ((a, b), (b, a)):
        if (
            first.op is Op.CALL
            and second.op in direct
            and second.addr is not None
            and second.addr.space == "global"
        ):
            return True
    if a.op in _OBSERVABLE_OPS and b.op in _OBSERVABLE_OPS:
        return True
    return False


# ---------------------------------------------------------------------------
# Peephole validation
# ---------------------------------------------------------------------------


def validate_peephole(
    before: Sequence[Instr],
    after: Sequence[Instr],
    context: StageContext,
) -> None:
    """Prove the Figure-6 rewrites preserved every basic block's
    semantics by symbolic execution.

    Both code lists are split at the shared boundary instructions (labels
    and branches, which the peephole passes through untouched); each
    before/after window pair is executed symbolically from an identical
    fresh state, and the final register file, symbolic memory, heap
    state, and observable event trace must be equal.  Raises
    :class:`PeepholeValidationError` on the first disagreement.
    """
    ctx = _extend(context, phase="peephole")
    bounds_before, windows_before = _split_windows(before)
    bounds_after, windows_after = _split_windows(after)
    # The before snapshot is a clone, so boundaries compare structurally,
    # not by identity.
    keys_before = [_boundary_key(x) for x in bounds_before]
    keys_after = [_boundary_key(x) for x in bounds_after]
    if keys_before != keys_after:
        raise PeepholeValidationError(
            "peephole changed the block structure (a label or branch was "
            "added, dropped, or reordered)",
            ctx,
        )
    for index, (win_before, win_after) in enumerate(
        zip(windows_before, windows_after)
    ):
        state_before = _sym_exec(win_before)
        state_after = _sym_exec(win_after)
        mismatch = _first_mismatch(state_before, state_after)
        if mismatch is not None:
            what, detail = mismatch
            raise PeepholeValidationError(
                f"window {index} is not equivalent after the peephole: "
                f"{what} differs ({detail})",
                _extend(ctx, window=index, component=what),
            )


def _boundary_key(instr: Instr) -> Tuple[Any, ...]:
    """Structural identity of a window boundary (label or branch)."""
    return (
        instr.op,
        tuple(instr.srcs),
        instr.dst,
        instr.addr,
        instr.label,
        instr.label_false,
        getattr(instr, "imm", None),
        getattr(instr, "callee", None),
    )


def _split_windows(
    code: Sequence[Instr],
) -> Tuple[List[Instr], List[List[Instr]]]:
    """Split at labels/branches; returns (boundaries, windows).  There is
    always one more window than boundaries (possibly empty windows)."""
    boundaries: List[Instr] = []
    windows: List[List[Instr]] = [[]]
    for instr in code:
        if instr.op is Op.LABEL or instr.is_branch:
            boundaries.append(instr)
            windows.append([])
        else:
            windows[-1].append(instr)
    return boundaries, windows


class _SymState:
    """Final symbolic state of one window execution."""

    def __init__(self) -> None:
        self.regs: Dict[Reg, Any] = {}
        self.mem: Dict[Symbol, Any] = {}
        self.heap: Any = ("heap0",)
        self.global_epoch: Any = ("g0",)
        self.trace: List[Any] = []


def _sym_exec(window: Sequence[Instr]) -> _SymState:
    """Execute one straight-line window over symbolic values.

    Values are hash-consed expression tuples, so two executions that
    compute the same thing produce structurally equal values — no
    nondeterministic fresh-value counters."""
    state = _SymState()

    def reg(r: Reg) -> Any:
        return state.regs.get(r, ("init", r))

    def mem_read(addr: Symbol) -> Any:
        if addr in state.mem:
            return state.mem[addr]
        if addr.space == "global":
            return ("gmem", addr.name, state.global_epoch)
        return ("mem0", addr.name)

    for instr in window:
        op = instr.op
        if op is Op.LOADI:
            state.regs[instr.dst] = ("const", instr.imm)
        elif op is Op.I2I:
            state.regs[instr.dst] = reg(instr.srcs[0])
        elif op is Op.LDM:
            state.regs[instr.dst] = mem_read(instr.addr)
        elif op is Op.STM:
            state.mem[instr.addr] = reg(instr.srcs[0])
        elif op is Op.LOADA:
            state.regs[instr.dst] = ("base", instr.addr.name, instr.addr.space)
        elif op is Op.LOAD:
            state.regs[instr.dst] = ("heapload", state.heap, reg(instr.srcs[0]))
        elif op is Op.STORE:
            state.heap = (
                "heapstore",
                state.heap,
                reg(instr.srcs[1]),
                reg(instr.srcs[0]),
            )
        elif op is Op.PRINT:
            state.trace.append(("print", reg(instr.srcs[0])))
        elif op is Op.PARAM:
            state.trace.append(("param", reg(instr.srcs[0])))
        elif op is Op.ALLOCA:
            token = ("alloca", len(state.trace), instr.imm)
            state.trace.append(token)
            state.regs[instr.dst] = token
        elif op is Op.CALL:
            index = len(state.trace)
            state.trace.append(
                (
                    "call",
                    instr.callee,
                    tuple(reg(r) for r in instr.srcs),
                    state.heap,
                    state.global_epoch,
                )
            )
            # A callee may write the heap and any global scalar, but can
            # never touch this activation's spill slots.
            state.heap = ("postcall-heap", index)
            state.global_epoch = ("postcall", index)
            for addr in [a for a in state.mem if a.space == "global"]:
                del state.mem[addr]
            if instr.dst is not None:
                state.regs[instr.dst] = ("callret", index)
        elif op is Op.NOP:
            pass
        else:
            # Arithmetic / comparison / logic: a pure function of the
            # source values.
            state.regs[instr.dst] = (
                op.value,
                tuple(reg(r) for r in instr.srcs),
            )

    # Normalize away entries equal to their defaults, so "wrote back the
    # value that was already there" compares equal to "never wrote".
    for r in [r for r, v in state.regs.items() if v == ("init", r)]:
        del state.regs[r]
    for addr in list(state.mem):
        default = (
            ("gmem", addr.name, state.global_epoch)
            if addr.space == "global"
            else ("mem0", addr.name)
        )
        if state.mem[addr] == default:
            del state.mem[addr]
    return state


def _first_mismatch(
    a: _SymState, b: _SymState
) -> Optional[Tuple[str, str]]:
    if a.trace != b.trace:
        for i, (x, y) in enumerate(zip(a.trace, b.trace)):
            if x != y:
                return "observable trace", f"event {i}: {x} vs {y}"
        return "observable trace", f"lengths {len(a.trace)} vs {len(b.trace)}"
    if a.heap != b.heap:
        return "heap state", f"{a.heap} vs {b.heap}"
    if a.regs != b.regs:
        for r in sorted(set(a.regs) | set(b.regs)):
            va = a.regs.get(r, ("init", r))
            vb = b.regs.get(r, ("init", r))
            if va != vb:
                return "register file", f"{r}: {va} vs {vb}"
    if a.mem != b.mem:
        for addr in sorted(set(a.mem) | set(b.mem)):
            va, vb = a.mem.get(addr), b.mem.get(addr)
            if va != vb:
                return "memory", f"{addr}: {va} vs {vb}"
    return None


# ---------------------------------------------------------------------------
# SSA construction validation
# ---------------------------------------------------------------------------


def validate_ssa_construction(cert, context: StageContext) -> None:
    """Recheck SSA construction from the allocator's certificate.

    ``cert`` (:class:`~repro.regalloc.ssaspill.SSACert`) carries the
    renamed code, the phis, and a 1:1 position-aligned clone of the code
    *before* renaming.  Structural invariants come first (single
    definitions, phi arity, dominance of defs over uses); then the two
    semantic rechecks described in the module docstring.  Raises
    :class:`SSAValidationError` on the first violation.
    """
    from ..cfg.dominators import DominatorTree
    from ..cfg.graph import CFG
    from ..cfg.reachdefs import chains_for

    ctx = _extend(context, phase="ssa-construct")
    pre, renamed = cert.pre_ssa, cert.renamed
    if len(pre) != len(renamed):
        raise SSAValidationError(
            f"pre-rename snapshot has {len(pre)} instructions but the "
            f"renamed code has {len(renamed)} (alignment lost)",
            ctx,
        )
    cfg = CFG(renamed)
    dom = DominatorTree(cfg)
    blocks = {block.index: block for block in cfg.blocks}
    block_of = [0] * len(renamed)
    for block in cfg.blocks:
        for index in range(block.start, block.end):
            block_of[index] = block.index

    # --- structure: unique definitions, known origins, phi arity -------
    _PHI_TOP = -1  # phis define at the top of their block
    def_site: Dict[Reg, Tuple[int, int]] = {}  # value -> (block, position)

    def record_def(value: Reg, block_index: int, position: int) -> None:
        if value in def_site:
            raise SSAValidationError(
                f"SSA value {value} has multiple definitions", ctx
            )
        if value not in cert.origin:
            raise SSAValidationError(
                f"defined value {value} has no recorded origin", ctx
            )
        def_site[value] = (block_index, position)

    for block_index, phis in sorted(cert.renamed_phis.items()):
        block = blocks.get(block_index)
        if block is None:
            raise SSAValidationError(
                f"phi block B{block_index} does not exist", ctx
            )
        preds = {pred.index for pred in block.preds}
        for phi in phis:
            record_def(phi.dest, block_index, _PHI_TOP)
            if set(phi.args) != preds:
                raise SSAValidationError(
                    f"phi for {phi.dest} in B{block_index} names "
                    f"predecessors {sorted(phi.args)} but the block has "
                    f"{sorted(preds)}",
                    _extend(ctx, block=block_index),
                )
    for position, instr in enumerate(renamed):
        for dst in instr.defs:
            if dst.is_virtual:
                record_def(dst, block_of[position], position)
    for value in cert.undef:
        if value in def_site:
            raise SSAValidationError(
                f"undef value {value} has a definition", ctx
            )

    by_origin: Dict[Reg, List[Reg]] = {}
    for value, origin in cert.origin.items():
        by_origin.setdefault(origin, []).append(value)

    def site_precedes(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
        """Does definition site ``a`` dominate (strictly precede) ``b``?"""
        if a[0] == b[0]:
            return a[1] < b[1]
        return dom.dominates(a[0], b[0])

    def check_use(value: Reg, use_block: int, use_pos: int, what: str) -> None:
        """``value`` must be defined at the *nearest* dominating
        definition of its origin — dominance alone is not enough; a
        shadowed (stale) definition also dominates the use."""
        if value not in cert.origin:
            raise SSAValidationError(
                f"{what} reads unknown SSA value {value}", ctx
            )
        site = def_site.get(value)
        use_site = (use_block, use_pos)
        if site is None:
            if value not in cert.undef:
                raise SSAValidationError(
                    f"{what} reads {value}, which has no definition and "
                    "is not an undef value",
                    ctx,
                )
        elif not site_precedes(site, use_site):
            raise SSAValidationError(
                f"definition of {value} does not dominate {what}",
                _extend(ctx, value=str(value)),
            )
        for other in by_origin[cert.origin[value]]:
            if other == value:
                continue
            other_site = def_site.get(other)
            if other_site is None or not site_precedes(other_site, use_site):
                continue
            if site is None or site_precedes(site, other_site):
                raise SSAValidationError(
                    f"{what} reads {value} but the nearer definition of "
                    f"origin {cert.origin[value]} is {other} (stale "
                    "renaming)",
                    _extend(ctx, value=str(value), shadowing=str(other)),
                )

    for position, instr in enumerate(renamed):
        for src in instr.srcs:
            if src.is_virtual:
                check_use(
                    src, block_of[position], position, f"use at {position}"
                )
    for block_index, phis in sorted(cert.renamed_phis.items()):
        block = blocks[block_index]
        for phi in phis:
            for pred in block.preds:
                arg = phi.args[pred.index]
                if arg.is_virtual:
                    check_use(
                        arg,
                        pred.index,
                        pred.end,  # the argument is read at the edge
                        f"phi argument on B{pred.index}->B{block_index}",
                    )

    # --- semantics: feeding defs vs recomputed reaching definitions ----
    pre_cfg = CFG(pre)
    chains_cache: Dict[Reg, Any] = {}
    feed_cache: Dict[Reg, Set[Any]] = {}
    _ENTRY = object()  # feeding marker for undef values

    def feeding_defs(value: Reg) -> Set[Any]:
        """Positions of the instruction definitions transitively feeding
        ``value`` through phis (``_ENTRY`` for undef contributions)."""
        cached = feed_cache.get(value)
        if cached is not None:
            return cached
        out: Set[Any] = set()
        seen: Set[Reg] = set()
        stack = [value]
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            site = def_site.get(v)
            if site is None:
                out.add(_ENTRY)
                continue
            block_index, position = site
            if position != _PHI_TOP:
                out.add(position)
                continue
            for phi in cert.renamed_phis[block_index]:
                if phi.dest == v:
                    stack.extend(phi.args.values())
                    break
        feed_cache[value] = out
        return out

    for position, instr in enumerate(renamed):
        original = pre[position]
        if len(original.srcs) != len(instr.srcs):
            raise SSAValidationError(
                f"operand count changed at position {position}", ctx
            )
        for slot, src in enumerate(instr.srcs):
            if not src.is_virtual:
                continue
            origin = cert.origin[src]
            if original.srcs[slot] != origin:
                raise SSAValidationError(
                    f"use at {position} renamed {original.srcs[slot]} to "
                    f"{src}, whose origin is {origin}",
                    _extend(ctx, position=position),
                )
            chains = chains_cache.get(origin)
            if chains is None:
                chains = chains_cache[origin] = chains_for(pre_cfg, origin)
            allowed = {
                id(site)
                for site in chains.defs_reaching(original)
                if isinstance(site, Instr)
            }
            for feed in feeding_defs(src):
                if feed is _ENTRY:
                    continue  # undef contribution: no pre-SSA def to match
                if id(pre[feed]) not in allowed:
                    raise SSAValidationError(
                        f"use of {origin} at {position} was renamed to "
                        f"{src}, fed by the definition at {feed}, which "
                        "does not reach the use (stale renaming)",
                        _extend(ctx, position=position, definition=feed),
                    )


# ---------------------------------------------------------------------------
# Out-of-SSA destruction validation
# ---------------------------------------------------------------------------


def validate_destruction(cert, virtual_code, context: StageContext) -> None:
    """Recheck out-of-SSA destruction by symbolic replay.

    ``cert.ssa_code``/``cert.phis`` are the post-spill snapshot that was
    destructed; ``virtual_code`` is the destructed (still virtual)
    result.  Raises :class:`DestructValidationError` on the first lost
    copy, clobbered live-through value, or structural mismatch.
    """
    from ..cfg.graph import CFG
    from ..ssa.liveness import ssa_liveness

    ctx = _extend(context, phase="ssa-destruct")
    if virtual_code is None:
        raise DestructValidationError(
            "allocator kept no virtual destruction snapshot", ctx
        )
    cfg_ssa = CFG(cert.ssa_code)
    cfg_out = CFG(virtual_code)
    if len(cfg_ssa.blocks) != len(cfg_out.blocks):
        raise DestructValidationError(
            f"destruction changed the block count "
            f"({len(cfg_ssa.blocks)} -> {len(cfg_out.blocks)})",
            ctx,
        )
    live = ssa_liveness(cert.ssa_code, cfg_ssa, cert.phis)
    assignment = cert.assignment

    def loc(value: Reg):
        return assignment.get(value, value)

    # Which predecessor blocks own a copy window, and for which phis.
    blocks_ssa = {block.index: block for block in cfg_ssa.blocks}
    edges: Dict[int, Tuple[int, List[Any]]] = {}
    for succ_index, phis in sorted(cert.phis.items()):
        if not phis:
            continue
        succ = blocks_ssa.get(succ_index)
        if succ is None:
            raise DestructValidationError(
                f"phi block B{succ_index} does not exist", ctx
            )
        for pred in succ.preds:
            if len(pred.succs) != 1:
                raise DestructValidationError(
                    f"critical edge B{pred.index}->B{succ_index} carries "
                    "a parallel copy",
                    ctx,
                )
            edges[pred.index] = (succ_index, phis)

    for block_ssa, block_out in zip(cfg_ssa.blocks, cfg_out.blocks):
        before = cert.ssa_code[block_ssa.start : block_ssa.end]
        after = virtual_code[block_out.start : block_out.end]
        term = 1 if before and before[-1].is_branch else 0
        term_out = 1 if after and after[-1].is_branch else 0
        ectx = _extend(ctx, block=block_ssa.index)
        if term != term_out or (term and str(before[-1]) != str(after[-1])):
            raise DestructValidationError(
                f"destruction altered the terminator of B{block_ssa.index}",
                ectx,
            )
        if len(after) < len(before):
            raise DestructValidationError(
                f"destruction dropped instructions from B{block_ssa.index}",
                ectx,
            )
        head = len(before) - term
        for index in range(head):
            if str(before[index]) != str(after[index]):
                raise DestructValidationError(
                    f"destruction altered a non-copy instruction in "
                    f"B{block_ssa.index}: {before[index]} -> {after[index]}",
                    ectx,
                )
        window = after[head : len(after) - term]
        edge = edges.get(block_ssa.index)
        if edge is None:
            if window:
                raise DestructValidationError(
                    f"copy window inserted at B{block_ssa.index}, which "
                    "feeds no phi",
                    ectx,
                )
            continue
        succ_index, phis = edge
        _replay_copy_window(
            cert,
            window,
            phis,
            block_ssa.index,
            succ_index,
            live,
            loc,
            _extend(ctx, edge=f"B{block_ssa.index}->B{succ_index}"),
        )


def _replay_copy_window(
    cert, window, phis, pred_index, succ_index, live, loc, ctx
) -> None:
    """Symbolically execute one edge's copy window at the location level
    and prove each phi received its argument's value while every
    live-through location kept its own."""
    env: Dict[Any, Tuple[str, Any]] = {}
    mem: Dict[str, Tuple[str, Any]] = {}

    def read(location) -> Tuple[str, Any]:
        return env.get(location, ("init", location))

    for instr in window:
        if instr.is_copy:
            env[loc(instr.dst)] = read(loc(instr.srcs[0]))
        elif instr.op is Op.STM:
            mem[instr.addr.name] = read(loc(instr.srcs[0]))
        elif instr.op is Op.LDM:
            if instr.addr.name not in mem:
                raise DestructValidationError(
                    f"copy window loads {instr.addr.name} before any "
                    "store to it",
                    ctx,
                )
            env[loc(instr.dst)] = mem[instr.addr.name]
        else:
            raise DestructValidationError(
                f"unexpected {instr.op.name} instruction in a copy window",
                ctx,
            )

    for phi in phis:
        arg = phi.args.get(pred_index)
        if arg is None:
            raise DestructValidationError(
                f"phi for {phi.dest} has no argument for B{pred_index}",
                ctx,
            )
        if arg in cert.undef:
            continue  # no copy owed: the destination stays uninitialized
        if read(loc(phi.dest)) != ("init", loc(arg)):
            raise DestructValidationError(
                f"phi destination {phi.dest} does not receive the value "
                f"of its argument {arg} (lost copy)",
                _extend(ctx, dest=str(phi.dest), arg=str(arg)),
            )

    dests = {phi.dest for phi in phis}
    live_through = live.block_live_in.get(succ_index, set()) - dests
    for value in sorted(live_through, key=lambda reg: reg.index):
        if read(loc(value)) != ("init", loc(value)):
            raise DestructValidationError(
                f"copy window clobbered {value}, which is live through "
                "the edge",
                _extend(ctx, value=str(value)),
            )


# ---------------------------------------------------------------------------
# Chordal-coloring validation
# ---------------------------------------------------------------------------


def validate_chordal(cert, virtual_code, context: StageContext) -> None:
    """Re-prove the zero-coloring-time-spill claim from the certificate.

    Rebuilds SSA liveness and interference from ``cert.ssa_code`` and
    ``cert.phis`` with rules written independently of the allocator,
    then checks the elimination order, the clique bound, the coloring,
    and the spill-slot ledger.  Raises :class:`ChordalValidationError`
    on the first violation.
    """
    from ..cfg.graph import CFG
    from ..ssa.liveness import ssa_liveness

    ctx = _extend(context, phase="chordal")
    k = cert.k
    cfg = CFG(cert.ssa_code)
    live = ssa_liveness(cert.ssa_code, cfg, cert.phis)
    if live.maxlive > k:
        raise ChordalValidationError(
            f"MAXLIVE {live.maxlive} exceeds k={k} after the spill phase",
            _extend(ctx, maxlive=live.maxlive),
        )
    if live.maxlive != cert.maxlive:
        raise ChordalValidationError(
            f"certificate claims MAXLIVE {cert.maxlive} but the rebuilt "
            f"liveness finds {live.maxlive}",
            _extend(ctx, maxlive=live.maxlive),
        )

    universe: Set[Reg] = set()
    for instr in cert.ssa_code:
        for reg in instr.regs():
            if reg.is_virtual:
                universe.add(reg)
    for phis in cert.phis.values():
        for phi in phis:
            universe.add(phi.dest)
            universe.update(phi.args.values())

    adjacency = _rebuild_ssa_interference(cert, cfg, live, universe)

    order = cert.order
    if len(order) != len(set(order)):
        raise ChordalValidationError(
            "elimination order contains duplicates", ctx
        )
    if set(order) != universe:
        missing = sorted(universe - set(order), key=lambda r: r.index)
        extra = sorted(set(order) - universe, key=lambda r: r.index)
        raise ChordalValidationError(
            f"elimination order disagrees with the value universe "
            f"(missing {missing}, extra {extra})",
            ctx,
        )

    position = {value: index for index, value in enumerate(order)}
    for index, value in enumerate(order):
        earlier = [u for u in adjacency[value] if position[u] < index]
        if len(earlier) >= k:
            raise ChordalValidationError(
                f"{value} has {len(earlier)} earlier neighbors with k={k} "
                "— a coloring-time spill would have been required",
                _extend(ctx, value=str(value)),
            )
        earlier.sort(key=lambda reg: reg.index)
        for i, a in enumerate(earlier):
            for b in earlier[i + 1 :]:
                if b not in adjacency[a]:
                    raise ChordalValidationError(
                        f"elimination order is not perfect: earlier "
                        f"neighbors {a} and {b} of {value} do not "
                        "interfere",
                        _extend(ctx, value=str(value)),
                    )

    for value in sorted(universe, key=lambda reg: reg.index):
        color = cert.assignment.get(value)
        if color is None:
            raise ChordalValidationError(
                f"{value} is missing from the assignment", ctx
            )
        if not 0 <= color < k:
            raise ChordalValidationError(
                f"{value} assigned color {color} outside [0, {k})", ctx
            )
        for neighbor in adjacency[value]:
            if cert.assignment.get(neighbor) == color:
                raise ChordalValidationError(
                    f"interfering values {value} and {neighbor} share "
                    f"color {color}",
                    _extend(ctx, value=str(value), neighbor=str(neighbor)),
                )

    # Spill-slot ledger: every slot the destructed code touches must be
    # either pre-existing traffic (params, spill-phase stores/loads —
    # all present in the certified post-spill code) or a certified
    # cycle-breaking shuffle slot.  Anything else is a coloring-time or
    # destruction-time spill the phases claim cannot happen.
    certified = {
        instr.addr.name
        for instr in cert.ssa_code
        if instr.addr is not None and instr.addr.space == "spill"
    }
    stray = set(cert.spill_slots) - certified
    if stray:
        raise ChordalValidationError(
            f"certified spill slots never touched by the post-spill "
            f"code: {sorted(stray)}",
            ctx,
        )
    allowed = certified | set(cert.shuffle_slots)
    for index, instr in enumerate(virtual_code):
        if (
            instr.addr is not None
            and instr.addr.space == "spill"
            and instr.addr.name not in allowed
        ):
            raise ChordalValidationError(
                f"spill slot {instr.addr.name} introduced after the "
                "spill phase",
                _extend(ctx, position=index),
            )


def _rebuild_ssa_interference(
    cert, cfg, live, universe: Set[Reg]
) -> Dict[Reg, Set[Reg]]:
    """Independent reconstruction of the SSA interference relation: a
    definition interferes with everything live just after it, a block's
    phi destinations form a clique with the block's live-in values, and
    entry-live (undef) values interfere pairwise."""
    adjacency: Dict[Reg, Set[Reg]] = {value: set() for value in universe}

    def connect(a: Reg, b: Reg) -> None:
        if a != b:
            adjacency[a].add(b)
            adjacency[b].add(a)

    phi_dests: Dict[int, Set[Reg]] = {
        block_index: {phi.dest for phi in phis}
        for block_index, phis in cert.phis.items()
    }
    for block in cfg.blocks:
        current: Set[Reg] = set(live.block_live_out[block.index])
        for index in range(block.end - 1, block.start - 1, -1):
            instr = cert.ssa_code[index]
            defs = [reg for reg in instr.defs if reg.is_virtual]
            for dst in defs:
                for other in current:
                    connect(dst, other)
            current -= set(defs)
            current |= {reg for reg in instr.srcs if reg.is_virtual}
        dests = phi_dests.get(block.index, set())
        top = current | dests
        for dst in dests:
            for other in top:
                connect(dst, other)

    entry_live = sorted(
        live.block_live_in.get(cfg.entry_block().index, set()),
        key=lambda reg: reg.index,
    )
    for i, a in enumerate(entry_live):
        for b in entry_live[i + 1 :]:
            connect(a, b)
    return adjacency
