"""Crash triage: minimize a failing program and bundle a reproduction.

When the differential fuzzer finds a crash or a divergence, the raw
artifact is a few-hundred-line random Mini-C program and a seed — hostile
to debugging.  This module turns it into a self-contained *repro bundle*
under ``artifacts/``:

* ``repro.mc`` — the failing program, delta-minimized (lines removed while
  the same failure signature persists);
* ``original.mc`` — the unminimized program, for paranoia;
* ``bundle.json`` — machine-readable scenario: allocator, k, seed,
  failure kind/stage, expected vs actual output, divergence index;
* ``README.md`` — the one CLI command that replays the failure.

Replaying is ``python -m repro replay artifacts/<bundle>``: it re-runs the
recorded scenario and reports whether the failure still reproduces (exit
0) or has disappeared (exit 1) — the latter is what a fixed bug looks
like.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import nullcontext
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from . import faults
from .errors import MiscompileError, StageError
from .pipeline import PassPipeline, PipelineConfig

#: Default bundle directory, relative to the current working directory.
ARTIFACTS_DIR = "artifacts"

#: Hard cap on predicate evaluations during minimization.
MINIMIZE_BUDGET = 400


# ---------------------------------------------------------------------------
# Failure probing (shared with the fuzz driver)
# ---------------------------------------------------------------------------


@dataclass
class Failure:
    """The observable signature of one failing scenario."""

    kind: str                    # "crash" | "miscompile"
    stage: str
    error: str
    function: Optional[str] = None
    divergence_index: Optional[int] = None
    expected: List = field(default_factory=list)
    actual: List = field(default_factory=list)

    def matches(self, other: "Failure") -> bool:
        """Same failure *signature*: kind and stage (the minimizer must
        not wander off to a different bug while shrinking)."""
        return self.kind == other.kind and self.stage == other.stage

    def signature(self) -> str:
        return failure_signature(self.kind, self.stage, self.function)


def failure_signature(
    kind: str, stage: str, function: Optional[str]
) -> str:
    """Stable dedup key for one *bug*, not one witness.

    A fuzz run that hits the same broken phase from fifty seeds produces
    fifty (seed, program) pairs but one (kind, stage, function) triple;
    hashing that triple collapses them into one bundle with a hit count.
    The generator seed is deliberately excluded — it identifies the
    witness, not the bug.
    """
    text = f"{kind}|{stage}|{function or ''}"
    return hashlib.sha1(text.encode()).hexdigest()[:8]


def probe_failure(
    source: str,
    allocator: str,
    k: int,
    config: Optional[PipelineConfig] = None,
    max_cycles: int = 3_000_000,
    seed: Optional[int] = None,
    inject: Optional[Sequence[faults.FaultSpec]] = None,
) -> Optional[Failure]:
    """Compile, allocate, run, and compare one scenario.

    Returns the :class:`Failure` observed, or ``None`` when the scenario
    is healthy (including when the *reference* run itself cannot complete,
    which makes the program an invalid witness, not a compiler bug).

    ``inject`` arms fault probes for the duration of this one probe, with
    a *fresh* plan per call — so a ``times=1`` spec fires once per
    evaluation, keeping repeated probing (delta minimization, bundle
    replay) deterministic.
    """
    from ..compiler import param_slots
    from ..interp.machine import FunctionImage, ProgramImage

    plan_cm = faults.injected(*inject) if inject else nullcontext()
    pipe = PassPipeline(config, seed=seed)
    try:
        prog = pipe.compile(source)
        reference = pipe.execute(prog.reference_image(), max_cycles=max_cycles)
    except StageError:
        return None

    try:
        with plan_cm:
            module = prog.fresh_module()
            functions = {}
            for name, func in module.functions.items():
                result = pipe.allocate(func, allocator, k)
                functions[name] = FunctionImage(
                    name, result.code, param_slots(func)
                )
            image = ProgramImage(list(module.globals.values()), functions)
            stats = pipe.execute(
                image, max_cycles=max_cycles, allocator=allocator, k=k
            )
            pipe.check_output(
                stats.output, reference.output, allocator=allocator, k=k
            )
    except MiscompileError as err:
        return Failure(
            kind="miscompile",
            stage=err.stage,
            error=str(err),
            divergence_index=err.divergence_index,
            expected=err.expected,
            actual=err.actual,
        )
    except StageError as err:
        return Failure(
            kind="crash",
            stage=err.stage,
            error=str(err),
            function=err.context.function,
        )
    return None


# ---------------------------------------------------------------------------
# Delta minimization
# ---------------------------------------------------------------------------


def minimize_source(
    source: str,
    still_fails: Callable[[str], bool],
    budget: int = MINIMIZE_BUDGET,
) -> str:
    """Line-based delta minimization.

    Repeatedly removes line chunks (halving the chunk size down to single
    lines) while ``still_fails`` keeps returning ``True``.  Candidates
    that fail to compile simply make the predicate return ``False`` and
    are rejected, so brace structure takes care of itself.  Bounded by
    ``budget`` predicate evaluations; minimization is best-effort.
    """
    lines = source.splitlines()
    evaluations = 0

    def check(candidate_lines: List[str]) -> bool:
        nonlocal evaluations
        if evaluations >= budget:
            return False
        evaluations += 1
        try:
            return still_fails("\n".join(candidate_lines))
        except Exception:
            return False

    if not check(lines):
        return source  # the input itself no longer fails: nothing to do

    chunk = max(1, len(lines) // 2)
    while chunk > 0:
        index = 0
        while index < len(lines) and evaluations < budget:
            candidate = lines[:index] + lines[index + chunk:]
            if candidate and check(candidate):
                lines = candidate
            else:
                index += chunk
        chunk //= 2
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Bundles
# ---------------------------------------------------------------------------


@dataclass
class TriageBundle:
    """Everything needed to replay one failure, self-contained.

    ``config`` is the serialized :class:`PipelineConfig` the failure was
    found under and ``injected`` the fault specs that were armed (if any)
    — both are restored on replay, so even a failure manufactured by the
    fault-injection layer reproduces from its bundle alone.
    """

    kind: str
    allocator: str
    k: int
    stage: str
    error: str
    source: str
    minimized: str
    seed: Optional[int] = None
    size: Optional[str] = None
    granularity: str = "statement"
    divergence_index: Optional[int] = None
    expected: List = field(default_factory=list)
    actual: List = field(default_factory=list)
    config: Dict[str, Any] = field(default_factory=dict)
    injected: List[Dict[str, Any]] = field(default_factory=list)
    #: failing function (from the stage context), part of the dedup key.
    function: Optional[str] = None
    #: how many scenarios hit this signature, and the seeds that did —
    #: maintained by :func:`write_bundle`'s merge-on-write.
    hits: int = 1
    seeds: List[int] = field(default_factory=list)

    def signature(self) -> str:
        return failure_signature(self.kind, self.stage, self.function)

    def bundle_id(self) -> str:
        return f"{self.kind}-{self.allocator}-k{self.k}-{self.signature()}"

    def replay_command(self, directory: str) -> str:
        return f"python -m repro replay {directory}"


def make_bundle(
    source: str,
    failure: Failure,
    allocator: str,
    k: int,
    seed: Optional[int] = None,
    size: Optional[str] = None,
    config: Optional[PipelineConfig] = None,
    minimize: bool = True,
    inject: Optional[Sequence[faults.FaultSpec]] = None,
) -> TriageBundle:
    """Build a bundle from a confirmed failure, minimizing the source."""
    inject = list(inject or [])
    minimized = source
    if minimize:
        def still_fails(candidate: str) -> bool:
            observed = probe_failure(
                candidate, allocator, k, config=config, inject=inject
            )
            return observed is not None and observed.matches(failure)

        minimized = minimize_source(source, still_fails)
    return TriageBundle(
        kind=failure.kind,
        allocator=allocator,
        k=k,
        stage=failure.stage,
        error=failure.error,
        source=source,
        minimized=minimized,
        seed=seed,
        size=size,
        granularity=(config or PipelineConfig()).granularity,
        divergence_index=failure.divergence_index,
        expected=failure.expected,
        actual=failure.actual,
        config=asdict(config or PipelineConfig()),
        injected=[asdict(spec) for spec in inject],
        function=failure.function,
        seeds=[] if seed is None else [seed],
    )


def write_bundle(bundle: TriageBundle, out_dir: str = ARTIFACTS_DIR) -> str:
    """Write the bundle directory; returns its path.

    Merge-on-write dedup: when a bundle with the same id (same failure
    signature, allocator, and k) already exists, the existing witness is
    kept — the first minimized repro is as good as the fiftieth — and
    only the hit count and seed list grow.
    """
    directory = os.path.join(out_dir, bundle.bundle_id())
    existing = None
    if os.path.exists(os.path.join(directory, "bundle.json")):
        try:
            existing = load_bundle(directory)
        except Exception:
            existing = None  # corrupt remnant: overwrite it
    if existing is not None and existing.signature() == bundle.signature():
        existing.hits += bundle.hits
        existing.seeds = sorted(set(existing.seeds) | set(bundle.seeds))
        bundle = existing
    os.makedirs(directory, exist_ok=True)

    with open(os.path.join(directory, "repro.mc"), "w") as handle:
        handle.write(bundle.minimized)
    with open(os.path.join(directory, "original.mc"), "w") as handle:
        handle.write(bundle.source)

    meta = asdict(bundle)
    meta.pop("source")
    meta.pop("minimized")
    meta["replay"] = bundle.replay_command(directory)
    with open(os.path.join(directory, "bundle.json"), "w") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
        handle.write("\n")

    readme = [
        f"# Repro bundle: {bundle.bundle_id()}",
        "",
        f"* kind: **{bundle.kind}** at stage `{bundle.stage}`"
        + (f" in `{bundle.function}`" if bundle.function else ""),
        f"* allocator: `{bundle.allocator}`, k={bundle.k}"
        + (f", generator seed {bundle.seed}" if bundle.seed is not None else ""),
        f"* error: {bundle.error}",
        f"* signature: `{bundle.signature()}`, hit {bundle.hits} time(s)"
        + (f" by seeds {bundle.seeds}" if bundle.seeds else ""),
    ]
    if bundle.divergence_index is not None:
        readme.append(
            f"* first output divergence at index {bundle.divergence_index}"
        )
    readme += [
        "",
        "Replay with:",
        "",
        "```",
        bundle.replay_command(directory),
        "```",
        "",
        "`repro.mc` is the delta-minimized witness; `original.mc` is the",
        "program as originally generated.",
        "",
    ]
    with open(os.path.join(directory, "README.md"), "w") as handle:
        handle.write("\n".join(readme))
    return directory


def merge_hit(directory: str, seed: Optional[int] = None) -> None:
    """Record one more hit of an existing bundle's signature without
    re-minimizing (the fuzzer's fast path for duplicate failures)."""
    bundle = load_bundle(directory)
    bundle.hits += 1
    if seed is not None:
        bundle.seeds = sorted(set(bundle.seeds) | {seed})
    # Rewrite metadata only; write_bundle's merge path would double-count.
    meta = asdict(bundle)
    meta.pop("source")
    meta.pop("minimized")
    meta["replay"] = bundle.replay_command(directory)
    with open(os.path.join(directory, "bundle.json"), "w") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_bundle(directory: str) -> TriageBundle:
    with open(os.path.join(directory, "bundle.json")) as handle:
        meta = json.load(handle)
    with open(os.path.join(directory, "repro.mc")) as handle:
        minimized = handle.read()
    original_path = os.path.join(directory, "original.mc")
    source = minimized
    if os.path.exists(original_path):
        with open(original_path) as handle:
            source = handle.read()
    meta.pop("replay", None)
    return TriageBundle(source=source, minimized=minimized, **meta)


@dataclass
class ReplayResult:
    """Outcome of re-running a bundle's scenario."""

    reproduced: bool
    recorded: TriageBundle
    observed: Optional[Failure]

    def describe(self) -> str:
        if self.observed is None:
            return (
                f"{self.recorded.bundle_id()}: does NOT reproduce "
                f"(recorded {self.recorded.kind} at {self.recorded.stage})"
            )
        verdict = "reproduces" if self.reproduced else "fails differently"
        return (
            f"{self.recorded.bundle_id()}: {verdict} — observed "
            f"{self.observed.kind} at {self.observed.stage}: "
            f"{self.observed.error}"
        )


def replay_bundle(
    directory: str, config: Optional[PipelineConfig] = None
) -> ReplayResult:
    """Re-run a bundle's minimized witness under its recorded scenario,
    restoring the recorded pipeline config and any armed fault specs."""
    bundle = load_bundle(directory)
    if config is None:
        if bundle.config:
            config = PipelineConfig(**bundle.config)
        else:
            config = PipelineConfig(granularity=bundle.granularity)
    inject = [faults.FaultSpec(**spec) for spec in bundle.injected]
    observed = probe_failure(
        bundle.minimized, bundle.allocator, bundle.k, config=config,
        inject=inject,
    )
    recorded_signature = Failure(
        kind=bundle.kind, stage=bundle.stage, error=bundle.error
    )
    reproduced = observed is not None and observed.matches(recorded_signature)
    return ReplayResult(reproduced, bundle, observed)
