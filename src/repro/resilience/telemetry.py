"""Per-stage telemetry for the resilient pipeline.

A :class:`MetricsCollector` attached to a
:class:`~repro.resilience.pipeline.PassPipeline` receives, for every
stage execution, the wall time spent inside the stage — and, for the
allocate stage, the allocator's own counters (build/spill rounds,
distinct spilled registers, peephole rewrites) taken from the
:meth:`~repro.regalloc.chaitin.AllocationResult.telemetry` accessor.
The collector aggregates per stage into :class:`StageMetrics` records.

The benchmark harness creates one collector per ``(program, allocator,
k)`` cell and threads the resulting stage map through
:class:`~repro.bench.harness.ProgramRun`, so sweep-level reports (the
``--profile`` flag, the ``--metrics-out`` JSON dump) can aggregate
across cells with :func:`aggregate` — including cells measured in
worker processes, since every record here is a plain picklable
dataclass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

#: Canonical display order; mirrors ``pipeline.STAGES`` (which this module
#: cannot import without a cycle) plus the output-comparison stage.
STAGE_ORDER = (
    "parse",
    "sema",
    "pdg-build",
    "allocate",
    "validate",
    "schedule",
    "decode",
    "pycompile",
    "execute",
    "compare",
)


@dataclass
class StageMetrics:
    """Aggregated counters for one pipeline stage.

    ``rounds``, ``spills``, ``peephole_hits``, and ``analysis_builds``
    are only ever non-zero for the allocate stage; they are carried on
    every record so one shape serves the whole profile table.  The
    ``decode`` stage's wall time is a *subset* of the execute stage's
    (pre-decoding happens inside the machine's first dispatch of each
    function image), broken out so sweeps can see how little of the run
    is spent decoding versus executing.
    """

    stage: str
    wall_time: float = 0.0
    calls: int = 0
    rounds: int = 0
    spills: int = 0
    peephole_hits: int = 0
    analysis_builds: int = 0
    #: schedule-stage quality numbers (zero everywhere else): blocks
    #: scheduled, instructions moved, and the summed static block length
    #: (in-order single-issue completion cycles under the latency model)
    #: before and after list scheduling.  The before/after delta is the
    #: ``table1 --schedule`` footer's payload.
    sched_blocks: int = 0
    sched_moved: int = 0
    sched_length_before: int = 0
    sched_length_after: int = 0
    #: execute-stage tier census (zero everywhere else): how many runs
    #: this record aggregates per effective interpreter tier
    #: (``slow`` / ``fast`` / ``compiled``), e.g. ``{"compiled": 80}``
    #: for a sweep that stayed on the compiled tier throughout.
    tiers: Dict[str, int] = field(default_factory=dict)

    def merge(self, other: "StageMetrics") -> None:
        self.wall_time += other.wall_time
        self.calls += other.calls
        self.rounds += other.rounds
        self.spills += other.spills
        self.peephole_hits += other.peephole_hits
        self.analysis_builds += other.analysis_builds
        self.sched_blocks += other.sched_blocks
        self.sched_moved += other.sched_moved
        self.sched_length_before += other.sched_length_before
        self.sched_length_after += other.sched_length_after
        for tier, count in other.tiers.items():
            self.tiers[tier] = self.tiers.get(tier, 0) + count

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "wall_time_s": round(self.wall_time, 6),
            "calls": self.calls,
            "rounds": self.rounds,
            "spills": self.spills,
            "peephole_hits": self.peephole_hits,
            "analysis_builds": self.analysis_builds,
        }
        if self.sched_blocks:
            out["sched_blocks"] = self.sched_blocks
            out["sched_moved"] = self.sched_moved
            out["sched_length_before"] = self.sched_length_before
            out["sched_length_after"] = self.sched_length_after
        if self.tiers:
            out["tiers"] = dict(sorted(self.tiers.items()))
        return out


class MetricsCollector:
    """Receives stage timings and allocation counters from a pipeline."""

    def __init__(self) -> None:
        self.stages: Dict[str, StageMetrics] = {}

    def stage(self, name: str) -> StageMetrics:
        metrics = self.stages.get(name)
        if metrics is None:
            metrics = self.stages[name] = StageMetrics(name)
        return metrics

    def record_duration(self, stage: str, seconds: float) -> None:
        metrics = self.stage(stage)
        metrics.wall_time += seconds
        metrics.calls += 1

    def record_allocation(self, result) -> None:
        """Fold one ``AllocationResult``'s counters into the allocate
        stage (``result.telemetry()`` — rounds, spills, peephole hits)."""
        metrics = self.stage("allocate")
        counters = result.telemetry()
        metrics.rounds += counters.get("rounds", 0)
        metrics.spills += counters.get("spills", 0)
        metrics.peephole_hits += counters.get("peephole_hits", 0)
        metrics.analysis_builds += counters.get("analysis_builds", 0)

    def record_execute_tier(self, tier: str) -> None:
        """Count one execute-stage run against its effective interpreter
        tier (what :meth:`~repro.interp.machine.Machine.interp_tier`
        resolved to — a run demoted to ``slow`` by a tracer or an armed
        fault plan is counted as ``slow``, not as the requested tier)."""
        metrics = self.stage("execute")
        metrics.tiers[tier] = metrics.tiers.get(tier, 0) + 1

    def record_schedule(self, report) -> None:
        """Fold one function's
        :class:`~repro.sched.list_scheduler.ScheduleReport` into the
        schedule stage's quality counters."""
        metrics = self.stage("schedule")
        metrics.sched_blocks += report.blocks
        metrics.sched_moved += report.moved_instructions
        metrics.sched_length_before += report.length_before
        metrics.sched_length_after += report.length_after

    def merge(self, stages: Mapping[str, StageMetrics]) -> None:
        for name, metrics in stages.items():
            self.stage(name).merge(metrics)

    def ordered(self) -> Iterable[StageMetrics]:
        """Stage records in canonical pipeline order (then alphabetic)."""
        known = [s for s in STAGE_ORDER if s in self.stages]
        extra = sorted(set(self.stages) - set(STAGE_ORDER))
        return [self.stages[name] for name in known + extra]

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        return {m.stage: m.as_dict() for m in self.ordered()}


def aggregate(stage_maps: Iterable[Mapping[str, StageMetrics]]) -> MetricsCollector:
    """Fold many per-run stage maps (e.g. from every ``ProgramRun`` of a
    sweep, serial or parallel) into one collector."""
    total = MetricsCollector()
    for stages in stage_maps:
        total.merge(stages)
    return total


def render_profile(
    collector: MetricsCollector, stream, title: Optional[str] = None
) -> None:
    """The ``--profile`` table: per-stage wall time, calls, rounds,
    spill counts, peephole hits, and analysis rebuilds."""
    if title:
        print(f"\n{title}", file=stream)
    header = (
        f"{'stage':<10} {'wall(s)':>9} {'calls':>7} {'rounds':>7} "
        f"{'spills':>7} {'peephole':>9} {'rebuilds':>9}"
    )
    print(header, file=stream)
    print("-" * len(header), file=stream)
    for m in collector.ordered():
        print(
            f"{m.stage:<10} {m.wall_time:>9.3f} {m.calls:>7} {m.rounds:>7} "
            f"{m.spills:>7} {m.peephole_hits:>9} {m.analysis_builds:>9}",
            file=stream,
        )
