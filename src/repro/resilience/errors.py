"""Structured diagnostics for pipeline failures.

Every failure escaping a :class:`~repro.resilience.pipeline.PassPipeline`
stage is a :class:`StageError` carrying a :class:`StageContext`: which
stage failed, for which function, at which register count, under which
allocator, and — when the input came from the fuzzer — the generator seed
that reproduces it.  The harness uses the context to decide *where* in the
fallback chain to retry, and the triage tool serializes it into repro
bundles, so the same structure serves containment and forensics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class StageContext:
    """Everything needed to reproduce one stage execution.

    All fields are optional: the front-end stages know no allocator, the
    benchmark harness knows no seed.  ``extra`` absorbs ad-hoc facts
    (probe point fired, region name, ...) without schema churn.
    """

    stage: str
    program: Optional[str] = None
    function: Optional[str] = None
    allocator: Optional[str] = None
    k: Optional[int] = None
    seed: Optional[int] = None
    filename: Optional[str] = None
    granularity: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        parts = [f"stage={self.stage}"]
        for label, value in (
            ("program", self.program),
            ("function", self.function),
            ("allocator", self.allocator),
            ("k", self.k),
            ("seed", self.seed),
            ("file", self.filename),
            ("granularity", self.granularity),
        ):
            if value is not None:
                parts.append(f"{label}={value}")
        for key, value in sorted(self.extra.items()):
            parts.append(f"{key}={value}")
        return " ".join(parts)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"stage": self.stage}
        for key in (
            "program",
            "function",
            "allocator",
            "k",
            "seed",
            "filename",
            "granularity",
        ):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.extra:
            out["extra"] = dict(self.extra)
        return out


class StageError(Exception):
    """A pipeline stage failed; carries the stage context and root cause."""

    def __init__(
        self,
        message: str,
        context: StageContext,
        cause: Optional[BaseException] = None,
    ):
        super().__init__(message)
        self.message = message
        self.context = context
        self.cause = cause

    @property
    def stage(self) -> str:
        return self.context.stage

    def render(self) -> str:
        """Multi-line human-readable diagnostic (used by the CLI)."""
        lines = [f"error: {self.message}", f"  where: {self.context.describe()}"]
        if self.cause is not None and str(self.cause) != self.message:
            lines.append(
                f"  cause: {type(self.cause).__name__}: {self.cause}"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return f"[{self.context.stage}] {self.message}"

    def freeze(self) -> Dict[str, Any]:
        """Pickle-safe snapshot for transport across process boundaries.

        The parallel sweep's workers return failures as plain data
        rather than raised exceptions, so an unpicklable ``cause``
        (exceptions pickle by ``args``, which this hierarchy does not
        round-trip) can never poison the pool.  The cause survives as
        its rendered ``Type: message`` text.
        """
        payload: Dict[str, Any] = {
            "kind": _kind_of(self),
            "message": self.message,
            "context": self.context.as_dict(),
            "cause": None
            if self.cause is None
            else f"{type(self.cause).__name__}: {self.cause}",
        }
        if isinstance(self, MiscompileError):
            payload["divergence_index"] = self.divergence_index
            payload["expected"] = list(self.expected)
            payload["actual"] = list(self.actual)
        return payload

    @staticmethod
    def thaw(payload: Dict[str, Any]) -> "StageError":
        """Rebuild a (sub)class instance from :meth:`freeze` output."""
        context = StageContext(**payload["context"])
        cause = (
            None if payload["cause"] is None else RuntimeError(payload["cause"])
        )
        if payload["kind"] == "miscompile":
            error: StageError = MiscompileError(
                payload["message"],
                context,
                payload["divergence_index"],
                payload["expected"],
                payload["actual"],
            )
            error.cause = cause
            return error
        cls = _VALIDATION_KINDS.get(payload["kind"], StageError)
        return cls(payload["message"], context, cause)


class MiscompileError(StageError):
    """Allocated code produced observably different output than the
    reference execution — the one error class that means *wrong code*, not
    a crash.  Carries the first divergence index and both streams so the
    triage tool can bundle them without re-running anything."""

    def __init__(
        self,
        message: str,
        context: StageContext,
        divergence_index: int,
        expected: Sequence[Any],
        actual: Sequence[Any],
    ):
        super().__init__(message, context)
        self.divergence_index = divergence_index
        self.expected = list(expected)
        self.actual = list(actual)

    def render(self) -> str:
        lines = [super().render(), f"  first divergence at output index {self.divergence_index}"]
        lines.append(f"  expected: {_clip(self.expected, self.divergence_index)}")
        lines.append(f"  actual:   {_clip(self.actual, self.divergence_index)}")
        return "\n".join(lines)


class MotionValidationError(StageError):
    """The spill-code motion phase emitted an unsound hoist: a hoisted
    load/store is not anticipated on all the paths it now covers, the
    carried register does not mirror its slot throughout the loop, or a
    required trailing store is missing.  Raised by the independent motion
    validator (:mod:`repro.resilience.validators`), which recomputes
    availability from scratch rather than trusting the phase's own
    analysis; ``context.extra`` pins the loop region and slot."""


class ScheduleValidationError(StageError):
    """The list scheduler emitted an order that is not a topological order
    of the block's dependence DAG (or dropped/duplicated instructions, or
    regressed the schedule length).  Raised by the independent scheduler
    validator, which re-derives the must-precede pairs from the *original*
    order and checks the scheduled order against them; ``context.extra``
    pins the block and the violated pair."""


class PeepholeValidationError(StageError):
    """A Figure-6 peephole rewrite changed the observable semantics of a
    basic block: the symbolic before/after execution disagrees on the
    final register file, the symbolic memory, or the observable event
    trace.  Raised by the independent peephole validator; ``context.extra``
    pins the block window and the first disagreement."""


class SSAValidationError(StageError):
    """SSA construction is structurally or semantically wrong: a value
    with zero or multiple definitions, a phi whose arity disagrees with
    its block's predecessors, a definition that fails to dominate a use,
    or — the semantic recheck — a use renamed to an SSA value whose
    feeding original definitions do not all reach that use (a stale-def
    renaming bug).  Raised by the independent SSA-construction validator,
    which recomputes reaching definitions of each original register on
    the aligned pre-rename snapshot."""


class DestructValidationError(StageError):
    """Out-of-SSA destruction emitted a wrong copy sequence for some CFG
    edge: after symbolically replaying the inserted window at the
    location (color) level, a phi destination does not hold the value its
    incoming argument held on entry (lost copy / swapped cycle), or a
    live-through value was clobbered.  Raised by the independent
    destruction validator; ``context.extra`` pins the edge."""


class ChordalValidationError(StageError):
    """The chordal-coloring claim failed its independent recheck: the
    elimination order is not perfect (some value's earlier neighbors do
    not form a clique), a value saw ``k`` or more earlier neighbors
    (a coloring-time spill would have been needed), two interfering
    values share a color, or spill slots appeared after the spill phase
    ended.  Raised by the chordal validator, which rebuilds SSA liveness
    and interference from the allocator's certificate."""


#: freeze()/thaw() dispatch for the validator error classes.  Miscompiles
#: carry extra payload and keep their special-cased branch above.
_VALIDATION_KINDS: Dict[str, type] = {
    "motion-validation": MotionValidationError,
    "schedule-validation": ScheduleValidationError,
    "peephole-validation": PeepholeValidationError,
    "ssa-validation": SSAValidationError,
    "destruct-validation": DestructValidationError,
    "chordal-validation": ChordalValidationError,
}


def _kind_of(error: "StageError") -> str:
    if isinstance(error, MiscompileError):
        return "miscompile"
    for kind, cls in _VALIDATION_KINDS.items():
        if isinstance(error, cls):
            return kind
    return "stage"


def _clip(stream: List[Any], index: int, width: int = 3) -> str:
    """A window of the output stream around the divergence index."""
    lo = max(0, index - width)
    hi = index + width + 1
    window = stream[lo:hi]
    prefix = "... " if lo > 0 else ""
    suffix = " ..." if hi < len(stream) else ""
    body = ", ".join(repr(v) for v in window)
    if not window:
        body = f"<stream ended at {len(stream)} values>"
    return f"{prefix}[{body}]{suffix} (len={len(stream)})"
