"""The resilient compilation pipeline.

:class:`PassPipeline` executes the compiler as *named stages* —

    parse -> sema -> pdg-build -> allocate -> validate [-> schedule] -> execute

— each wrapped so that any failure surfaces as a structured
:class:`~repro.resilience.errors.StageError` identifying the stage, the
function, the allocator, and the register count, instead of a bare
traceback from somewhere inside the allocator.  The validate stage runs
every structural verifier the repository has (iloc well-formedness,
physical-register bounds, PDG tree shape, spill-slot discipline, and an
independent recheck of the coloring against a rebuilt interference graph,
plus the transformation validators of
:mod:`repro.resilience.validators`, which re-prove RAP's spill-code
motion and Figure-6 peephole sound from scratch), so corruption is caught
*at the stage that produced it*, not three stages later as a wrong
answer.  The optional schedule stage list-schedules the allocated code
and proves the emitted order is a topological order of an independently
re-derived dependence DAG before accepting it.

The harness composes this with the allocator fallback chain
(:mod:`repro.resilience.fallback`); the fuzzer composes it with crash
triage (:mod:`repro.resilience.triage`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence

from ..frontend import analyze, parse
from ..frontend.errors import FrontendError
from ..interp.machine import Machine, ProgramImage
from ..interp.memory import MachineFault
from ..interp.stats import ExecStats
from ..ir.builder import build_module
from ..ir.spillcheck import check_spill_discipline
from ..ir.validate import check_allocated, check_assignment, check_wellformed
from ..pdg.graph import PDGFunction
from ..pdg.validate import check_pdg
from .errors import MiscompileError, StageContext, StageError
from .telemetry import MetricsCollector

#: Stage names, in pipeline order.  The schedule stage is optional
#: (``PipelineConfig.schedule``); when off, it simply never runs.
STAGES = (
    "parse",
    "sema",
    "pdg-build",
    "allocate",
    "validate",
    "schedule",
    "execute",
)


def _allocator_registry() -> Dict[str, Callable[..., Any]]:
    from ..regalloc import (
        allocate_gra,
        allocate_linearscan,
        allocate_rap,
        allocate_spillall,
        allocate_ssaspill,
    )

    return {
        "gra": allocate_gra,
        "rap": allocate_rap,
        "ssaspill": allocate_ssaspill,
        "linearscan": allocate_linearscan,
        "spillall": allocate_spillall,
    }


@dataclass
class PipelineConfig:
    """Knobs of one pipeline instance.

    ``max_cycles`` is the execute-stage cycle budget; ``max_alloc_rounds``
    caps the allocators' build/spill iterations (``None`` keeps each
    allocator's own default).  The ``verify_*`` switches exist so tests
    can prove a given corruption is caught by a given check — production
    callers leave them all on.
    """

    granularity: str = "statement"
    max_cycles: int = 50_000_000
    max_alloc_rounds: Optional[int] = None
    verify: bool = True
    verify_spill_discipline: bool = True
    verify_assignment: bool = True
    #: independent transformation validators (see
    #: :mod:`repro.resilience.validators`): recheck RAP's spill-code
    #: motion and Figure-6 peephole from scratch after every allocation.
    verify_motion: bool = True
    verify_peephole: bool = True
    #: the three SSA validators (construction, destruction, chordal
    #: coloring) run against the ``ssaspill`` allocator's certificate.
    verify_ssa: bool = True
    #: run the list scheduler as its own pipeline stage after validate,
    #: and (when ``verify_schedule``) prove the emitted order is a
    #: topological order of an independently re-derived dependence DAG.
    schedule: bool = False
    verify_schedule: bool = True
    #: ``False`` re-raises front-end errors unwrapped (the legacy
    #: :func:`repro.compiler.compile_source` contract: callers get
    #: :class:`~repro.frontend.errors.FrontendError` with a location).
    wrap_frontend_errors: bool = True


class PassPipeline:
    """Runs compiler stages with verification and structured failure.

    ``defaults`` (program name, seed, ...) are merged into every stage
    context, so a pipeline created for one fuzz seed stamps that seed on
    every error it ever raises.

    ``metrics`` is an optional
    :class:`~repro.resilience.telemetry.MetricsCollector`; when set,
    every stage execution records its wall time into it (successful or
    not), and the allocate stage additionally records the allocator's
    round/spill/peephole counters.  Callers may swap the attribute
    between runs — the benchmark harness attaches a fresh collector per
    sweep cell.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        metrics: Optional[MetricsCollector] = None,
        **defaults: Any,
    ):
        self.config = config or PipelineConfig()
        self.metrics = metrics
        self.defaults = defaults

    # -- context plumbing ---------------------------------------------------

    def context(self, stage: str, **kw: Any) -> StageContext:
        merged: Dict[str, Any] = dict(self.defaults)
        merged.update({k: v for k, v in kw.items() if v is not None})
        extra = merged.pop("extra", {})
        return StageContext(stage=stage, extra=extra, **merged)

    def _run_stage(
        self,
        stage: str,
        thunk: Callable[[], Any],
        **ctx_kw: Any,
    ) -> Any:
        started = time.perf_counter()
        try:
            return thunk()
        except StageError:
            raise
        except FrontendError as err:
            if not self.config.wrap_frontend_errors:
                raise
            raise StageError(str(err), self.context(stage, **ctx_kw), err) from err
        except MachineFault as err:
            raise StageError(str(err), self.context(stage, **ctx_kw), err) from err
        except Exception as err:
            raise StageError(str(err), self.context(stage, **ctx_kw), err) from err
        finally:
            if self.metrics is not None:
                self.metrics.record_duration(
                    stage, time.perf_counter() - started
                )

    # -- front-end stages ---------------------------------------------------

    def compile(self, source: str, filename: str = "<string>"):
        """parse -> sema -> pdg-build; returns a ``CompiledProgram``."""
        from ..compiler import CompiledProgram  # late: avoids import cycle

        program = self._run_stage(
            "parse", lambda: parse(source, filename), filename=filename
        )
        info = self._run_stage(
            "sema", lambda: analyze(program), filename=filename
        )
        module = self._run_stage(
            "pdg-build",
            lambda: build_module(
                program, info, granularity=self.config.granularity
            ),
            filename=filename,
            granularity=self.config.granularity,
        )
        return CompiledProgram(module)

    # -- back-end stages ----------------------------------------------------

    def allocate(
        self,
        func: PDGFunction,
        allocator: str,
        k: int,
        **alloc_kwargs: Any,
    ):
        """allocate -> validate for one function; returns the
        ``AllocationResult`` (``func`` is mutated by RAP, as always).

        ``schedule=True``/``False`` in ``alloc_kwargs`` overrides
        ``config.schedule`` for this call only — the channel the
        benchmark harness uses to schedule the RAP column of a sweep
        without scheduling the GRA baseline (the same pipeline serves
        both columns, and per-allocator kwargs already ride through the
        serial and ``--jobs`` paths identically)."""
        schedule_override = alloc_kwargs.pop("schedule", None)
        do_schedule = (
            self.config.schedule
            if schedule_override is None
            else bool(schedule_override)
        )
        registry = _allocator_registry()
        if allocator not in registry:
            raise ValueError(f"unknown allocator {allocator!r}")
        if self.config.max_alloc_rounds is not None:
            alloc_kwargs.setdefault("max_rounds", self.config.max_alloc_rounds)

        result = self._run_stage(
            "allocate",
            lambda: registry[allocator](func, k, **alloc_kwargs),
            function=func.name,
            allocator=allocator,
            k=k,
        )
        if self.metrics is not None:
            self.metrics.record_allocation(result)
        if self.config.verify:
            self._run_stage(
                "validate",
                lambda: self.validate(func, allocator, k, result),
                function=func.name,
                allocator=allocator,
                k=k,
            )
        if do_schedule:
            self._run_stage(
                "schedule",
                lambda: self._schedule(func, allocator, k, result),
                function=func.name,
                allocator=allocator,
                k=k,
            )
        return result

    def _schedule(self, func: PDGFunction, allocator: str, k: int, result):
        """List-schedule the allocated code, then prove the reordering
        sound against an independently re-derived dependence relation."""
        from ..sched.list_scheduler import schedule_code
        from .validators import validate_schedule

        scheduled, report = schedule_code(result.code, function=func.name)
        if self.config.verify_schedule:
            validate_schedule(
                result.code,
                scheduled,
                self.context(
                    "schedule", function=func.name, allocator=allocator, k=k
                ),
            )
        result.code = scheduled
        if self.metrics is not None:
            self.metrics.record_schedule(report)
        return report

    def validate(self, func: PDGFunction, allocator: str, k: int, result) -> None:
        """Every structural invariant the allocated code must satisfy."""
        check_wellformed(result.code)
        check_allocated(result.code, k)
        if allocator == "rap":
            # RAP rewrites the PDG in place; the tree must survive intact
            # and uniformly physical.
            check_pdg(func, expect_kind="p")
        if allocator != "spillall" and self.config.verify_spill_discipline:
            # The spill-everywhere fallback legitimately mirrors the
            # program's own (possibly path-dependent) def-before-use
            # structure, so the must-store analysis only applies to the
            # real allocators, whose spill loads must be self-initializing.
            from ..compiler import param_slots

            check_spill_discipline(result.code, initialized=param_slots(func))
        if self.config.verify_assignment:
            virtual_code = getattr(result, "virtual_code", None)
            if virtual_code is not None:
                check_assignment(virtual_code, result.assignment)
        if allocator == "rap":
            # Independent transformation validators: recheck the motion
            # and peephole phases from the snapshots RAP captured, rather
            # than trusting their own analyses.
            from .validators import validate_motion, validate_peephole

            context = self.context(
                "validate", function=func.name, allocator=allocator, k=k
            )
            if self.config.verify_motion:
                validate_motion(func, result, context)
            if self.config.verify_peephole:
                pre = getattr(result, "pre_peephole_code", None)
                if pre is not None:
                    validate_peephole(pre, result.code, context)
        if allocator == "ssaspill" and self.config.verify_ssa:
            # The SSA rung's three independent validators: rename recheck
            # against recomputed reaching definitions, symbolic replay of
            # every parallel-copy window, and the chordal
            # zero-coloring-time-spill re-proof.
            cert = getattr(result, "cert", None)
            if cert is not None:
                from .validators import (
                    validate_chordal,
                    validate_destruction,
                    validate_ssa_construction,
                )

                context = self.context(
                    "validate", function=func.name, allocator=allocator, k=k
                )
                validate_ssa_construction(cert, context)
                virtual_code = getattr(result, "virtual_code", None)
                validate_destruction(cert, virtual_code, context)
                validate_chordal(cert, virtual_code, context)

    def execute(
        self,
        image: ProgramImage,
        entry: str = "main",
        args: Sequence = (),
        max_cycles: Optional[int] = None,
        **ctx_kw: Any,
    ) -> ExecStats:
        """Run a program image under the configured cycle budget."""

        def thunk() -> ExecStats:
            machine = Machine(
                image, max_cycles=max_cycles or self.config.max_cycles
            )
            try:
                machine.run(entry, args)
            finally:
                # Pre-decode and Python-translation time are subsets of
                # the execute stage's wall time, surfaced separately so
                # profiles show the split; the tier census records what
                # dispatch actually ran on (a tracer or an armed fault
                # plan demotes a machine to the slow path).
                if self.metrics is not None:
                    if machine.decode_seconds:
                        self.metrics.record_duration(
                            "decode", machine.decode_seconds
                        )
                    if machine.pycompile_seconds:
                        self.metrics.record_duration(
                            "pycompile", machine.pycompile_seconds
                        )
                    self.metrics.record_execute_tier(
                        machine.stats.interp_tier or machine.interp_tier()
                    )
            return machine.stats

        return self._run_stage("execute", thunk, **ctx_kw)

    def check_output(
        self,
        actual: Sequence,
        expected: Sequence,
        **ctx_kw: Any,
    ) -> None:
        """Compare a run's output against the reference; NaN-tolerant.

        Raises :class:`MiscompileError` with the first divergence index —
        never a bare ``AssertionError`` and never a false positive on
        NaN-producing float programs.
        """
        from ..testing.compare import first_divergence, outputs_equal

        started = time.perf_counter()
        try:
            if outputs_equal(actual, expected):
                return
            index = first_divergence(actual, expected)
            context = self.context("compare", **ctx_kw)
            raise MiscompileError(
                f"output diverges from reference at index {index}",
                context,
                index,
                expected,
                actual,
            )
        finally:
            if self.metrics is not None:
                self.metrics.record_duration(
                    "compare", time.perf_counter() - started
                )
