"""The differential fuzz driver (``python -m repro fuzz``).

Runs Mini-C programs through the full resilient pipeline — reference
execution vs every (allocator, k) scenario — and, instead of dying on the
first divergence, triages it: the failing program is delta-minimized and
written to ``artifacts/`` as a repro bundle, then the sweep continues.
The exit status reports whether any scenario failed, which is exactly
what CI wants: a red build *with* the witness attached.

Two refinements over naive seed-sweeping:

* **Corpus replay** — programs persisted under ``tests/corpus/`` (seeds
  known to drive spilling, spill-code motion, and the peephole — see
  :mod:`.corpus`) run *before* the random seed range, so every fuzz run
  starts with known-interesting inputs.  ``update_corpus=True`` makes the
  run persist any new seed that covers a feature the corpus lacks.
* **Signature dedup** — failures are keyed by (kind, stage, function);
  repeat hits of a known signature skip re-minimization and merge into
  the existing bundle's hit count instead of writing fifty copies of the
  same bug.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TextIO

from ..testing.generator import random_source
from . import corpus as corpus_mod
from .faults import FaultSpec
from .pipeline import PipelineConfig
from .triage import Failure, make_bundle, merge_hit, probe_failure, write_bundle

DEFAULT_K_VALUES = (3, 5)
DEFAULT_ALLOCATORS = ("gra", "rap", "ssaspill")


@dataclass
class FuzzFailure:
    """One failing (seed, allocator, k) scenario and its bundle."""

    seed: Optional[int]
    allocator: str
    k: int
    failure: Failure
    bundle_path: Optional[str] = None
    #: a previously-seen signature: merged into an existing bundle
    #: instead of minimized into a fresh one.
    duplicate: bool = False


@dataclass
class FuzzReport:
    """Summary of one fuzz run."""

    seeds: List[int] = field(default_factory=list)
    corpus_entries: int = 0
    scenarios: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def distinct_signatures(self) -> int:
        return len({f.failure.signature() for f in self.failures})


def run_fuzz(
    seeds: int = 25,
    start: int = 0,
    size: str = "small",
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    allocators: Sequence[str] = DEFAULT_ALLOCATORS,
    out_dir: str = "artifacts",
    max_cycles: int = 3_000_000,
    config: Optional[PipelineConfig] = None,
    minimize: bool = True,
    stream: Optional[TextIO] = None,
    inject: Optional[Sequence[FaultSpec]] = None,
    corpus_dir: Optional[str] = corpus_mod.DEFAULT_CORPUS_DIR,
    use_corpus: bool = True,
    update_corpus: bool = False,
) -> FuzzReport:
    """Fuzz the corpus (if any), then ``seeds`` consecutive generator
    seeds starting at ``start``.

    Every failure is triaged into a bundle under ``out_dir``; duplicate
    signatures merge into their existing bundle.  The sweep never aborts.
    ``inject`` arms fault probes for every scenario (fresh plan per
    probe) — the way to exercise the triage machinery on a healthy
    compiler.
    """
    stream = stream or sys.stdout
    report = FuzzReport()
    #: signature -> bundle path, for merge-instead-of-minimize.
    seen: Dict[str, Optional[str]] = {}

    def run_one(source: str, seed: Optional[int], label: str) -> None:
        for allocator in allocators:
            for k in k_values:
                report.scenarios += 1
                failure = probe_failure(
                    source,
                    allocator,
                    k,
                    config=config,
                    max_cycles=max_cycles,
                    seed=seed,
                    inject=inject,
                )
                if failure is None:
                    continue
                signature = failure.signature()
                print(
                    f"FAIL {label} {allocator} k={k}: "
                    f"{failure.kind} at {failure.stage} [{signature}]",
                    file=stream,
                )
                if signature in seen:
                    path = seen[signature]
                    if path is not None:
                        merge_hit(path, seed)
                    print(f"  duplicate of: {path}", file=stream)
                    report.failures.append(
                        FuzzFailure(
                            seed, allocator, k, failure, path, duplicate=True
                        )
                    )
                    continue
                bundle = make_bundle(
                    source,
                    failure,
                    allocator,
                    k,
                    seed=seed,
                    size=size,
                    config=config,
                    minimize=minimize,
                    inject=inject,
                )
                path = write_bundle(bundle, out_dir)
                seen[signature] = path
                print(f"  bundle: {path}", file=stream)
                report.failures.append(
                    FuzzFailure(seed, allocator, k, failure, path)
                )

    corpus = None
    if use_corpus and corpus_dir is not None:
        corpus = corpus_mod.load_corpus(corpus_dir)
        for entry in corpus.entries:
            report.corpus_entries += 1
            with open(entry.path(corpus.directory)) as handle:
                source = handle.read()
            run_one(source, entry.seed, f"corpus:{entry.file}")

    corpus_grew = False
    for seed in range(start, start + seeds):
        report.seeds.append(seed)
        source = random_source(seed, size)
        run_one(source, seed, f"seed={seed}")
        if update_corpus and corpus is not None:
            added = corpus_mod.consider(corpus, seed, size, source, config=config)
            if added is not None:
                corpus_grew = True
                print(
                    f"corpus: persisted seed {seed} "
                    f"(features {', '.join(added.features)})",
                    file=stream,
                )
    if corpus_grew:
        corpus_mod.save_corpus(corpus)

    distinct = report.distinct_signatures()
    verdict = (
        "ok"
        if report.ok
        else f"{len(report.failures)} FAILURES ({distinct} distinct)"
    )
    corpus_part = (
        f"{report.corpus_entries} corpus + " if report.corpus_entries else ""
    )
    print(
        f"fuzz: {corpus_part}{len(report.seeds)} seeds x "
        f"{len(list(allocators))} allocators x "
        f"{len(list(k_values))} k-values = {report.scenarios} scenarios: "
        f"{verdict}",
        file=stream,
    )
    return report
