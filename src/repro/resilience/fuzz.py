"""The differential fuzz driver (``python -m repro fuzz``).

Runs the house generator's random Mini-C programs through the full
resilient pipeline — reference execution vs every (allocator, k) scenario
— and, instead of dying on the first divergence, triages it: the failing
program is delta-minimized and written to ``artifacts/`` as a repro
bundle, then the sweep continues.  The exit status reports whether any
scenario failed, which is exactly what CI wants: a red build *with* the
witness attached.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, TextIO

from ..testing.generator import random_source
from .faults import FaultSpec
from .pipeline import PipelineConfig
from .triage import Failure, make_bundle, probe_failure, write_bundle

DEFAULT_K_VALUES = (3, 5)
DEFAULT_ALLOCATORS = ("gra", "rap")


@dataclass
class FuzzFailure:
    """One failing (seed, allocator, k) scenario and its bundle."""

    seed: int
    allocator: str
    k: int
    failure: Failure
    bundle_path: Optional[str] = None


@dataclass
class FuzzReport:
    """Summary of one fuzz run."""

    seeds: List[int] = field(default_factory=list)
    scenarios: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def run_fuzz(
    seeds: int = 25,
    start: int = 0,
    size: str = "small",
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    allocators: Sequence[str] = DEFAULT_ALLOCATORS,
    out_dir: str = "artifacts",
    max_cycles: int = 3_000_000,
    config: Optional[PipelineConfig] = None,
    minimize: bool = True,
    stream: Optional[TextIO] = None,
    inject: Optional[Sequence[FaultSpec]] = None,
) -> FuzzReport:
    """Fuzz ``seeds`` consecutive generator seeds starting at ``start``.

    Every failure is triaged into a bundle under ``out_dir``.  One bundle
    per distinct (kind, allocator, k, seed); the sweep never aborts.
    ``inject`` arms fault probes for every scenario (fresh plan per
    probe) — the way to exercise the triage machinery on a healthy
    compiler.
    """
    stream = stream or sys.stdout
    report = FuzzReport()
    for seed in range(start, start + seeds):
        report.seeds.append(seed)
        source = random_source(seed, size)
        for allocator in allocators:
            for k in k_values:
                report.scenarios += 1
                failure = probe_failure(
                    source,
                    allocator,
                    k,
                    config=config,
                    max_cycles=max_cycles,
                    seed=seed,
                    inject=inject,
                )
                if failure is None:
                    continue
                print(
                    f"FAIL seed={seed} {allocator} k={k}: "
                    f"{failure.kind} at {failure.stage}",
                    file=stream,
                )
                bundle = make_bundle(
                    source,
                    failure,
                    allocator,
                    k,
                    seed=seed,
                    size=size,
                    config=config,
                    minimize=minimize,
                    inject=inject,
                )
                path = write_bundle(bundle, out_dir)
                print(f"  bundle: {path}", file=stream)
                report.failures.append(
                    FuzzFailure(seed, allocator, k, failure, path)
                )
    verdict = "ok" if report.ok else f"{len(report.failures)} FAILURES"
    print(
        f"fuzz: {len(report.seeds)} seeds x {len(allocators)} allocators x "
        f"{len(list(k_values))} k-values = {report.scenarios} scenarios: "
        f"{verdict}",
        file=stream,
    )
    return report
