"""Command-line driver.

Usage (``python -m repro ...``):

.. code-block:: text

    python -m repro run prog.mc                    # reference execution
    python -m repro run prog.mc --allocator rap -k 5
    python -m repro compare prog.mc -k 3 5 7 9     # GRA vs RAP sweep
    python -m repro emit prog.mc --what iloc       # unallocated listing
    python -m repro emit prog.mc --what pdg        # region tree
    python -m repro emit prog.mc --what dot        # Graphviz of the PDG
    python -m repro emit prog.mc --what alloc --allocator rap -k 4
    python -m repro table1                         # the paper's table

The driver is a thin layer over the library; everything it prints can be
obtained programmatically (see README).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from .compiler import CompiledProgram, compile_source, param_slots
from .interp.machine import FunctionImage, ProgramImage, run_program
from .ir.printer import format_code, format_function
from .pdg.dot import to_dot
from .pdg.linearize import linearize
from .regalloc import allocate_gra, allocate_rap
from .regalloc.coalesce import coalesce_function

ALLOCATORS = {"gra": allocate_gra, "rap": allocate_rap}


def _load(path: str, granularity: str = "statement") -> CompiledProgram:
    with open(path) as handle:
        source = handle.read()
    return compile_source(source, filename=path, granularity=granularity)


def _allocate_image(
    prog: CompiledProgram,
    allocator: str,
    k: int,
    coalesce: bool = False,
) -> ProgramImage:
    module = prog.fresh_module()
    functions: Dict[str, FunctionImage] = {}
    for name, func in module.functions.items():
        if coalesce:
            coalesce_function(func, k)
        result = ALLOCATORS[allocator](func, k)
        functions[name] = FunctionImage(name, result.code, param_slots(func))
    return ProgramImage(list(module.globals.values()), functions)


def _print_stats(label: str, stats) -> None:
    total = stats.total
    print(
        f"{label}: cycles={total.cycles} loads={total.loads} "
        f"stores={total.stores} copies={total.copies}"
    )


def cmd_run(args) -> int:
    prog = _load(args.file, args.granularity)
    if args.allocator == "none":
        image = prog.reference_image()
        label = "reference"
    else:
        image = _allocate_image(prog, args.allocator, args.k, args.coalesce)
        label = f"{args.allocator} k={args.k}"
    stats = run_program(image, entry=args.entry, max_cycles=args.max_cycles)
    for value in stats.output:
        print(value)
    if not args.quiet:
        _print_stats(label, stats)
    return 0


def cmd_compare(args) -> int:
    prog = _load(args.file, args.granularity)
    reference = run_program(
        prog.reference_image(), entry=args.entry, max_cycles=args.max_cycles
    )
    print(f"reference: cycles={reference.total.cycles} output={reference.output}")
    header = f"{'k':>3} | {'GRA':>10} | {'RAP':>10} | {'RAP vs GRA':>10}"
    print(header)
    print("-" * len(header))
    for k in args.k:
        rows = {}
        for name in ("gra", "rap"):
            image = _allocate_image(prog, name, k, args.coalesce)
            stats = run_program(
                image, entry=args.entry, max_cycles=args.max_cycles
            )
            if stats.output != reference.output:
                print(f"!! {name} k={k}: OUTPUT DIVERGES", file=sys.stderr)
                return 1
            rows[name] = stats.total.cycles
        gain = 100.0 * (rows["gra"] - rows["rap"]) / rows["gra"]
        print(f"{k:>3} | {rows['gra']:>10} | {rows['rap']:>10} | {gain:>+9.1f}%")
    return 0


def cmd_emit(args) -> int:
    prog = _load(args.file, args.granularity)
    module = prog.module
    if args.what == "src":
        from .frontend.parser import parse
        from .frontend.pretty import pretty_program

        with open(args.file) as handle:
            print(pretty_program(parse(handle.read())), end="")
    elif args.what == "pdg":
        for func in module.functions.values():
            print(format_function(func))
            print()
    elif args.what == "dot":
        for name, func in module.functions.items():
            if args.function and name != args.function:
                continue
            print(to_dot(func, include_data_deps=args.data_deps))
    elif args.what == "iloc":
        for name, func in module.functions.items():
            print(f"; function {name}")
            print(format_code(linearize(func).instrs))
            print()
    elif args.what == "alloc":
        image = _allocate_image(prog, args.allocator, args.k, args.coalesce)
        for name, func_image in image.functions.items():
            print(f"; function {name}  ({args.allocator}, k={args.k})")
            print(format_code(func_image.code))
            print()
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(args.what)
    return 0


def cmd_table1(args) -> int:
    from .bench.table1 import main as table1_main

    forwarded: List[str] = []
    if args.k:
        forwarded += ["--k", *map(str, args.k)]
    if args.programs:
        forwarded += ["--programs", *args.programs]
    return table1_main(forwarded)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("file", help="Mini-C source file")
    parser.add_argument(
        "--granularity",
        choices=("statement", "merged"),
        default="statement",
        help="region granularity (default: one region per statement)",
    )
    parser.add_argument("--entry", default="main")
    parser.add_argument("--max-cycles", type=int, default=50_000_000)
    parser.add_argument(
        "--coalesce",
        action="store_true",
        help="run conservative coalescing before allocation",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RAP/GRA register allocation over the PDG (PLDI 1994 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="compile, allocate, and execute")
    _add_common(run)
    run.add_argument("--allocator", choices=("none", "gra", "rap"), default="none")
    run.add_argument("-k", type=int, default=8, help="physical register count")
    run.add_argument("--quiet", action="store_true")
    run.set_defaults(func=cmd_run)

    compare = sub.add_parser("compare", help="GRA vs RAP cycle comparison")
    _add_common(compare)
    compare.add_argument("-k", type=int, nargs="+", default=[3, 5, 7, 9])
    compare.set_defaults(func=cmd_compare)

    emit = sub.add_parser("emit", help="print compiler artifacts")
    _add_common(emit)
    emit.add_argument(
        "--what",
        choices=("src", "pdg", "dot", "iloc", "alloc"),
        default="iloc",
    )
    emit.add_argument("--allocator", choices=("gra", "rap"), default="rap")
    emit.add_argument("-k", type=int, default=8)
    emit.add_argument("--function", help="restrict DOT output to one function")
    emit.add_argument("--data-deps", action="store_true")
    emit.set_defaults(func=cmd_emit)

    table1 = sub.add_parser("table1", help="reproduce the paper's Table 1")
    table1.add_argument("--k", type=int, nargs="*")
    table1.add_argument("--programs", nargs="*")
    table1.set_defaults(func=cmd_table1)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. piped into `head`
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
