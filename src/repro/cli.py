"""Command-line driver.

Usage (``python -m repro ...``):

.. code-block:: text

    python -m repro run prog.mc                    # reference execution
    python -m repro run prog.mc --allocator rap -k 5
    python -m repro run prog.mc --allocator rap -k 5 --profile
    python -m repro run prog.mc --allocator gra -k 3 --inject gra.spill.corrupt-slot
    python -m repro compare prog.mc -k 3 5 7 9     # GRA vs RAP sweep
    python -m repro emit prog.mc --what iloc       # unallocated listing
    python -m repro emit prog.mc --what pdg        # region tree
    python -m repro emit prog.mc --what dot        # Graphviz of the PDG
    python -m repro emit prog.mc --what alloc --allocator rap -k 4
    python -m repro run prog.mc --allocator rap -k 5 --schedule
    python -m repro table1                         # the paper's table
    python -m repro table1 --jobs 4 --profile      # parallel, with telemetry
    python -m repro table1 --jobs 4 --metrics-out metrics.json
    python -m repro table1 --inject rap.region.raise   # ladder under fire
    python -m repro fuzz --seeds 25                # corpus + differential fuzzing
    python -m repro fuzz --update-corpus           # grow tests/corpus/
    python -m repro replay artifacts/<bundle>      # re-run a triage bundle
    python -m repro faults                         # list fault probe points
    python -m repro serve --port 9363              # compile-as-a-service daemon
    python -m repro serve --worker-mode process --job-timeout 30  # supervised
    python -m repro request prog.mc --deadline-ms 200 --retries 3
    python -m repro router --backend 127.0.0.1:9363 --backend 127.0.0.1:9364
    python -m repro router-admin drain 127.0.0.1:9363   # rolling-restart step
    python -m repro loadgen --requests 40 --port 9363  # latency/hit-rate report
    python -m repro loadgen --chaos --retries 3    # chaos harness (serve --chaos)
    python -m repro loadgen --saturate --port 9362 --out BENCH_router_baseline.json

The driver is a thin layer over the library; everything it prints can be
obtained programmatically (see README).  Failures surface as structured
diagnostics on stderr — the pipeline stage, function, allocator, and k
that failed — with exit status 1, never a raw traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from .compiler import CompiledProgram, compile_source, param_slots
from .frontend.errors import FrontendError
from .interp.machine import FunctionImage, Machine, ProgramImage, run_program
from .interp.memory import MachineFault
from .ir.printer import format_code, format_function
from .pdg.dot import to_dot
from .pdg.linearize import linearize
from .regalloc.coalesce import coalesce_function
from .resilience import faults
from .resilience.errors import StageError
from .resilience.pipeline import PassPipeline, PipelineConfig
from .resilience.telemetry import MetricsCollector, render_profile

ALLOCATOR_CHOICES = ("gra", "rap", "ssaspill", "linearscan", "spillall")


def _load(
    path: str,
    granularity: str = "statement",
    pipeline: Optional[PassPipeline] = None,
) -> CompiledProgram:
    with open(path) as handle:
        source = handle.read()
    return compile_source(
        source, filename=path, granularity=granularity, pipeline=pipeline
    )


def _allocate_image(
    prog: CompiledProgram,
    allocator: str,
    k: int,
    coalesce: bool = False,
    pipeline: Optional[PassPipeline] = None,
) -> ProgramImage:
    """Allocate every function through the verifying pipeline."""
    pipeline = pipeline or PassPipeline(PipelineConfig())
    module = prog.fresh_module()
    functions: Dict[str, FunctionImage] = {}
    for name, func in module.functions.items():
        if coalesce:
            coalesce_function(func, k)
        result = pipeline.allocate(func, allocator, k)
        functions[name] = FunctionImage(name, result.code, param_slots(func))
    return ProgramImage(list(module.globals.values()), functions)


def _print_stats(label: str, stats) -> None:
    total = stats.total
    print(
        f"{label}: cycles={total.cycles} loads={total.loads} "
        f"stores={total.stores} copies={total.copies}"
    )


def cmd_run(args) -> int:
    import time

    specs = [faults.FaultSpec(point) for point in args.inject or []]
    collector = MetricsCollector() if args.profile else None
    pipeline = None
    if collector is not None or args.schedule:
        # Same error policy as the default path (front-end errors surface
        # unwrapped, machine faults stay machine faults) — the collector
        # and the optional schedule stage are the only differences.
        pipeline = PassPipeline(
            PipelineConfig(
                granularity=args.granularity,
                wrap_frontend_errors=False,
                schedule=args.schedule,
            ),
            metrics=collector,
            filename=args.file,
        )
    # Only arm a plan when probes were requested: an armed plan (even an
    # empty one) sidelines the interpreter's pre-decoded fast path.
    from contextlib import nullcontext

    with faults.injected(*specs) if specs else nullcontext():
        prog = _load(args.file, args.granularity, pipeline=pipeline)
        if args.allocator == "none":
            # The schedule flag must reach the reference path too: the
            # image cache is keyed on it, so a scheduled run can never be
            # served the unscheduled (differently ordered) image.
            image = prog.reference_image(schedule=args.schedule)
            label = "reference (scheduled)" if args.schedule else "reference"
        else:
            image = _allocate_image(
                prog, args.allocator, args.k, args.coalesce, pipeline=pipeline
            )
            label = f"{args.allocator} k={args.k}"
        started = time.perf_counter()
        if collector is not None:
            # Drive the machine directly so pre-decode time (a subset of
            # the execute wall time) lands in its own profile row.
            machine = Machine(image, max_cycles=args.max_cycles)
            machine.run(args.entry)
            stats = machine.stats
            collector.record_duration("execute", time.perf_counter() - started)
            if machine.decode_seconds:
                collector.record_duration("decode", machine.decode_seconds)
            if machine.pycompile_seconds:
                collector.record_duration("pycompile", machine.pycompile_seconds)
            collector.record_execute_tier(
                stats.interp_tier or machine.interp_tier()
            )
        else:
            stats = run_program(
                image, entry=args.entry, max_cycles=args.max_cycles
            )
    for value in stats.output:
        print(value)
    if not args.quiet:
        _print_stats(label, stats)
    if collector is not None:
        render_profile(collector, sys.stdout, title=f"Per-stage telemetry ({label}):")
    return 0


def cmd_compare(args) -> int:
    from .testing.compare import first_divergence, outputs_equal

    prog = _load(args.file, args.granularity)
    reference = run_program(
        prog.reference_image(), entry=args.entry, max_cycles=args.max_cycles
    )
    print(f"reference: cycles={reference.total.cycles} output={reference.output}")
    header = f"{'k':>3} | {'GRA':>10} | {'RAP':>10} | {'RAP vs GRA':>10}"
    print(header)
    print("-" * len(header))
    for k in args.k:
        rows = {}
        for name in ("gra", "rap"):
            image = _allocate_image(prog, name, k, args.coalesce)
            stats = run_program(
                image, entry=args.entry, max_cycles=args.max_cycles
            )
            if not outputs_equal(stats.output, reference.output):
                index = first_divergence(stats.output, reference.output)
                print(
                    f"!! {name} k={k}: output diverges from reference at "
                    f"index {index}",
                    file=sys.stderr,
                )
                return 1
            rows[name] = stats.total.cycles
        gain = 100.0 * (rows["gra"] - rows["rap"]) / rows["gra"]
        print(f"{k:>3} | {rows['gra']:>10} | {rows['rap']:>10} | {gain:>+9.1f}%")
    return 0


def cmd_emit(args) -> int:
    prog = _load(args.file, args.granularity)
    module = prog.module
    if args.what == "src":
        from .frontend.parser import parse
        from .frontend.pretty import pretty_program

        with open(args.file) as handle:
            print(pretty_program(parse(handle.read())), end="")
    elif args.what == "pdg":
        for func in module.functions.values():
            print(format_function(func))
            print()
    elif args.what == "dot":
        for name, func in module.functions.items():
            if args.function and name != args.function:
                continue
            print(to_dot(func, include_data_deps=args.data_deps))
    elif args.what == "iloc":
        for name, func in module.functions.items():
            print(f"; function {name}")
            print(format_code(linearize(func).instrs))
            print()
    elif args.what == "alloc":
        image = _allocate_image(prog, args.allocator, args.k, args.coalesce)
        for name, func_image in image.functions.items():
            print(f"; function {name}  ({args.allocator}, k={args.k})")
            print(format_code(func_image.code))
            print()
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(args.what)
    return 0


def cmd_table1(args) -> int:
    from .bench.table1 import main as table1_main

    forwarded: List[str] = []
    if args.k:
        forwarded += ["--k", *map(str, args.k)]
    if args.programs:
        forwarded += ["--programs", *args.programs]
    if args.jobs is not None:
        forwarded += ["--jobs", str(args.jobs)]
    if args.profile:
        forwarded += ["--profile"]
    if args.metrics_out:
        forwarded += ["--metrics-out", args.metrics_out]
    if args.schedule:
        forwarded += ["--schedule"]
    for point in args.inject or []:
        forwarded += ["--inject", point]
    return table1_main(forwarded)


def cmd_fuzz(args) -> int:
    from .resilience.fuzz import run_fuzz

    report = run_fuzz(
        seeds=args.seeds,
        start=args.start,
        size=args.size,
        k_values=tuple(args.k),
        allocators=tuple(args.allocators),
        out_dir=args.out,
        max_cycles=args.max_cycles,
        minimize=not args.no_minimize,
        corpus_dir=args.corpus,
        use_corpus=not args.no_corpus,
        update_corpus=args.update_corpus,
    )
    return 0 if report.ok else 1


def _service_command(name: str, rest: Sequence[str]) -> int:
    """Dispatch ``serve``/``router``/``request``/``router-admin``/
    ``loadgen`` to the owning module.

    These parsers live next to their implementations
    (:mod:`repro.service`); the driver hands the remaining argv through
    untouched.  Dispatch happens *before* the main argparse pass because
    ``nargs=argparse.REMAINDER`` cannot capture a leading optional like
    ``--port`` (bpo-17050) — the subcommands here start with optionals.
    """
    if name == "serve":
        from .service.server import serve

        return serve(rest)
    if name == "router":
        from .service.router import router_main

        return router_main(rest)
    if name == "request":
        from .service.client import request_main

        return request_main(rest)
    if name == "router-admin":
        from .service.admin import admin_main

        return admin_main(rest)
    from .service.loadgen import loadgen_main

    return loadgen_main(rest)


def cmd_replay(args) -> int:
    from .resilience.triage import replay_bundle

    result = replay_bundle(args.bundle)
    print(result.describe())
    return 0 if result.reproduced else 1


def cmd_faults(args) -> int:
    width = max(len(point) for point in faults.PROBE_POINTS)
    for point in sorted(faults.PROBE_POINTS):
        print(f"{point.ljust(width)}  {faults.PROBE_POINTS[point]}")
    return 0


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("file", help="Mini-C source file")
    parser.add_argument(
        "--granularity",
        choices=("statement", "merged"),
        default="statement",
        help="region granularity (default: one region per statement)",
    )
    parser.add_argument("--entry", default="main")
    parser.add_argument("--max-cycles", type=int, default=50_000_000)
    parser.add_argument(
        "--coalesce",
        action="store_true",
        help="run conservative coalescing before allocation",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RAP/GRA register allocation over the PDG (PLDI 1994 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="compile, allocate, and execute")
    _add_common(run)
    run.add_argument(
        "--allocator", choices=("none",) + ALLOCATOR_CHOICES, default="none"
    )
    run.add_argument("-k", type=int, default=8, help="physical register count")
    run.add_argument("--quiet", action="store_true")
    run.add_argument(
        "--inject",
        action="append",
        metavar="POINT",
        help="arm a fault-injection probe (repeatable; see `repro faults`)",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="print per-stage wall time, allocation rounds, spill counts,"
        " and peephole hits after the run",
    )
    run.add_argument(
        "--schedule",
        action="store_true",
        help="list-schedule the allocated code as its own pipeline stage"
        " (validated against an independently rebuilt dependence DAG)",
    )
    run.set_defaults(func=cmd_run)

    compare = sub.add_parser("compare", help="GRA vs RAP cycle comparison")
    _add_common(compare)
    compare.add_argument("-k", type=int, nargs="+", default=[3, 5, 7, 9])
    compare.set_defaults(func=cmd_compare)

    emit = sub.add_parser("emit", help="print compiler artifacts")
    _add_common(emit)
    emit.add_argument(
        "--what",
        choices=("src", "pdg", "dot", "iloc", "alloc"),
        default="iloc",
    )
    emit.add_argument("--allocator", choices=ALLOCATOR_CHOICES, default="rap")
    emit.add_argument("-k", type=int, default=8)
    emit.add_argument("--function", help="restrict DOT output to one function")
    emit.add_argument("--data-deps", action="store_true")
    emit.set_defaults(func=cmd_emit)

    table1 = sub.add_parser("table1", help="reproduce the paper's Table 1")
    table1.add_argument("--k", type=int, nargs="*")
    table1.add_argument("--programs", nargs="*")
    table1.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="measure sweep cells in N worker processes (default: serial)",
    )
    table1.add_argument(
        "--profile",
        action="store_true",
        help="print aggregated per-stage telemetry after the table",
    )
    table1.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write per-cell stage metrics as JSON",
    )
    table1.add_argument(
        "--inject",
        action="append",
        metavar="POINT",
        help="arm a fault-injection probe for the whole sweep (repeatable);"
        " the fallback ladder keeps the table complete",
    )
    table1.add_argument(
        "--schedule",
        action="store_true",
        help="list-schedule the RAP column and print the schedule-on/off"
        " static-cycle delta footer",
    )
    table1.set_defaults(func=cmd_table1)

    fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing with crash triage"
    )
    fuzz.add_argument("--seeds", type=int, default=25)
    fuzz.add_argument("--start", type=int, default=0)
    fuzz.add_argument("--size", choices=("small", "medium", "large"), default="small")
    fuzz.add_argument("--k", type=int, nargs="+", default=[3, 5])
    fuzz.add_argument(
        "--allocators",
        nargs="+",
        choices=ALLOCATOR_CHOICES,
        default=["gra", "rap", "ssaspill"],
    )
    fuzz.add_argument("--out", default="artifacts")
    fuzz.add_argument("--max-cycles", type=int, default=3_000_000)
    fuzz.add_argument(
        "--no-minimize",
        action="store_true",
        help="skip delta minimization of failing programs",
    )
    fuzz.add_argument(
        "--corpus",
        default="tests/corpus",
        metavar="DIR",
        help="corpus directory replayed ahead of the random seed range"
        " (default: tests/corpus)",
    )
    fuzz.add_argument(
        "--no-corpus",
        action="store_true",
        help="skip the corpus replay phase",
    )
    fuzz.add_argument(
        "--update-corpus",
        action="store_true",
        help="persist any seed that covers a feature the corpus lacks",
    )
    fuzz.set_defaults(func=cmd_fuzz)

    # Help-listing stubs: the service commands are dispatched before the
    # argparse pass (see _service_command) with their own full parsers.
    for name, text in (
        ("serve", "run the compile-as-a-service daemon"),
        ("router", "consistent-hash front end over N serve daemons"),
        ("request", "send one compile request to a daemon"),
        ("router-admin", "mutate a live router's backend ring"),
        ("loadgen", "closed-loop load generator for the daemon"),
    ):
        sub.add_parser(name, help=text, add_help=False)

    replay = sub.add_parser("replay", help="re-run a triage bundle")
    replay.add_argument("bundle", help="bundle directory (see artifacts/)")
    replay.set_defaults(func=cmd_replay)

    flt = sub.add_parser("faults", help="list fault-injection probe points")
    flt.set_defaults(func=cmd_faults)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        if argv and argv[0] in (
            "serve", "router", "request", "router-admin", "loadgen"
        ):
            return _service_command(argv[0], argv[1:])
        args = build_parser().parse_args(argv)
        return args.func(args)
    except BrokenPipeError:  # e.g. piped into `head`
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    except StageError as err:
        print(err.render(), file=sys.stderr)
        return 1
    except FrontendError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    except MachineFault as err:
        print(f"machine fault: {err}", file=sys.stderr)
        return 1
    except (ValueError, OSError) as err:
        # bad user input: unknown probe point, missing source file,
        # a replay directory without a bundle.json, ...
        print(f"error: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
