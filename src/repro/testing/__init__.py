"""Testing utilities: the random Mini-C program generator used by the
property-based differential tests, plus NaN-tolerant output comparison."""

from .compare import first_divergence, outputs_equal, values_equal
from .generator import ProgramGenerator, random_source

__all__ = [
    "ProgramGenerator",
    "random_source",
    "outputs_equal",
    "values_equal",
    "first_divergence",
]
