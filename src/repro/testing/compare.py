"""Output comparison that treats identical NaNs as equal.

Two allocations of the same program perform bit-identical arithmetic, so
their printed outputs must match *as printed values* — including ``inf``
and ``nan``, which Python's ``==`` would otherwise reject (``nan != nan``).
Randomly generated float programs can legitimately overflow, so the
differential tests compare with this helper rather than ``==``.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Union

Number = Union[int, float]


def values_equal(a: Number, b: Number) -> bool:
    """Exact equality, except any-NaN equals any-NaN of the same type."""
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
    if type(a) is not type(b):
        return False
    return a == b


def outputs_equal(a: Sequence[Number], b: Sequence[Number]) -> bool:
    """NaN-tolerant elementwise comparison of two print streams."""
    if len(a) != len(b):
        return False
    return all(values_equal(x, y) for x, y in zip(a, b))


def first_divergence(a: Sequence[Number], b: Sequence[Number]) -> int:
    """Index of the first differing element (-1 if streams agree)."""
    for index, (x, y) in enumerate(zip(a, b)):
        if not values_equal(x, y):
            return index
    if len(a) != len(b):
        return min(len(a), len(b))
    return -1
