"""Random Mini-C program generator for differential allocator testing.

Every generated program is, by construction:

* **terminating** — the only loops are counted ``for`` loops with constant
  bounds whose induction variable is never otherwise assigned, and calls
  form a DAG (a function may only call previously generated functions);
* **fault-free** — array indices are reduced modulo the (constant) array
  extent from non-negative quantities, divisions and moduli are by nonzero
  constants, every scalar is initialized at declaration, and ``&&``/``||``
  operands are comparisons (well-typed ints);
* **observable** — values are funneled through ``print`` so two compiled
  forms of the program can be compared output-for-output.

The property-based tests run the reference execution against GRA- and
RAP-allocated code for several register counts: any divergence is an
allocator bug.  This is the house fuzzer that shook out the hierarchical
spill corner cases.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class _Var:
    name: str
    ty: str           # "int" | "float"
    is_loop_var: bool = False


@dataclass
class _Array:
    name: str
    ty: str
    size: int


@dataclass
class _Func:
    name: str
    ret: str          # "int" | "float" | "void"
    params: List[_Var] = field(default_factory=list)
    array_params: List[_Array] = field(default_factory=list)


class ProgramGenerator:
    """Generates one random program per (seed, size) pair."""

    def __init__(self, seed: int, size: str = "medium"):
        self.rng = random.Random(seed)
        profile = {
            "small": (2, 2, 3, 2),
            "medium": (3, 3, 5, 3),
            "large": (4, 4, 8, 3),
        }[size]
        self.max_funcs, self.max_globals, self.max_stmts, self.max_depth = profile
        self._counter = 0
        self.globals: List[_Var] = []
        self.global_arrays: List[_Array] = []
        self.funcs: List[_Func] = []

    # -- naming --------------------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    # -- program -------------------------------------------------------------

    def generate(self) -> str:
        rng = self.rng
        lines: List[str] = []
        for _ in range(rng.randint(0, self.max_globals)):
            if rng.random() < 0.5:
                var = _Var(self._fresh("g"), rng.choice(["int", "float"]))
                self.globals.append(var)
                init = self._literal(var.ty)
                lines.append(f"{var.ty} {var.name} = {init};")
            else:
                array = _Array(
                    self._fresh("ga"), rng.choice(["int", "float"]),
                    rng.choice([4, 8, 16]),
                )
                self.global_arrays.append(array)
                lines.append(f"{array.ty} {array.name}[{array.size}];")

        for _ in range(rng.randint(0, self.max_funcs - 1)):
            lines.append(self._gen_function())
        lines.append(self._gen_main())
        return "\n".join(lines)

    def _gen_function(self) -> str:
        rng = self.rng
        func = _Func(self._fresh("f"), rng.choice(["int", "float"]))
        params: List[str] = []
        for _ in range(rng.randint(0, 3)):
            var = _Var(self._fresh("p"), rng.choice(["int", "float"]))
            func.params.append(var)
            params.append(f"{var.ty} {var.name}")
        if self.global_arrays and rng.random() < 0.4:
            source = rng.choice(self.global_arrays)
            array = _Array(self._fresh("ap"), source.ty, source.size)
            func.array_params.append(array)
            params.append(f"{array.ty} {array.name}[]")
        body = self._gen_body(
            scope=list(func.params),
            arrays=list(func.array_params),
            depth=0,
            func=func,
        )
        ret_expr = self._expr(func.ret, list(func.params), [], 1)
        body.append(f"return {ret_expr};")
        text = "\n    ".join(body)
        self.funcs.append(func)
        return f"{func.ret} {func.name}({', '.join(params)}) {{\n    {text}\n}}"

    def _gen_main(self) -> str:
        body = self._gen_body(scope=[], arrays=[], depth=0, func=None)
        text = "\n    ".join(body) if body else "print(0);"
        return f"void main() {{\n    {text}\n}}"

    # -- statements --------------------------------------------------------------

    def _gen_body(self, scope, arrays, depth, func) -> List[str]:
        rng = self.rng
        out: List[str] = []
        n = rng.randint(1, self.max_stmts)
        for _ in range(n):
            out.extend(self._gen_stmt(scope, arrays, depth, func))
        if depth == 0:
            # Make results observable.
            for var in scope[-3:]:
                out.append(f"print({var.name});")
            for array in arrays[:1]:
                out.append(f"print({array.name}[{rng.randrange(array.size)}]);")
        return out

    def _gen_stmt(self, scope, arrays, depth, func) -> List[str]:
        rng = self.rng
        choices = ["decl", "assign", "print"]
        if depth < self.max_depth:
            choices += ["if", "for"]
        if arrays or self.global_arrays:
            choices.append("array_store")
        if self.funcs:
            choices.append("call")
        kind = rng.choice(choices)

        if kind == "decl":
            var = _Var(self._fresh("v"), rng.choice(["int", "float"]))
            init = self._expr(var.ty, scope, arrays, depth + 1)
            scope.append(var)
            return [f"{var.ty} {var.name} = {init};"]

        if kind == "assign":
            targets = [v for v in scope + self.globals if not v.is_loop_var]
            if not targets:
                return [f"print({self._expr('int', scope, arrays, depth + 1)});"]
            var = rng.choice(targets)
            return [f"{var.name} = {self._expr(var.ty, scope, arrays, depth + 1)};"]

        if kind == "array_store":
            pool = arrays + self.global_arrays
            array = rng.choice(pool)
            index = self._index(array.size, scope)
            value = self._expr(array.ty, scope, arrays, depth + 1)
            return [f"{array.name}[{index}] = {value};"]

        if kind == "print":
            return [f"print({self._expr(rng.choice(['int', 'float']), scope, arrays, depth + 1)});"]

        if kind == "call":
            callee = rng.choice(self.funcs)
            args = [self._expr(p.ty, scope, arrays, depth + 1) for p in callee.params]
            for array_param in callee.array_params:
                matching = [
                    a
                    for a in self.global_arrays
                    if a.ty == array_param.ty and a.size == array_param.size
                ] or [
                    a for a in self.global_arrays if a.ty == array_param.ty
                ]
                if not matching:
                    return [f"print({self._expr('int', scope, arrays, depth + 1)});"]
                args.append(rng.choice(matching).name)
            call = f"{callee.name}({', '.join(args)})"
            if callee.ret == "void":
                return [f"{call};"]
            return [f"print({call});"]

        if kind == "if":
            cond = self._cond(scope, arrays, depth + 1)
            then_body = self._indent(
                self._gen_stmts_at(scope, arrays, depth + 1, func)
            )
            if rng.random() < 0.5:
                else_body = self._indent(
                    self._gen_stmts_at(scope, arrays, depth + 1, func)
                )
                return [f"if ({cond}) {{", *then_body, "} else {", *else_body, "}"]
            return [f"if ({cond}) {{", *then_body, "}"]

        if kind == "for":
            loop_var = _Var(self._fresh("i"), "int", is_loop_var=True)
            bound = rng.randint(1, 6)
            inner_scope = scope + [loop_var]
            body = self._indent(
                self._gen_stmts_at(inner_scope, arrays, depth + 1, func)
            )
            header = (
                f"for ({loop_var.name} = 0; {loop_var.name} < {bound}; "
                f"{loop_var.name} = {loop_var.name} + 1) {{"
            )
            return [f"int {loop_var.name};", header, *body, "}"]

        raise AssertionError(kind)

    def _gen_stmts_at(self, scope, arrays, depth, func) -> List[str]:
        out: List[str] = []
        local_scope = list(scope)
        for _ in range(self.rng.randint(1, max(2, self.max_stmts // 2))):
            out.extend(self._gen_stmt(local_scope, arrays, depth, func))
        return out

    @staticmethod
    def _indent(lines: List[str]) -> List[str]:
        return ["    " + line for line in lines]

    # -- expressions ------------------------------------------------------------------

    def _literal(self, ty: str) -> str:
        if ty == "int":
            return str(self.rng.randint(-9, 9))
        return f"{self.rng.randint(-9, 9)}.{self.rng.randint(0, 9)}"

    def _index(self, size: int, scope) -> str:
        loop_vars = [v for v in scope if v.is_loop_var]
        if loop_vars and self.rng.random() < 0.7:
            var = self.rng.choice(loop_vars)
            offset = self.rng.randint(0, 3)
            if offset:
                return f"({var.name} + {offset}) % {size}"
            return f"{var.name} % {size}"
        return str(self.rng.randrange(size))

    def _cond(self, scope, arrays, depth) -> str:
        rng = self.rng
        op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
        ty = rng.choice(["int", "float"])
        left = self._expr(ty, scope, arrays, depth + 1)
        right = self._expr(ty, scope, arrays, depth + 1)
        base = f"{left} {op} {right}"
        if depth < self.max_depth and rng.random() < 0.3:
            other = self._cond(scope, arrays, depth + 1)
            joiner = rng.choice(["&&", "||"])
            return f"({base}) {joiner} ({other})"
        return base

    def _expr(self, ty: str, scope, arrays, depth) -> str:
        rng = self.rng
        if depth >= self.max_depth + 2 or rng.random() < 0.3:
            return self._leaf(ty, scope, arrays)
        kind = rng.random()
        if kind < 0.65:
            op = rng.choice(["+", "-", "*"])
            left = self._expr(ty, scope, arrays, depth + 1)
            right = self._expr(ty, scope, arrays, depth + 1)
            return f"({left} {op} {right})"
        if kind < 0.8 and ty == "int":
            # Safe division/modulo by a nonzero constant.
            op = rng.choice(["/", "%"])
            left = self._expr("int", scope, arrays, depth + 1)
            divisor = rng.choice([2, 3, 5, 7])
            return f"({left} {op} {divisor})"
        if kind < 0.9:
            return f"(-{self._expr(ty, scope, arrays, depth + 1)})"
        return self._leaf(ty, scope, arrays)

    def _leaf(self, ty: str, scope, arrays) -> str:
        rng = self.rng
        candidates: List[str] = []
        for var in scope + self.globals:
            if var.ty == ty:
                candidates.append(var.name)
        if ty == "float":
            # int leaves promote; allow them occasionally.
            for var in scope + self.globals:
                if var.ty == "int" and rng.random() < 0.3:
                    candidates.append(var.name)
        for array in arrays + self.global_arrays:
            if array.ty == ty:
                candidates.append(f"{array.name}[{self._index(array.size, scope)}]")
        if candidates and rng.random() < 0.8:
            return rng.choice(candidates)
        return self._literal(ty)


def random_source(seed: int, size: str = "medium") -> str:
    """Generate one deterministic random Mini-C program."""
    return ProgramGenerator(seed, size).generate()
