"""Dependence DAGs over basic blocks, for list scheduling.

Edges (all ``earlier -> later`` in original program order):

* **register flow/anti/output** dependences — note that after register
  allocation these multiply: two independent computations funneled
  through the same physical register become serialized, which is exactly
  the allocation/scheduling tension the paper's research program targets;
* **memory order**: heap ``load``/``store`` are ordered conservatively
  (store-store, store-load, load-store; loads commute), while symbolic
  ``ldm``/``stm`` are ordered only against accesses of the *same* symbol
  (spill slots cannot alias) and calls (which may touch global scalars);
* **observable order**: ``print``, ``param``, ``call``, ``ret``, and
  ``alloca`` keep their relative order (the machine's argument queue and
  output stream are order-sensitive);
* the block terminator (branch) depends on everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..ir.iloc import Instr, Op
from .latency import LatencyModel

#: Instructions whose relative order is observable machine state.
_ORDERED_OPS = (Op.PRINT, Op.PARAM, Op.CALL, Op.RET, Op.ALLOCA)


@dataclass
class DagNode:
    """One instruction in the block DAG."""

    index: int
    instr: Instr
    succs: Dict[int, int] = field(default_factory=dict)  # index -> min latency
    preds: Set[int] = field(default_factory=set)
    priority: int = 0  # critical-path length to the block end


class BlockDag:
    """The dependence DAG of one straight-line instruction sequence."""

    def __init__(self, code: Sequence[Instr], model: LatencyModel):
        self.code = list(code)
        self.model = model
        self.nodes: List[DagNode] = [
            DagNode(i, instr) for i, instr in enumerate(self.code)
        ]
        self._build()
        self._compute_priorities()

    def _edge(self, earlier: int, later: int, latency: int) -> None:
        if earlier == later:
            return
        node = self.nodes[earlier]
        existing = node.succs.get(later)
        if existing is None or existing < latency:
            node.succs[later] = latency
        self.nodes[later].preds.add(earlier)

    def _build(self) -> None:
        code = self.code
        model = self.model
        last_def: Dict = {}
        last_uses: Dict = {}
        last_store: Optional[int] = None
        heap_loads: List[int] = []
        sym_last_write: Dict[str, int] = {}
        sym_reads: Dict[str, List[int]] = {}
        last_ordered: Optional[int] = None
        last_call: Optional[int] = None
        global_accesses: List[int] = []

        for i, instr in enumerate(code):
            # Register dependences.
            for reg in instr.uses:
                if reg in last_def:
                    producer = last_def[reg]
                    self._edge(producer, i, model.of(code[producer]))
            for reg in instr.defs:
                if reg in last_def:
                    self._edge(last_def[reg], i, 1)  # output dep
                for use_site in last_uses.get(reg, ()):
                    self._edge(use_site, i, 1)  # anti dependence
            # Memory order.
            if instr.op is Op.LOAD:
                if last_store is not None:
                    self._edge(last_store, i, model.of(code[last_store]))
                heap_loads.append(i)
            elif instr.op is Op.STORE:
                if last_store is not None:
                    self._edge(last_store, i, 1)
                for load_site in heap_loads:
                    self._edge(load_site, i, 1)
                heap_loads = []
                last_store = i
            elif instr.op in (Op.LDM, Op.STM) and instr.addr is not None:
                name = instr.addr.name
                if instr.op is Op.LDM:
                    if name in sym_last_write:
                        self._edge(sym_last_write[name], i, 1)
                    sym_reads.setdefault(name, []).append(i)
                    if instr.addr.space == "global" and last_call is not None:
                        self._edge(last_call, i, 1)
                else:
                    if name in sym_last_write:
                        self._edge(sym_last_write[name], i, 1)
                    for read_site in sym_reads.get(name, ()):
                        self._edge(read_site, i, 1)
                    sym_reads[name] = []
                    sym_last_write[name] = i
                    if instr.addr.space == "global" and last_call is not None:
                        self._edge(last_call, i, 1)
            # Observable order + calls as memory barriers for globals/heap.
            if instr.op in _ORDERED_OPS:
                if last_ordered is not None:
                    self._edge(last_ordered, i, 1)
                last_ordered = i
            if instr.op is Op.CALL:
                # A callee may read/write the heap and global scalars, so
                # the call is a two-way barrier for both.
                if last_store is not None:
                    self._edge(last_store, i, 1)
                for load_site in heap_loads:
                    self._edge(load_site, i, 1)
                heap_loads = []
                last_store = i
                for site in global_accesses:
                    self._edge(site, i, 1)
                global_accesses = []
                last_call = i
            if (
                instr.op in (Op.LDM, Op.STM)
                and instr.addr is not None
                and instr.addr.space == "global"
            ):
                global_accesses.append(i)

            for reg in instr.uses:
                last_uses.setdefault(reg, []).append(i)
            for reg in instr.defs:
                last_def[reg] = i
                last_uses[reg] = []

        # Terminator (if any) after everything.
        if code and code[-1].is_branch:
            terminator = len(code) - 1
            for i in range(terminator):
                if terminator not in self.nodes[i].succs:
                    self._edge(i, terminator, model.of(code[i]) if code[i].defs else 1)

    def _compute_priorities(self) -> None:
        for node in reversed(self.nodes):
            best = self.model.of(node.instr)
            for succ, latency in node.succs.items():
                best = max(best, latency + self.nodes[succ].priority)
            node.priority = best

    def roots(self) -> List[int]:
        return [node.index for node in self.nodes if not node.preds]
