"""Latency model for the scheduling substrate.

The paper's Table 1 deliberately charges one cycle per instruction ("For
this study, we assume that each instruction takes one cycle to execute"),
so the *allocation* evaluation never needs latencies.  The scheduling
substrate — which exists because the paper's stated motivation is a
register allocator sharing the PDG with an instruction scheduler — needs a
machine where reordering matters, so it models a simple in-order pipeline
with multi-cycle loads, multiplies, and divides (classic early-90s RISC
numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..ir.iloc import Instr, Op

#: Default result latencies (cycles until the destination is usable).
DEFAULT_LATENCIES: Dict[Op, int] = {
    Op.LOAD: 3,
    Op.LDM: 3,
    Op.LOADA: 1,
    Op.MUL: 2,
    Op.DIV: 5,
    Op.MOD: 5,
    Op.CALL: 1,
}


@dataclass(frozen=True)
class LatencyModel:
    """Cycles from issue until an instruction's result is available."""

    latencies: Dict[Op, int] = field(default_factory=lambda: dict(DEFAULT_LATENCIES))
    default: int = 1

    def of(self, instr: Instr) -> int:
        if instr.op is Op.LABEL:
            return 0
        return self.latencies.get(instr.op, self.default)


#: A degenerate model where scheduling is a no-op (every latency 1) —
#: useful to confirm the scheduler never changes single-cycle timing.
UNIT_MODEL = LatencyModel(latencies={}, default=1)
