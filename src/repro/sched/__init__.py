"""Local instruction scheduling substrate.

The paper's stated motivation (§1) is a register allocator that shares the
PDG with an instruction scheduler so the two phases can cooperate.  This
package provides the scheduling half at the local (basic-block) level: a
dependence DAG, a latency model, a critical-path list scheduler, and an
in-order pipeline timing metric — enough to measure how register
allocation (which reuses registers and thereby adds anti/output
dependences) lengthens schedules, the phase-ordering tension the authors'
research program targets.
"""

from .dag import BlockDag
from .latency import DEFAULT_LATENCIES, UNIT_MODEL, LatencyModel
from .list_scheduler import ScheduleReport, schedule_block, schedule_code, simulate_block

__all__ = [
    "BlockDag",
    "LatencyModel",
    "DEFAULT_LATENCIES",
    "UNIT_MODEL",
    "schedule_code",
    "schedule_block",
    "simulate_block",
    "ScheduleReport",
]
