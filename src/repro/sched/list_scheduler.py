"""Forward list scheduling over basic blocks.

A classic critical-path list scheduler for the in-order single-issue
pipeline of :mod:`.pipeline`: ready instructions are issued
highest-priority first (priority = longest latency path to the block end),
breaking ties by original program order to keep the output deterministic
and the diff against the input small.

The scheduler never moves instructions across block boundaries (the
paper's *local* scheduling level; its global region scheduling references
[19, 2] move code between blocks, which is beyond this substrate's
charter) and never reorders observable operations (prints, calls,
argument pushes), so scheduled code is behaviourally identical — a
property the test suite checks by differential execution.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..cfg.graph import CFG
from ..ir.iloc import Instr, Op
from ..resilience import faults
from .dag import BlockDag
from .latency import DEFAULT_LATENCIES, LatencyModel


@dataclass
class ScheduleReport:
    """Static schedule-quality numbers for one function body."""

    blocks: int = 0
    moved_instructions: int = 0
    length_before: int = 0
    length_after: int = 0

    @property
    def improvement(self) -> int:
        return self.length_before - self.length_after


def schedule_block(
    code: Sequence[Instr], model: LatencyModel, function: str = "?"
) -> Tuple[List[Instr], int, int]:
    """Schedule one straight-line block.

    Returns ``(new_order, length_before, length_after)`` where the lengths
    are in-order single-issue completion times under ``model``.
    ``function`` names the enclosing function for fault-injection probes
    and diagnostics.
    """
    body = list(code)
    if len(body) <= 1:
        length = simulate_block(body, model)
        return body, length, length

    dag = BlockDag(body, model)
    indegree = [len(node.preds) for node in dag.nodes]
    earliest = [0] * len(body)
    #: dependence-free instructions, keyed for deterministic best-first pick
    ready: List[Tuple[int, int]] = []
    for node in dag.nodes:
        if indegree[node.index] == 0:
            heapq.heappush(ready, (-node.priority, node.index))

    order: List[Instr] = []
    clock = 0
    while ready:
        # Cycle-aware selection: among dependence-free instructions whose
        # operands are available by `clock`, issue the one with the longest
        # critical path; if none is available yet, a lower-priority ready
        # instruction fills the stall slot — that is the whole point of
        # list scheduling.
        available = [entry for entry in ready if earliest[entry[1]] <= clock]
        if not available:
            clock = min(earliest[index] for _, index in ready)
            continue
        best = min(available)
        ready.remove(best)
        heapq.heapify(ready)
        _, index = best
        order.append(body[index])
        issue = max(clock, earliest[index])
        for succ, latency in sorted(dag.nodes[index].succs.items()):
            earliest[succ] = max(earliest[succ], issue + latency)
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(ready, (-dag.nodes[succ].priority, succ))
        clock = issue + 1

    assert len(order) == len(body), "scheduler dropped instructions"
    before = simulate_block(body, model)
    after = simulate_block(order, model)
    if after > before:
        # The heuristic is not optimal; never accept a regression.
        order, after = list(body), before
    if faults.active() is not None:
        # Injected scheduler bug: emit an order violating one DAG edge.
        faults.maybe_swap_dependent("sched.reorder-dependent", function, order)
    return order, before, after


def simulate_block(
    code: Sequence[Instr], model: LatencyModel, issue_width: int = 1
) -> int:
    """Completion time of a block on an in-order pipeline.

    Each instruction issues at the earliest cycle at which (a) all of its
    register operands are available, (b) a slot is free (at most
    ``issue_width`` instructions issue per cycle), and (c) program order
    is respected (in-order issue).  Its result becomes available
    ``latency`` cycles after issue.  Memory and observable-order
    constraints are respected by construction (the input order already
    satisfies them).
    """
    available = {}
    issued_at: dict = {}
    last_issue = -1
    finish = 0
    for instr in code:
        if instr.op is Op.LABEL:
            continue
        start = max(last_issue, 0)
        if issued_at.get(start, 0) >= issue_width:
            start += 1
        for reg in instr.uses:
            start = max(start, available.get(reg, 0))
        while issued_at.get(start, 0) >= issue_width:
            start += 1
        latency = model.of(instr)
        for reg in instr.defs:
            available[reg] = start + latency
        issued_at[start] = issued_at.get(start, 0) + 1
        last_issue = start
        finish = max(finish, start + latency)
    return max(last_issue + 1, finish)


def schedule_code(
    code: Sequence[Instr], model: LatencyModel = None, function: str = "?"
) -> Tuple[List[Instr], ScheduleReport]:
    """Schedule every basic block of a linear function body."""
    model = model or LatencyModel()
    code = list(code)
    cfg = CFG(code)
    report = ScheduleReport()
    out: List[Instr] = []
    for block in cfg.blocks:
        body = code[block.start:block.end]
        # Keep leading labels pinned.
        head: List[Instr] = []
        while body and body[0].op is Op.LABEL:
            head.append(body.pop(0))
        scheduled, before, after = schedule_block(body, model, function)
        report.blocks += 1
        report.length_before += before
        report.length_after += after
        report.moved_instructions += sum(
            1 for a, b in zip(body, scheduled) if a is not b
        )
        out.extend(head)
        out.extend(scheduled)
    return out, report
