"""Human-readable listings of iloc code and PDG structure.

Used by the examples, by failing-test diagnostics, and by anyone poking at
the compiler interactively.
"""

from __future__ import annotations

from typing import List, Sequence

from ..pdg.graph import PDGFunction
from ..pdg.nodes import Predicate, Region
from .iloc import Instr, Op


def format_code(code: Sequence[Instr]) -> str:
    """Linear code with labels outdented."""
    lines: List[str] = []
    for instr in code:
        if instr.op is Op.LABEL:
            lines.append(f"{instr.label}:")
        else:
            comment = f"    ; {instr.comment}" if instr.comment else ""
            lines.append(f"    {instr}{comment}")
    return "\n".join(lines)


def format_region(region: Region, indent: int = 0) -> str:
    """An indented tree view of a region and its code."""
    pad = "  " * indent
    flavor = " (loop)" if region.is_loop else ""
    note = f"  ; {region.note}" if region.note else ""
    lines = [f"{pad}{region.name}{flavor} [{region.kind}]{note}"]
    for item in region.items:
        if isinstance(item, Instr):
            lines.append(f"{pad}  {item}")
        elif isinstance(item, Predicate):
            lines.append(f"{pad}  if {item.cond}:")
            if item.true_region is not None:
                lines.append(format_region(item.true_region, indent + 2))
            if item.false_region is not None:
                lines.append(f"{pad}  else:")
                lines.append(format_region(item.false_region, indent + 2))
        else:
            lines.append(format_region(item, indent + 1))
    return "\n".join(lines)


def format_function(func: PDGFunction) -> str:
    """The whole function as a region tree."""
    params = ", ".join(f"{p.name}={p.reg}" for p in func.params)
    header = f"function {func.name}({params}) -> {func.ret_type}"
    return header + "\n" + format_region(func.entry, indent=1)
