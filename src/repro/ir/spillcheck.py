"""Dataflow verification of spill-slot discipline.

DESIGN.md invariant: *spill insertion leaves every load preceded (on every
path) by a store of the same spill slot* — otherwise a ``ldm`` could read
an uninitialized slot.  This module checks that with a forward
must-analysis over the CFG: a slot is *definitely initialized* at a point
if every path from entry passes a ``stm`` of it (incoming-argument slots
are initialized by the calling convention).

Both allocators' outputs are checked by the test suite; the benchmark
harness can run it too.  Violations found here were the early smoke
signals for the hierarchical spill patch-up logic.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from ..cfg.graph import CFG
from .iloc import Instr, Op


class SpillSlotError(AssertionError):
    """A ``ldm`` can read a spill slot before any ``stm`` wrote it."""


def spill_slots_used(code: Sequence[Instr]) -> Set[str]:
    """All spill-space slot names referenced by the code."""
    out: Set[str] = set()
    for instr in code:
        if instr.op in (Op.LDM, Op.STM) and instr.addr is not None:
            if instr.addr.space == "spill":
                out.add(instr.addr.name)
    return out


def check_spill_discipline(
    code: Sequence[Instr], initialized: Sequence[str] = ()
) -> None:
    """Raise :class:`SpillSlotError` if some path reaches a spill-slot load
    before any store of that slot.

    ``initialized`` lists slots that are written before entry (the
    incoming-argument slots).  The check is a may-read-uninitialized
    analysis: conservative in the safe direction (a reported violation is
    a genuine path in the CFG, though that path may be infeasible at
    runtime — callers with such patterns can whitelist slots).
    """
    slots = sorted(spill_slots_used(code) - set(initialized))
    if not slots:
        return
    cfg = CFG(code)
    index_of = {name: i for i, name in enumerate(slots)}
    n = len(slots)
    full = (1 << n) - 1

    # Forward must-analysis: bit set = slot definitely stored.
    in_sets: List[int] = [full] * len(cfg.blocks)
    entry = cfg.entry_block().index
    in_sets[entry] = 0

    gen: List[int] = [0] * len(cfg.blocks)
    for block in cfg.blocks:
        bits = 0
        for i in block.instr_indices():
            instr = code[i]
            if (
                instr.op is Op.STM
                and instr.addr is not None
                and instr.addr.name in index_of
            ):
                bits |= 1 << index_of[instr.addr.name]
        gen[block.index] = bits

    changed = True
    order = cfg.reverse_postorder()
    while changed:
        changed = False
        for block in order:
            if block.index == entry:
                acc = 0
            else:
                acc = full
                for pred in block.preds:
                    acc &= in_sets[pred.index] | gen[pred.index]
                if not block.preds:
                    acc = 0  # unreachable: treat as uninitialized
            if acc != in_sets[block.index]:
                in_sets[block.index] = acc
                changed = True

    # Walk each block checking loads against the running must-set.
    for block in cfg.blocks:
        bits = in_sets[block.index]
        for i in block.instr_indices():
            instr = code[i]
            if instr.addr is None or instr.addr.name not in index_of:
                continue
            bit = 1 << index_of[instr.addr.name]
            if instr.op is Op.LDM and not bits & bit:
                raise SpillSlotError(
                    f"load of spill slot {instr.addr.name!r} at linear "
                    f"position {i} may precede every store of it"
                )
            if instr.op is Op.STM:
                bits |= bit
