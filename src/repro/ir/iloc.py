"""The iloc-like low-level intermediate representation.

The paper attaches Rice ``iloc`` statements to PDG region nodes; register
allocation rewrites the virtual-register operands of those statements, and
an iloc interpreter counts executed cycles.  This module defines our
equivalent: a small load/store three-address code.

Design notes
------------

* **Registers** (:class:`Reg`) are either virtual (``%v7``, unbounded) or
  physical (``r3``, indices ``0..k-1``).  The front end generates code that
  references only virtual registers; an allocator must leave only physical
  registers behind.
* **Memory** is split into two disjoint spaces, reflected in the two kinds
  of memory instruction:

  - ``load``/``store`` use a *register-held address* and access the data
    heap (arrays, which can alias through array parameters);
  - ``ldm``/``stm`` use a *symbolic address* (:class:`Symbol`) and access
    either a compiler-private spill slot (``space="spill"``, per activation,
    invisible to callees) or a global scalar (``space="global"``).

  This mirrors the paper's Figure 6, where spill code is ``ldm r2, 20`` /
  ``stm 20, r2`` with direct addresses, and makes the phase-3 peephole's
  "no redefinition in between" reasoning exact rather than alias-guessing.
* **Calls** transfer scalar arguments by value and array arguments by base
  address; each activation has its own register file and spill-slot frame,
  so allocation is strictly per-procedure, exactly as in the paper (which
  measures each routine separately and never discusses calling-convention
  interference).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

Number = Union[int, float]


@dataclass(frozen=True, eq=False)
class Reg:
    """A register operand: ``kind`` is ``"v"`` (virtual) or ``"p"`` (physical).

    The comparison/hash dunders are hand-written rather than
    dataclass-generated: registers are the atoms every allocator set,
    sort, and interference map is made of, and the generated versions
    allocate a field tuple per operation.  Semantics are unchanged
    (ordered by ``(kind, index)``, equal on both fields); only the hash
    *values* differ — a deterministic function of the fields instead of
    tuple-of-str hashing, which no output may depend on anyway since
    string hashing is per-process randomized.
    """

    kind: str
    index: int

    def __post_init__(self) -> None:
        if self.kind not in ("v", "p"):
            raise ValueError(f"bad register kind {self.kind!r}")
        object.__setattr__(
            self, "_hash", (self.index << 1) | (self.kind == "v")
        )

    def __hash__(self) -> int:
        try:
            return self._hash
        except AttributeError:  # unpickled from a pre-cache-field blob
            value = (self.index << 1) | (self.kind == "v")
            object.__setattr__(self, "_hash", value)
            return value

    def __eq__(self, other) -> bool:
        if other.__class__ is Reg:
            return self.index == other.index and self.kind == other.kind
        return NotImplemented

    def __lt__(self, other) -> bool:
        if other.__class__ is Reg:
            if self.kind == other.kind:
                return self.index < other.index
            return self.kind < other.kind
        return NotImplemented

    def __le__(self, other) -> bool:
        if other.__class__ is Reg:
            if self.kind == other.kind:
                return self.index <= other.index
            return self.kind < other.kind
        return NotImplemented

    def __gt__(self, other) -> bool:
        if other.__class__ is Reg:
            if self.kind == other.kind:
                return self.index > other.index
            return self.kind > other.kind
        return NotImplemented

    def __ge__(self, other) -> bool:
        if other.__class__ is Reg:
            if self.kind == other.kind:
                return self.index >= other.index
            return self.kind > other.kind
        return NotImplemented

    def __deepcopy__(self, memo) -> "Reg":
        # Immutable value object: share it, like deepcopy shares strings.
        return self

    @property
    def is_virtual(self) -> bool:
        return self.kind == "v"

    @property
    def is_physical(self) -> bool:
        return self.kind == "p"

    def __str__(self) -> str:
        return f"%v{self.index}" if self.kind == "v" else f"r{self.index}"


def vreg(index: int) -> Reg:
    """Shorthand constructor for a virtual register."""
    return Reg("v", index)


def preg(index: int) -> Reg:
    """Shorthand constructor for a physical register."""
    return Reg("p", index)


@dataclass(frozen=True, order=True)
class Symbol:
    """A symbolic direct address used by ``ldm``/``stm``.

    ``space`` is ``"spill"`` for compiler-generated spill slots (private to
    one activation of one function) or ``"global"`` for global scalar
    variables (shared, clobberable by calls).
    """

    name: str
    space: str = "spill"

    def __post_init__(self) -> None:
        if self.space not in ("spill", "global"):
            raise ValueError(f"bad symbol space {self.space!r}")

    def __deepcopy__(self, memo) -> "Symbol":
        # Immutable value object: share it, like deepcopy shares strings.
        return self

    def __str__(self) -> str:
        return f"[{self.name}]"


class Op(enum.Enum):
    """Every iloc opcode."""

    LOADI = "loadI"    # imm -> dst
    ADD = "add"
    SUB = "sub"
    MUL = "mult"
    DIV = "div"
    MOD = "mod"
    NEG = "neg"
    CMP_LT = "cmp_LT"
    CMP_LE = "cmp_LE"
    CMP_GT = "cmp_GT"
    CMP_GE = "cmp_GE"
    CMP_EQ = "cmp_EQ"
    CMP_NE = "cmp_NE"
    AND = "and"
    OR = "or"
    NOT = "not"
    I2I = "i2i"        # register copy ("copy statement" in the paper)
    LOAD = "load"      # heap load,  srcs=[addr] -> dst
    STORE = "store"    # heap store, srcs=[value, addr]
    LDM = "ldm"        # direct load,  addr=Symbol -> dst
    STM = "stm"        # direct store, addr=Symbol, srcs=[value]
    LOADA = "loada"    # address of global array, addr=Symbol -> dst
    CBR = "cbr"        # srcs=[cond], label_true / label_false
    JMP = "jmp"        # label_true
    PARAM = "param"    # srcs=[value]; queues one outgoing argument
    CALL = "call"      # callee, consumes queued arguments -> dst (optional)
    RET = "ret"        # srcs=[value] (optional)
    ALLOCA = "alloca"  # imm=element count -> dst (base address)
    PRINT = "print"    # srcs=[value]
    NOP = "nop"
    LABEL = "label"    # pseudo-instruction, linear code only


_BINARY_OPS = {
    Op.ADD,
    Op.SUB,
    Op.MUL,
    Op.DIV,
    Op.MOD,
    Op.CMP_LT,
    Op.CMP_LE,
    Op.CMP_GT,
    Op.CMP_GE,
    Op.CMP_EQ,
    Op.CMP_NE,
    Op.AND,
    Op.OR,
}

#: Opcodes that terminate a basic block.
BRANCH_OPS = (Op.CBR, Op.JMP, Op.RET)

#: Opcodes counted as "loads" / "stores" / "copies" in Table 1's decomposition.
LOAD_OPS = (Op.LOAD, Op.LDM)
STORE_OPS = (Op.STORE, Op.STM)
COPY_OPS = (Op.I2I,)


class Instr:
    """One iloc instruction.

    Instances are *mutable* and are shared by identity between the PDG and
    its linearization, so dataflow facts computed on linear code can be
    queried per PDG item.  Registers are rewritten in place by allocators.
    """

    __slots__ = (
        "op",
        "srcs",
        "dst",
        "imm",
        "addr",
        "callee",
        "label",
        "label_false",
        "comment",
    )

    def __init__(
        self,
        op: Op,
        srcs: Optional[List[Reg]] = None,
        dst: Optional[Reg] = None,
        imm: Optional[Number] = None,
        addr: Optional[Symbol] = None,
        callee: Optional[str] = None,
        label: Optional[str] = None,
        label_false: Optional[str] = None,
        comment: str = "",
    ):
        self.op = op
        self.srcs: List[Reg] = list(srcs) if srcs else []
        self.dst = dst
        self.imm = imm
        self.addr = addr
        self.callee = callee
        self.label = label
        self.label_false = label_false
        self.comment = comment

    # -- operand views -------------------------------------------------------

    @property
    def uses(self) -> List[Reg]:
        """Registers read by this instruction."""
        return self.srcs

    @property
    def defs(self) -> List[Reg]:
        """Registers written by this instruction."""
        return [self.dst] if self.dst is not None else []

    def regs(self) -> List[Reg]:
        """All register operands (uses then defs)."""
        return self.srcs + self.defs

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    @property
    def is_copy(self) -> bool:
        return self.op is Op.I2I

    # -- mutation -------------------------------------------------------------

    def rewrite_regs(self, mapping: Dict[Reg, Reg]) -> None:
        """Replace register operands according to ``mapping`` (in place)."""
        self.srcs = [mapping.get(reg, reg) for reg in self.srcs]
        if self.dst is not None:
            self.dst = mapping.get(self.dst, self.dst)

    def clone(self) -> "Instr":
        """A fresh, independent copy of this instruction."""
        return Instr(
            self.op,
            list(self.srcs),
            self.dst,
            self.imm,
            self.addr,
            self.callee,
            self.label,
            self.label_false,
            self.comment,
        )

    def __deepcopy__(self, memo: dict) -> "Instr":
        """Every field is immutable or a shared-by-identity value object
        (:class:`Reg`, :class:`Symbol`, strings, numbers), so a deep copy
        is exactly :meth:`clone` — no per-field recursion needed.
        ``copy.deepcopy`` handles the memo around this hook, preserving
        aliasing between copies of the same instruction."""
        return self.clone()

    # -- display ---------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Instr {self}>"

    def __str__(self) -> str:
        op = self.op
        if op is Op.LABEL:
            return f"{self.label}:"
        if op is Op.LOADI:
            return f"loadI {self.imm!r} => {self.dst}"
        if op in _BINARY_OPS:
            return f"{op.value} {self.srcs[0]}, {self.srcs[1]} => {self.dst}"
        if op in (Op.NEG, Op.NOT):
            return f"{op.value} {self.srcs[0]} => {self.dst}"
        if op is Op.I2I:
            return f"i2i {self.srcs[0]} => {self.dst}"
        if op is Op.LOAD:
            return f"load {self.srcs[0]} => {self.dst}"
        if op is Op.STORE:
            return f"store {self.srcs[0]} => {self.srcs[1]}"
        if op is Op.LDM:
            return f"ldm {self.addr} => {self.dst}"
        if op is Op.STM:
            return f"stm {self.addr}, {self.srcs[0]}"
        if op is Op.LOADA:
            return f"loada {self.addr} => {self.dst}"
        if op is Op.CBR:
            return f"cbr {self.srcs[0]} -> {self.label}, {self.label_false}"
        if op is Op.JMP:
            return f"jmp {self.label}"
        if op is Op.PARAM:
            return f"param {self.srcs[0]}"
        if op is Op.CALL:
            args = ", ".join(str(reg) for reg in self.srcs)
            dest = f" => {self.dst}" if self.dst is not None else ""
            return f"call {self.callee}({args}){dest}"
        if op is Op.RET:
            return f"ret {self.srcs[0]}" if self.srcs else "ret"
        if op is Op.ALLOCA:
            return f"alloca {self.imm} => {self.dst}"
        if op is Op.PRINT:
            return f"print {self.srcs[0]}"
        return op.value


# -- convenience constructors -------------------------------------------------


def loadi(value: Number, dst: Reg) -> Instr:
    return Instr(Op.LOADI, imm=value, dst=dst)


def binary(op: Op, left: Reg, right: Reg, dst: Reg) -> Instr:
    if op not in _BINARY_OPS:
        raise ValueError(f"{op} is not a binary opcode")
    return Instr(op, srcs=[left, right], dst=dst)


def copy(src: Reg, dst: Reg) -> Instr:
    return Instr(Op.I2I, srcs=[src], dst=dst)


def load(addr: Reg, dst: Reg) -> Instr:
    return Instr(Op.LOAD, srcs=[addr], dst=dst)


def store(value: Reg, addr: Reg) -> Instr:
    return Instr(Op.STORE, srcs=[value, addr])


def ldm(addr: Symbol, dst: Reg) -> Instr:
    return Instr(Op.LDM, addr=addr, dst=dst)


def stm(addr: Symbol, value: Reg) -> Instr:
    return Instr(Op.STM, addr=addr, srcs=[value])


def label(name: str) -> Instr:
    return Instr(Op.LABEL, label=name)


def jmp(target: str) -> Instr:
    return Instr(Op.JMP, label=target)


def cbr(cond: Reg, if_true: str, if_false: str) -> Instr:
    return Instr(Op.CBR, srcs=[cond], label=if_true, label_false=if_false)
