"""iloc intermediate representation and the AST -> PDG builder."""

from .iloc import Instr, Op, Reg, Symbol, preg, vreg
from .builder import build_module

__all__ = ["Instr", "Op", "Reg", "Symbol", "preg", "vreg", "build_module"]
