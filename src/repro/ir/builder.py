"""Lowering from the Mini-C AST to a PDG with attached iloc code.

This is the reproduction's equivalent of the paper's front-end pipeline:
``pdgcc`` producing a PDG, followed by RAP "generating and attaching
low-level intermediate code to the corresponding region nodes" (§4).

Lowering rules
--------------

* Scalar locals and parameters live in dedicated virtual registers
  ("definitions and uses in the intermediate code are references to
  virtual registers", §3); expression temporaries get fresh registers.
* Scalar assignments end in an explicit ``i2i`` copy from the expression
  temporary into the variable's register — the "copy statements in the
  unallocated iloc code" whose elimination §4 analyzes.
* Global scalars are memory resident (``ldm``/``stm`` on a global-space
  symbol); arrays live in the data heap and are indexed by explicit
  address arithmetic.
* ``&&``/``||`` evaluate both operands (no short-circuit control flow
  inside expressions), keeping every expression's code straight-line so it
  can attach to a single region node.  Benchmark sources are written
  accordingly.

Region granularity
------------------

``granularity="statement"`` (default) gives every source statement its own
region node, reproducing pdgcc's behaviour that §3.3/§4 discuss at length.
``granularity="merged"`` attaches simple statements directly to the
enclosing region — the larger-region variant the paper's conclusions
propose — and is used by the region-granularity ablation benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..frontend import ast
from ..frontend.errors import SemanticError
from ..frontend.sema import SemaInfo, VarSymbol, analyze, constant_value
from ..pdg.graph import GlobalVar, Module, ParamInfo, PDGFunction
from ..pdg.nodes import Predicate, Region
from . import iloc
from .iloc import Instr, Op, Reg, Symbol

_CMP_OPS = {
    "<": Op.CMP_LT,
    "<=": Op.CMP_LE,
    ">": Op.CMP_GT,
    ">=": Op.CMP_GE,
    "==": Op.CMP_EQ,
    "!=": Op.CMP_NE,
}

_ARITH_OPS = {
    "+": Op.ADD,
    "-": Op.SUB,
    "*": Op.MUL,
    "/": Op.DIV,
    "%": Op.MOD,
    "&&": Op.AND,
    "||": Op.OR,
}

GRANULARITIES = ("statement", "merged")


def arg_slot_name(func_name: str, index: int) -> str:
    """The spill-space slot holding incoming argument ``index``."""
    return f"{func_name}.arg{index}"


def build_module(
    program: ast.Program,
    info: Optional[SemaInfo] = None,
    granularity: str = "statement",
) -> Module:
    """Lower a type-checked program to a :class:`~repro.pdg.graph.Module`."""
    if granularity not in GRANULARITIES:
        raise ValueError(f"granularity must be one of {GRANULARITIES}")
    if info is None:
        info = analyze(program)
    module = Module()
    for decl in program.globals:
        init = constant_value(decl.init) if decl.init is not None else None
        module.add_global(
            GlobalVar(decl.name, decl.base_type, list(decl.dims), init)
        )
    for func in program.functions:
        module.add_function(_FunctionBuilder(module, func, granularity).build())
    return module


class _FunctionBuilder:
    def __init__(self, module: Module, func: ast.FuncDecl, granularity: str):
        self._module = module
        self._ast = func
        self._granularity = granularity
        params = [
            ParamInfo(p.name, iloc.vreg(i), p.base_type, p.is_array)
            for i, p in enumerate(func.params)
        ]
        self._func = PDGFunction(func.name, func.ret_type, params)
        self._func.reserve_vregs(len(params))
        # Home register for each scalar variable / base register for each
        # local array, keyed by the identity of its VarSymbol.
        self._home: Dict[int, Reg] = {}
        # Column extent for 2-D variables, by symbol identity.
        self._ncols: Dict[int, int] = {}
        self._allocas: List[Instr] = []

    def build(self) -> PDGFunction:
        prologue: List[Instr] = []
        for index, (param, info) in enumerate(
            zip(self._ast.params, self._func.params)
        ):
            symbol = param.symbol  # type: ignore[attr-defined]
            self._home[id(symbol)] = info.reg
            if len(param.dims) == 2:
                self._ncols[id(symbol)] = param.dims[1]
            # Incoming arguments arrive in per-activation memory slots (the
            # C convention pdgcc would see); the prologue loads each into
            # its home register, making parameters ordinary allocatable
            # (and spillable) virtual registers.
            prologue.append(
                iloc.ldm(Symbol(arg_slot_name(self._func.name, index)), info.reg)
            )
        entry = self._func.entry
        self._build_stmts(self._ast.body, entry)
        # Hoist local-array allocations to the top of the entry region so a
        # declaration inside a loop does not allocate per iteration; the
        # parameter loads come first.
        for alloca in reversed(self._allocas):
            entry.items.insert(0, alloca)
        entry.items[0:0] = prologue
        return self._func

    def _new_temp(self) -> Reg:
        return self._func.new_vreg()

    # -- statements -----------------------------------------------------------

    def _build_stmts(self, stmts: List[ast.Stmt], region: Region) -> None:
        for stmt in stmts:
            self._build_stmt(stmt, region)

    def _is_simple(self, stmt: ast.Stmt) -> bool:
        return isinstance(
            stmt, (ast.VarDecl, ast.Assign, ast.Return, ast.Print, ast.ExprStmt)
        )

    def _build_stmt(self, stmt: ast.Stmt, parent: Region) -> None:
        if self._is_simple(stmt):
            if self._granularity == "statement":
                region = Region(kind="stmt", note=type(stmt).__name__)
                self._emit_simple(stmt, region.items)
                if region.items:
                    parent.items.append(region)
            else:
                self._emit_simple(stmt, parent.items)
        elif isinstance(stmt, ast.If):
            parent.items.append(self._build_if(stmt))
        elif isinstance(stmt, ast.While):
            parent.items.append(self._build_while(stmt))
        elif isinstance(stmt, ast.For):
            self._build_for(stmt, parent)
        else:  # pragma: no cover - sema rejects everything else
            raise SemanticError(f"cannot lower {type(stmt).__name__}", stmt.location)

    def _build_if(self, stmt: ast.If) -> Region:
        region = Region(kind="stmt", note="if")
        cond = self._eval(stmt.cond, region.items)
        then_region = Region(kind="branch", note="then")
        self._build_stmts(stmt.then_body, then_region)
        else_region: Optional[Region] = None
        if stmt.else_body:
            else_region = Region(kind="branch", note="else")
            self._build_stmts(stmt.else_body, else_region)
        region.items.append(Predicate(cond, then_region, else_region))
        return region

    def _build_while(self, stmt: ast.While) -> Region:
        loop = Region(kind="loop", is_loop=True, note="while")
        cond = self._eval(stmt.cond, loop.items)
        body = Region(kind="body", note="while body")
        self._build_stmts(stmt.body, body)
        loop.items.append(Predicate(cond, body, None))
        return loop

    def _build_for(self, stmt: ast.For, parent: Region) -> None:
        if stmt.init is not None:
            self._build_stmt(stmt.init, parent)
        loop = Region(kind="loop", is_loop=True, note="for")
        if stmt.cond is not None:
            cond = self._eval(stmt.cond, loop.items)
        else:
            cond = self._new_temp()
            loop.items.append(iloc.loadi(1, cond))
        body = Region(kind="body", note="for body")
        self._build_stmts(stmt.body, body)
        if stmt.update is not None:
            self._build_stmt(stmt.update, body)
        loop.items.append(Predicate(cond, body, None))
        parent.items.append(loop)

    def _emit_simple(self, stmt: ast.Stmt, out: List) -> None:
        if isinstance(stmt, ast.VarDecl):
            self._emit_var_decl(stmt, out)
        elif isinstance(stmt, ast.Assign):
            self._emit_assign(stmt, out)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._eval(stmt.value, out)
                out.append(Instr(Op.RET, srcs=[value]))
            else:
                out.append(Instr(Op.RET))
        elif isinstance(stmt, ast.Print):
            value = self._eval(stmt.value, out)
            out.append(Instr(Op.PRINT, srcs=[value]))
        elif isinstance(stmt, ast.ExprStmt):
            self._eval_call(stmt.call, out, want_value=False)
        else:  # pragma: no cover
            raise AssertionError(type(stmt).__name__)

    def _emit_var_decl(self, stmt: ast.VarDecl, out: List) -> None:
        symbol = stmt.symbol  # type: ignore[attr-defined]
        if stmt.is_array:
            base = self._new_temp()
            self._home[id(symbol)] = base
            if len(stmt.dims) == 2:
                self._ncols[id(symbol)] = stmt.dims[1]
            self._allocas.append(Instr(Op.ALLOCA, imm=stmt.size, dst=base))
            return
        home = self._new_temp()
        self._home[id(symbol)] = home
        if stmt.init is not None:
            value = self._eval(stmt.init, out)
            out.append(iloc.copy(value, home))

    def _emit_assign(self, stmt: ast.Assign, out: List) -> None:
        value = self._eval(stmt.value, out)
        target = stmt.target
        if isinstance(target, ast.Name):
            symbol: VarSymbol = target.symbol  # type: ignore[attr-defined]
            if symbol.kind == "global":
                out.append(iloc.stm(Symbol(symbol.name, "global"), value))
            else:
                out.append(iloc.copy(value, self._home[id(symbol)]))
        else:
            assert isinstance(target, ast.Index)
            addr = self._eval_address(target, out)
            out.append(iloc.store(value, addr))

    # -- expressions ------------------------------------------------------------

    def _eval(self, expr: ast.Expr, out: List) -> Reg:
        """Emit code computing ``expr``; return the register holding it."""
        if isinstance(expr, ast.IntLit):
            temp = self._new_temp()
            out.append(iloc.loadi(expr.value, temp))
            return temp
        if isinstance(expr, ast.FloatLit):
            temp = self._new_temp()
            out.append(iloc.loadi(expr.value, temp))
            return temp
        if isinstance(expr, ast.Name):
            symbol: VarSymbol = expr.symbol  # type: ignore[attr-defined]
            if symbol.kind == "global":
                temp = self._new_temp()
                out.append(iloc.ldm(Symbol(symbol.name, "global"), temp))
                return temp
            return self._home[id(symbol)]
        if isinstance(expr, ast.Index):
            addr = self._eval_address(expr, out)
            temp = self._new_temp()
            out.append(iloc.load(addr, temp))
            return temp
        if isinstance(expr, ast.Unary):
            operand = self._eval(expr.operand, out)
            temp = self._new_temp()
            op = Op.NEG if expr.op == "-" else Op.NOT
            out.append(Instr(op, srcs=[operand], dst=temp))
            return temp
        if isinstance(expr, ast.Binary):
            left = self._eval(expr.left, out)
            right = self._eval(expr.right, out)
            temp = self._new_temp()
            op = _CMP_OPS.get(expr.op) or _ARITH_OPS[expr.op]
            out.append(iloc.binary(op, left, right, temp))
            return temp
        if isinstance(expr, ast.Call):
            result = self._eval_call(expr, out, want_value=True)
            assert result is not None
            return result
        raise AssertionError(type(expr).__name__)  # pragma: no cover

    def _eval_call(
        self, call: ast.Call, out: List, want_value: bool
    ) -> Optional[Reg]:
        args: List[Reg] = []
        for arg in call.args:
            symbol = getattr(arg, "symbol", None)
            if isinstance(arg, ast.Name) and symbol is not None and symbol.is_array:
                args.append(self._array_base(symbol, out))
            else:
                args.append(self._eval(arg, out))
        for arg in args:
            out.append(Instr(Op.PARAM, srcs=[arg]))
        dest = self._new_temp() if want_value else None
        out.append(Instr(Op.CALL, dst=dest, callee=call.callee))
        return dest

    def _array_base(self, symbol: VarSymbol, out: List) -> Reg:
        """Register holding the base address of an array variable."""
        if symbol.kind == "global":
            temp = self._new_temp()
            out.append(
                Instr(Op.LOADA, addr=Symbol(symbol.name, "global"), dst=temp)
            )
            return temp
        # Local arrays: the alloca result; array params: the incoming base.
        return self._home[id(symbol)]

    def _eval_address(self, expr: ast.Index, out: List) -> Reg:
        symbol: VarSymbol = expr.symbol  # type: ignore[attr-defined]
        base = self._array_base(symbol, out)
        if len(expr.indices) == 1:
            offset = self._eval(expr.indices[0], out)
        else:
            row = self._eval(expr.indices[0], out)
            col = self._eval(expr.indices[1], out)
            ncols = self._column_extent(symbol)
            ncols_reg = self._new_temp()
            out.append(iloc.loadi(ncols, ncols_reg))
            scaled = self._new_temp()
            out.append(iloc.binary(Op.MUL, row, ncols_reg, scaled))
            offset = self._new_temp()
            out.append(iloc.binary(Op.ADD, scaled, col, offset))
        addr = self._new_temp()
        out.append(iloc.binary(Op.ADD, base, offset, addr))
        return addr

    def _column_extent(self, symbol: VarSymbol) -> int:
        if id(symbol) in self._ncols:
            return self._ncols[id(symbol)]
        if len(symbol.dims) == 2 and symbol.dims[1]:
            return symbol.dims[1]
        raise SemanticError(
            f"unknown column extent for array {symbol.name!r}", None
        )
