"""Structural verification of iloc code.

``check_allocated`` is run by the test suite and the benchmark harness on
every allocator's output: no virtual register may survive allocation and
no physical register index may reach ``k``.  ``check_wellformed`` performs
basic shape checks usable on any code (labels resolvable, operand counts
sane).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

from .iloc import Instr, Op, Reg


class ValidationError(AssertionError):
    """Raised when emitted code violates a structural invariant."""


_EXPECTED_SRCS = {
    Op.LOADI: 0,
    Op.NEG: 1,
    Op.NOT: 1,
    Op.I2I: 1,
    Op.LOAD: 1,
    Op.STORE: 2,
    Op.LDM: 0,
    Op.STM: 1,
    Op.LOADA: 0,
    Op.CBR: 1,
    Op.JMP: 0,
    Op.PARAM: 1,
    Op.ALLOCA: 0,
    Op.PRINT: 1,
    Op.NOP: 0,
    Op.LABEL: 0,
}


def check_wellformed(code: Sequence[Instr]) -> None:
    """Raise :class:`ValidationError` on malformed code."""
    labels: Set[str] = set()
    for instr in code:
        if instr.op is Op.LABEL:
            if instr.label in labels:
                raise ValidationError(f"duplicate label {instr.label}")
            labels.add(instr.label)
    for instr in code:
        expected = _EXPECTED_SRCS.get(instr.op)
        if expected is not None and len(instr.srcs) != expected:
            # RET and CALL have variable arity; binary ops need 2.
            raise ValidationError(f"bad operand count in {instr}")
        if instr.op is Op.JMP and instr.label not in labels:
            raise ValidationError(f"jump to unknown label {instr.label}")
        if instr.op is Op.CBR:
            for target in (instr.label, instr.label_false):
                if target not in labels:
                    raise ValidationError(f"branch to unknown label {target}")
        if instr.op in (Op.LDM, Op.STM, Op.LOADA) and instr.addr is None:
            raise ValidationError(f"missing symbol address in {instr}")


def check_allocated(code: Sequence[Instr], k: int) -> None:
    """Every operand must be a physical register with index below ``k``."""
    for instr in code:
        for reg in instr.regs():
            if reg.is_virtual:
                raise ValidationError(f"virtual register {reg} survives in {instr}")
            if reg.index >= k:
                raise ValidationError(
                    f"register {reg} out of range for k={k} in {instr}"
                )


def check_assignment(virtual_code: Sequence[Instr], assignment) -> None:
    """Independently recheck a coloring against a rebuilt interference graph.

    ``virtual_code`` is the function body *before* physical-register
    rewriting (captured by the allocators as
    ``AllocationResult.virtual_code``) and ``assignment`` maps each virtual
    register to its color.  The interference graph is rebuilt from scratch
    — same liveness, same copy refinement — and every edge must connect
    two differently colored registers.  An allocator that dropped or
    never discovered an interference (the classic silent-miscompile bug
    class) is caught *here*, structurally, instead of as a wrong answer
    three stages later.
    """
    from ..regalloc.chaitin import build_interference  # late: layering

    graph = build_interference(list(virtual_code))
    for node in graph.nodes:
        for neighbor in node.adj:
            for a in node.members:
                color_a = assignment.get(a)
                if color_a is None:
                    continue
                for b in neighbor.members:
                    if a >= b:
                        continue  # each unordered pair once
                    color_b = assignment.get(b)
                    if color_b is not None and color_a == color_b:
                        raise ValidationError(
                            f"interfering registers {a} and {b} share "
                            f"color {color_a}"
                        )


def used_registers(code: Sequence[Instr]) -> Set[Reg]:
    out: Set[Reg] = set()
    for instr in code:
        out.update(instr.regs())
    return out
