"""JSON-able serialization of executable program images.

The compile-as-a-service daemon (:mod:`repro.service`) caches allocated
:class:`~repro.interp.machine.ProgramImage` objects by content hash and
optionally persists them to disk, so a restarted server answers repeat
requests without re-running parse -> sema -> pdg-build -> allocate.  That
needs a faithful, dependency-free wire form for images — this module is
it.

The format is deliberately plain data (dicts, lists, strings, numbers):

* a :class:`~repro.ir.iloc.Instr` becomes a dict holding only its
  non-default fields (``{"op": "add", "srcs": ["v1", "v2"], "dst": "p0"}``);
* registers are their printable names (``%v7`` / ``r3``) reparsed on
  load, symbols are ``"space:name"`` pairs;
* a :class:`~repro.interp.machine.FunctionImage` is its name, code, and
  parameter slots; a :class:`~repro.interp.machine.ProgramImage` adds the
  global-variable layout.

Round-trip fidelity is the contract: ``image_from_payload(
image_to_payload(img))`` must produce byte-identical listings
(:func:`repro.ir.printer.format_code`) and observably identical
execution, which `tests/interp/test_serialize.py` pins for every
bench-suite program and allocator.  Deserialized images rebuild their
label maps and decoded fast-path forms lazily, exactly like freshly
allocated ones.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..ir.iloc import Instr, Op, Reg, Symbol
from ..pdg.graph import GlobalVar
from .machine import FunctionImage, ProgramImage

#: Bumped whenever the wire form changes incompatibly; persisted payloads
#: with a different version are ignored (treated as cache misses).
FORMAT_VERSION = 1

_OPS_BY_VALUE = {op.value: op for op in Op}


# -- registers and symbols ----------------------------------------------------


def reg_to_str(reg: Reg) -> str:
    return str(reg)


def reg_from_str(text: str) -> Reg:
    if text.startswith("%v"):
        return Reg("v", int(text[2:]))
    if text.startswith("r"):
        return Reg("p", int(text[1:]))
    raise ValueError(f"unparsable register {text!r}")


def symbol_to_dict(symbol: Symbol) -> Dict[str, str]:
    return {"name": symbol.name, "space": symbol.space}


def symbol_from_dict(data: Dict[str, str]) -> Symbol:
    return Symbol(data["name"], data["space"])


# -- instructions -------------------------------------------------------------


def instr_to_dict(instr: Instr) -> Dict[str, Any]:
    """One instruction as a minimal dict (defaults omitted)."""
    out: Dict[str, Any] = {"op": instr.op.value}
    if instr.srcs:
        out["srcs"] = [reg_to_str(reg) for reg in instr.srcs]
    if instr.dst is not None:
        out["dst"] = reg_to_str(instr.dst)
    if instr.imm is not None:
        out["imm"] = instr.imm
    if instr.addr is not None:
        out["addr"] = symbol_to_dict(instr.addr)
    if instr.callee is not None:
        out["callee"] = instr.callee
    if instr.label is not None:
        out["label"] = instr.label
    if instr.label_false is not None:
        out["label_false"] = instr.label_false
    if instr.comment:
        out["comment"] = instr.comment
    return out


def instr_from_dict(data: Dict[str, Any]) -> Instr:
    op = _OPS_BY_VALUE.get(data["op"])
    if op is None:
        raise ValueError(f"unknown opcode {data['op']!r}")
    return Instr(
        op,
        srcs=[reg_from_str(text) for text in data.get("srcs", [])],
        dst=reg_from_str(data["dst"]) if "dst" in data else None,
        imm=data.get("imm"),
        addr=symbol_from_dict(data["addr"]) if "addr" in data else None,
        callee=data.get("callee"),
        label=data.get("label"),
        label_false=data.get("label_false"),
        comment=data.get("comment", ""),
    )


# -- images -------------------------------------------------------------------


def global_to_dict(var: GlobalVar) -> Dict[str, Any]:
    out: Dict[str, Any] = {"name": var.name, "base_type": var.base_type}
    if var.dims:
        out["dims"] = list(var.dims)
    if var.init is not None:
        out["init"] = var.init
    return out


def global_from_dict(data: Dict[str, Any]) -> GlobalVar:
    return GlobalVar(
        data["name"],
        data["base_type"],
        dims=list(data.get("dims", [])),
        init=data.get("init"),
    )


def function_to_dict(image: FunctionImage) -> Dict[str, Any]:
    return {
        "name": image.name,
        "param_slots": list(image.param_slots),
        "code": [instr_to_dict(instr) for instr in image.code],
    }


def function_from_dict(data: Dict[str, Any]) -> FunctionImage:
    return FunctionImage(
        data["name"],
        [instr_from_dict(item) for item in data["code"]],
        list(data["param_slots"]),
    )


def image_to_payload(image: ProgramImage) -> Dict[str, Any]:
    """A whole linked program as one JSON-able dict."""
    return {
        "version": FORMAT_VERSION,
        "globals": [global_to_dict(var) for var in image.globals],
        "functions": [
            function_to_dict(image.functions[name])
            for name in sorted(image.functions)
        ],
    }


def image_from_payload(payload: Dict[str, Any]) -> ProgramImage:
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"image payload version {payload.get('version')!r} "
            f"!= {FORMAT_VERSION}"
        )
    functions = {
        data["name"]: function_from_dict(data)
        for data in payload["functions"]
    }
    return ProgramImage(
        [global_from_dict(data) for data in payload["globals"]], functions
    )


def dumps_image(image: ProgramImage) -> bytes:
    """Canonical byte form (sorted keys, no whitespace churn): equal
    images serialize to equal bytes, so cached-vs-fresh byte diffs and
    cache size accounting are exact."""
    return json.dumps(
        image_to_payload(image), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def loads_image(blob: bytes) -> Optional[ProgramImage]:
    """Parse :func:`dumps_image` output; None on version mismatch (a
    persisted cache written by an older format is simply cold)."""
    payload = json.loads(blob.decode("utf-8"))
    if payload.get("version") != FORMAT_VERSION:
        return None
    return image_from_payload(payload)
