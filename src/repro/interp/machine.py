"""The iloc interpreter.

"An iloc interpreter is used to count the number of cycles required to
execute the code.  For this study, we assume that each instruction takes
one cycle to execute." (§4)

This machine executes linear iloc (allocated or not — it is agnostic to
whether operands are virtual or physical registers, which is what lets the
test suite compare allocated runs against the infinite-register reference
run).  Every activation gets a fresh register file and spill-slot frame,
so register allocation is strictly per-procedure.

Counted events: every non-label instruction is one cycle; ``load``/``ldm``
increment the load counter, ``store``/``stm`` the store counter, and
``i2i`` the copy counter — globally and attributed to the routine whose
body is executing (the paper's Table 1 reports routines individually).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..ir.iloc import Instr, Op, Reg
from ..pdg.graph import GlobalVar
from .memory import MachineFault, Memory
from .stats import Counters, ExecStats

Number = Union[int, float]

#: The three interpreter tiers, slowest first.  ``REPRO_INTERP`` selects
#: one globally (read at machine construction, so tests can monkeypatch
#: it): ``slow`` forces the original instruction-by-instruction dispatch
#: everywhere (used to prove tier equivalence end to end), ``fast`` the
#: pre-decoded handler table, and ``compiled`` — the default — the
#: pycompile tier (decoded images translated to specialized Python).
INTERP_TIERS = ("slow", "fast", "compiled")
DEFAULT_TIER = "compiled"


def _env_tier() -> Optional[str]:
    value = os.environ.get("REPRO_INTERP", "").strip().lower()
    return value if value in INTERP_TIERS else None


class _Bailout(Exception):
    """Private transport for a fault raised after a compiled-tier bail.

    When compiled code bails to the decoded fast path (cycle budget about
    to trip), the fast path flushes counters and annotates the fault
    itself; the generated fault handlers of every compiled frame still on
    the stack must *not* flush again.  Wrapping the fault in an exception
    type they do not catch makes the pass-through structural;
    :meth:`Machine._execute` unwraps it at the activation boundary.
    """

    def __init__(self, fault: MachineFault):
        super().__init__(fault.message)
        self.fault = fault

_faults_module = None


def _faults_active():
    """Late-bound ``repro.resilience.faults.active()``.

    The resilience package imports this module (via the pipeline), so the
    dependency must be resolved lazily to avoid an import cycle.
    """
    global _faults_module
    if _faults_module is None:
        from ..resilience import faults

        _faults_module = faults
    return _faults_module.active()


@dataclass
class FunctionImage:
    """Executable form of one function.

    ``param_slots`` are the spill-space slot names into which the machine
    writes incoming arguments (the function's prologue loads them from
    there — the "arguments arrive in memory" C convention).
    """

    name: str
    code: Sequence[Instr]
    param_slots: List[str]
    labels: Dict[str, int] = field(default_factory=dict)
    #: lazily decoded fast-path form (None = not decoded yet, False =
    #: decode failed and the slow path is authoritative for this image).
    _decoded: object = field(default=None, init=False, repr=False, compare=False)
    #: lazily compiled pycompile-tier artifact, cached alongside the
    #: decode cache with the same tri-state convention (None / False /
    #: :class:`~repro.interp.pycompile.PyCompiledFunction`).
    _compiled: object = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.labels:
            for index, instr in enumerate(self.code):
                if instr.op is Op.LABEL:
                    self.labels[instr.label] = index

    def decoded_or_none(self):
        """The cached :class:`~repro.interp.decode.DecodedFunction`.

        Decoding happens once per image and is shared by every machine
        (the code is frozen once an image exists).  Returns None when the
        image cannot be decoded — the slow path then reproduces whatever
        behaviour (including crashes) the original code has, at original
        timing.
        """
        if self._decoded is None:
            try:
                from .decode import decode_image

                self._decoded = decode_image(self)
            except Exception:
                self._decoded = False
        return self._decoded or None

    def compiled_or_none(self):
        """The cached :class:`~repro.interp.pycompile.PyCompiledFunction`.

        Like :meth:`decoded_or_none`, translation happens once per image
        and the artifact is shared by every machine.  Returns None when
        the image cannot be compiled — the decoded fast path (or the
        slow path) is then authoritative for this image.
        """
        if self._compiled is None:
            decoded = self.decoded_or_none()
            if decoded is None:
                self._compiled = False
            else:
                try:
                    from .pycompile import compile_decoded

                    self._compiled = compile_decoded(self, decoded)
                except Exception:
                    self._compiled = False
        return self._compiled or None


@dataclass
class ProgramImage:
    """A linked program: global layout plus one image per function."""

    globals: List[GlobalVar]
    functions: Dict[str, FunctionImage]

    def image(self, name: str) -> FunctionImage:
        if name not in self.functions:
            raise MachineFault(f"call to unknown function {name!r}")
        return self.functions[name]


class _Frame:
    __slots__ = ("regs", "slots", "stack_mark", "counts")

    def __init__(self, stack_mark: int):
        #: keyed by Reg on the slow path, by dense int on the fast path.
        self.regs: Dict[object, Number] = {}
        self.slots: Dict[str, Number] = {}
        self.stack_mark = stack_mark
        #: fast-path pending [loads, stores, copies], flushed into the
        #: Counters at frame exit, call boundaries, and faults.
        self.counts = [0, 0, 0]


class Tracer:
    """Records executed instructions (a debugging aid for allocator work).

    Pass one to :class:`Machine`; every executed instruction (labels
    excluded) is appended as ``(function, pc, text)``, up to ``limit``
    entries (older entries are dropped, keeping the tail — usually the
    interesting part when chasing a divergence).
    """

    def __init__(self, limit: int = 10_000):
        self.limit = limit
        self.events: List[Tuple[str, int, str]] = []

    def record(self, func_name: str, pc: int, instr: "Instr") -> None:
        self.events.append((func_name, pc, str(instr)))
        if len(self.events) > self.limit:
            del self.events[: len(self.events) - self.limit]

    def tail(self, count: int = 20) -> List[str]:
        return [
            f"{name}@{pc}: {text}" for name, pc, text in self.events[-count:]
        ]


class Machine:
    """Executes a :class:`ProgramImage`."""

    def __init__(
        self,
        program: ProgramImage,
        max_cycles: int = 50_000_000,
        tracer: Optional[Tracer] = None,
        force_slow: Optional[bool] = None,
        tier: Optional[str] = None,
    ):
        self.program = program
        self.max_cycles = max_cycles
        self.memory = Memory(program.globals)
        self.stats = ExecStats()
        self.tracer = tracer
        #: requested interpreter tier.  Resolution order: the explicit
        #: ``tier`` argument, then ``force_slow`` (the pre-tier opt-out,
        #: kept for compatibility: True means ``slow``, False pins a
        #: non-slow tier), then ``REPRO_INTERP``, then the default.
        #: A tracer or an armed fault plan still demotes execution to
        #: the slow path at dispatch time (see :meth:`uses_fast_path`).
        if tier is not None:
            if tier not in INTERP_TIERS:
                raise ValueError(
                    f"unknown interpreter tier {tier!r}; "
                    f"expected one of {INTERP_TIERS}"
                )
            self.tier = tier
        elif force_slow:
            self.tier = "slow"
        else:
            env = _env_tier()
            if force_slow is not None and env == "slow":
                env = None  # explicit force_slow=False overrides the env
            self.tier = env or DEFAULT_TIER
        self.force_slow = self.tier == "slow"
        #: seconds spent decoding images on behalf of this machine (zero
        #: when every image was already decoded by an earlier run).
        self.decode_seconds = 0.0
        #: seconds spent translating images to Python on behalf of this
        #: machine (zero unless this machine ran a compiled-tier cold
        #: translation).
        self.pycompile_seconds = 0.0
        self._arg_queue: List[Number] = []
        #: pc of the instruction currently dispatching, always in
        #: *original-code* coordinates (fast-path faults are mapped back
        #: through the decoded image's pc_map).
        self._fault_pc = 0
        #: effective tier, re-resolved at every :meth:`run` (fault plans
        #: arm and disarm between runs, never mid-run) so the per-
        #: activation dispatch avoids the probe-the-fault-registry call.
        self._mode = self.interp_tier()

    # -- public API -------------------------------------------------------------

    def run(self, entry: str = "main", args: Sequence[Number] = ()) -> Number:
        """Execute ``entry`` and return its return value (0 if void)."""
        self._mode = self.interp_tier()
        self.stats.interp_tier = self._mode
        return self._call(entry, list(args))

    def uses_fast_path(self) -> bool:
        """True when dispatch will run on decoded or compiled images: no
        tracer attached, fault injection not armed, slow tier not
        selected.  A tracer and an armed fault plan demote the compiled
        tier exactly as they demote the fast path — both observation
        mechanisms are wired into the slow dispatch loop only."""
        return (
            self.tier != "slow"
            and self.tracer is None
            and _faults_active() is None
        )

    def interp_tier(self) -> str:
        """The tier dispatch will actually use for this machine."""
        return self.tier if self.uses_fast_path() else "slow"

    def predecode(self) -> int:
        """Eagerly prepare every function image for the active tier
        (normally decode/translate happens on first activation); returns
        the number of images made ready."""
        if not self.uses_fast_path():
            return 0
        count = 0
        compiled_tier = self.tier == "compiled"
        for image in self.program.functions.values():
            if compiled_tier and self._compiled_for(image) is not None:
                count += 1
            elif self._decoded_for(image) is not None:
                count += 1
        return count

    def _decoded_for(self, image: FunctionImage):
        decoded = image._decoded
        if decoded is None:
            started = time.perf_counter()
            decoded = image.decoded_or_none()
            self.decode_seconds += time.perf_counter() - started
            return decoded
        return decoded or None

    def _compiled_for(self, image: FunctionImage):
        compiled = image._compiled
        if compiled is None:
            self._decoded_for(image)  # attribute decode time separately
            started = time.perf_counter()
            compiled = image.compiled_or_none()
            self.pycompile_seconds += time.perf_counter() - started
            return compiled
        return compiled or None

    # -- execution ---------------------------------------------------------------

    def _call(self, name: str, args: List[Number]) -> Number:
        image = self.program.image(name)
        if len(args) != len(image.param_slots):
            raise MachineFault(
                f"{name} expects {len(image.param_slots)} args, got {len(args)}"
            )
        frame = _Frame(self.memory.stack_top)
        for slot, value in zip(image.param_slots, args):
            frame.slots[slot] = value
        try:
            return self._execute(image, frame)
        finally:
            self.memory.release_to(frame.stack_mark)

    def _call_compiled(self, image: FunctionImage, args: List[Number]) -> Number:
        """Fused activation path used by generated code (hoisted as
        ``_machine_call``): one Python frame instead of the
        ``_call`` → ``_execute`` pair, with the tier decision already
        made by the caller (compiled code only calls this under the
        compiled mode) and the image already looked up for the arity
        check.  The generated call site popped exactly ``arity`` queued
        params, so the arg count needs no re-validation here.  Falls
        back to :meth:`_call` for callees whose translation failed."""
        compiled = image._compiled
        if compiled is None:
            compiled = self._compiled_for(image)
        if not compiled:
            return self._call(image.name, args)
        frame = _Frame(self.memory.stack_top)
        frame.slots.update(zip(image.param_slots, args))
        try:
            try:
                return compiled.fn(self, frame)
            except _Bailout as bailout:
                # A compiled frame bailed to the fast path and faulted
                # there, fully flushed and annotated.
                raise bailout.fault from None
        finally:
            self.memory.release_to(frame.stack_mark)

    def _execute(self, image: FunctionImage, frame: _Frame) -> Number:
        mode = self._mode
        if mode != "slow":
            if mode == "compiled":
                compiled = image._compiled
                if compiled is None:
                    compiled = self._compiled_for(image)
                if compiled:
                    try:
                        return compiled.fn(self, frame)
                    except _Bailout as bailout:
                        # A compiled frame bailed to the fast path and
                        # faulted there, fully flushed and annotated.
                        raise bailout.fault from None
            decoded = self._decoded_for(image)
            if decoded is not None:
                return self._dispatch_fast(image, decoded, frame)
        code = image.code
        counters = self.stats.function(image.name)
        total = self.stats.total
        try:
            return self._dispatch(image, frame, code, counters, total)
        except MachineFault as fault:
            # Innermost frame wins: annotate() never overwrites fields a
            # callee's dispatch already filled in.
            raise fault.annotate(
                function=image.name, pc=self._fault_pc, cycles=total.cycles
            )

    def _dispatch_fast(
        self,
        image: FunctionImage,
        decoded,
        frame: _Frame,
        pc: int = 0,
        cycles: int = 0,
    ) -> Number:
        """Drive the decoded handler table (see :mod:`repro.interp.decode`).

        Cycles accumulate in a local and are folded into the shared
        Counters at returns, call boundaries, and faults; the budget test
        against ``limit`` is therefore equivalent to the slow path's
        per-instruction ``total.cycles > max_cycles`` check.  ``ret`` and
        ``call`` are handled inline because both need that flush.

        ``pc``/``cycles`` are nonzero only when the compiled tier bails
        mid-activation (see :func:`repro.interp.pycompile._bail`): the
        dispatch resumes at the bail point carrying the compiled frame's
        unflushed cycle count, so the budget fault fires at exactly the
        instruction and cycle the per-instruction tiers would report.
        """
        from .decode import HANDLERS

        code = decoded.code
        n = len(code)
        regs = frame.regs
        counts = frame.counts
        counters = self.stats.function(image.name)
        total = self.stats.total
        max_cycles = self.max_cycles
        limit = max_cycles - total.cycles
        result = 0
        try:
            while pc < n:
                ins = code[pc]
                op = ins[0]
                cycles += 1
                if cycles > limit:
                    raise MachineFault(f"cycle budget exceeded in {image.name}")
                if op > 1:
                    pc = HANDLERS[op](self, frame, regs, ins, pc)
                elif op == 0:  # ret
                    src = ins[1]
                    result = regs[src] if src is not None else 0
                    break
                else:  # call
                    callee = ins[1]
                    arity = len(self.program.image(callee).param_slots)
                    queue = self._arg_queue
                    if len(queue) < arity:
                        raise MachineFault(
                            f"call to {callee} with too few queued params"
                        )
                    args = queue[len(queue) - arity:]
                    del queue[len(queue) - arity:]
                    # Flush before recursing so the callee's budget check
                    # and fault annotation see an up-to-date total.
                    total.cycles += cycles
                    counters.cycles += cycles
                    cycles = 0
                    value = self._call(callee, args)
                    limit = max_cycles - total.cycles
                    dst = ins[2]
                    if dst is not None:
                        regs[dst] = value
                    pc += 1
        except MachineFault as fault:
            total.cycles += cycles
            counters.cycles += cycles
            _flush_counts(counts, counters, total)
            self._fault_pc = decoded.pc_map[pc] if pc < n else 0
            raise fault.annotate(
                function=image.name, pc=self._fault_pc, cycles=total.cycles
            )
        except KeyError as err:
            # An uninitialized register read: the only bare KeyError the
            # handlers can leak is a miss in the dense register file.
            key = err.args[0] if err.args else None
            if not (isinstance(key, int) and 0 <= key < len(decoded.regs)):
                raise
            total.cycles += cycles
            counters.cycles += cycles
            _flush_counts(counts, counters, total)
            self._fault_pc = decoded.pc_map[pc]
            raise MachineFault(
                f"read of uninitialized register {decoded.regs[key]} "
                f"in {image.name}",
                function=image.name,
                pc=self._fault_pc,
                cycles=total.cycles,
            ) from None
        total.cycles += cycles
        counters.cycles += cycles
        _flush_counts(counts, counters, total)
        return result

    def _dispatch(
        self,
        image: FunctionImage,
        frame: _Frame,
        code: Sequence[Instr],
        counters: Counters,
        total: Counters,
    ) -> Number:
        pc = 0
        n = len(code)
        self._fault_pc = 0

        def get(reg: Reg) -> Number:
            try:
                return frame.regs[reg]
            except KeyError:
                raise MachineFault(
                    f"read of uninitialized register {reg} in {image.name}"
                ) from None

        while pc < n:
            self._fault_pc = pc
            instr = code[pc]
            op = instr.op
            if op is Op.LABEL:
                pc += 1
                continue

            total.cycles += 1
            counters.cycles += 1
            if total.cycles > self.max_cycles:
                raise MachineFault(f"cycle budget exceeded in {image.name}")
            if self.tracer is not None:
                self.tracer.record(image.name, pc, instr)

            if op is Op.LOADI:
                frame.regs[instr.dst] = instr.imm
            elif op is Op.ADD:
                frame.regs[instr.dst] = get(instr.srcs[0]) + get(instr.srcs[1])
            elif op is Op.SUB:
                frame.regs[instr.dst] = get(instr.srcs[0]) - get(instr.srcs[1])
            elif op is Op.MUL:
                frame.regs[instr.dst] = get(instr.srcs[0]) * get(instr.srcs[1])
            elif op is Op.DIV:
                frame.regs[instr.dst] = _div(get(instr.srcs[0]), get(instr.srcs[1]))
            elif op is Op.MOD:
                frame.regs[instr.dst] = _mod(get(instr.srcs[0]), get(instr.srcs[1]))
            elif op is Op.NEG:
                frame.regs[instr.dst] = -get(instr.srcs[0])
            elif op is Op.CMP_LT:
                frame.regs[instr.dst] = int(get(instr.srcs[0]) < get(instr.srcs[1]))
            elif op is Op.CMP_LE:
                frame.regs[instr.dst] = int(get(instr.srcs[0]) <= get(instr.srcs[1]))
            elif op is Op.CMP_GT:
                frame.regs[instr.dst] = int(get(instr.srcs[0]) > get(instr.srcs[1]))
            elif op is Op.CMP_GE:
                frame.regs[instr.dst] = int(get(instr.srcs[0]) >= get(instr.srcs[1]))
            elif op is Op.CMP_EQ:
                frame.regs[instr.dst] = int(get(instr.srcs[0]) == get(instr.srcs[1]))
            elif op is Op.CMP_NE:
                frame.regs[instr.dst] = int(get(instr.srcs[0]) != get(instr.srcs[1]))
            elif op is Op.AND:
                frame.regs[instr.dst] = int(
                    bool(get(instr.srcs[0])) and bool(get(instr.srcs[1]))
                )
            elif op is Op.OR:
                frame.regs[instr.dst] = int(
                    bool(get(instr.srcs[0])) or bool(get(instr.srcs[1]))
                )
            elif op is Op.NOT:
                frame.regs[instr.dst] = int(not get(instr.srcs[0]))
            elif op is Op.I2I:
                total.copies += 1
                counters.copies += 1
                frame.regs[instr.dst] = get(instr.srcs[0])
            elif op is Op.LOAD:
                total.loads += 1
                counters.loads += 1
                frame.regs[instr.dst] = self.memory.load(get(instr.srcs[0]))
            elif op is Op.STORE:
                total.stores += 1
                counters.stores += 1
                self.memory.store(get(instr.srcs[1]), get(instr.srcs[0]))
            elif op is Op.LDM:
                total.loads += 1
                counters.loads += 1
                if instr.addr.space == "spill":
                    frame.regs[instr.dst] = frame.slots.get(instr.addr.name, 0)
                else:
                    frame.regs[instr.dst] = self.memory.load_scalar(instr.addr.name)
            elif op is Op.STM:
                total.stores += 1
                counters.stores += 1
                if instr.addr.space == "spill":
                    frame.slots[instr.addr.name] = get(instr.srcs[0])
                else:
                    self.memory.store_scalar(instr.addr.name, get(instr.srcs[0]))
            elif op is Op.LOADA:
                try:
                    frame.regs[instr.dst] = self.memory.array_base[instr.addr.name]
                except KeyError:
                    raise MachineFault(
                        f"unknown global array {instr.addr.name!r}"
                    ) from None
            elif op is Op.ALLOCA:
                frame.regs[instr.dst] = self.memory.alloca(int(instr.imm))
            elif op is Op.CBR:
                pc = image.labels[
                    instr.label if get(instr.srcs[0]) else instr.label_false
                ]
                continue
            elif op is Op.JMP:
                pc = image.labels[instr.label]
                continue
            elif op is Op.PARAM:
                self._arg_queue.append(get(instr.srcs[0]))
            elif op is Op.CALL:
                arity = len(self.program.image(instr.callee).param_slots)
                if len(self._arg_queue) < arity:
                    raise MachineFault(
                        f"call to {instr.callee} with too few queued params"
                    )
                args = self._arg_queue[len(self._arg_queue) - arity:]
                del self._arg_queue[len(self._arg_queue) - arity:]
                result = self._call(instr.callee, args)
                if instr.dst is not None:
                    frame.regs[instr.dst] = result
            elif op is Op.RET:
                return get(instr.srcs[0]) if instr.srcs else 0
            elif op is Op.PRINT:
                self.stats.output.append(get(instr.srcs[0]))
            elif op is Op.NOP:
                pass
            else:  # pragma: no cover
                raise MachineFault(f"cannot execute {instr}")
            pc += 1
        return 0


def _flush_counts(counts: List[int], counters: Counters, total: Counters) -> None:
    """Fold a frame's pending load/store/copy counts into the stats."""
    loads, stores, copies = counts
    if loads:
        total.loads += loads
        counters.loads += loads
        counts[0] = 0
    if stores:
        total.stores += stores
        counters.stores += stores
        counts[1] = 0
    if copies:
        total.copies += copies
        counters.copies += copies
        counts[2] = 0


def _div(a: Number, b: Number) -> Number:
    if b == 0:
        raise MachineFault("division by zero")
    if isinstance(a, int) and isinstance(b, int):
        quotient = abs(a) // abs(b)
        return quotient if (a >= 0) == (b >= 0) else -quotient
    return a / b


def _mod(a: Number, b: Number) -> Number:
    if b == 0:
        raise MachineFault("modulo by zero")
    return a - b * _div(a, b)


def run_program(
    program: ProgramImage,
    entry: str = "main",
    args: Sequence[Number] = (),
    max_cycles: int = 50_000_000,
) -> ExecStats:
    """Convenience wrapper: execute and return the statistics."""
    machine = Machine(program, max_cycles=max_cycles)
    machine.run(entry, args)
    return machine.stats
