"""The compiled interpreter tier: decoded images translated to Python.

The decoded fast path (:mod:`repro.interp.decode`) still pays, per
executed ILOC instruction, for one trip around a dispatch loop: a tuple
index, a handler-table load, a Python call, and a dict operation per
register operand.  This module removes all of that by translating each
:class:`~repro.interp.decode.DecodedFunction` once into the source of a
single specialized Python function which is then ``compile()``d and
``exec``d:

* registers become Python **local variables** (``r0``, ``r1``, ...), so
  CPython's fast-locals array replaces the per-frame register dict;
* basic blocks become arms of a jump-threaded ``while``/dispatch
  skeleton (a binary search over block ids); blocks with a single
  predecessor edge are inlined at that edge, so straight-line regions,
  if/else ladders, and loop bodies run with no dispatch at all;
* cycle/load/store/copy counters are accumulated **statically**: each
  straight-line segment adds its precomputed totals in O(1) at its exit
  instead of incrementing per instruction.

Exactness is non-negotiable — the compiled tier must be observationally
identical to the slow path (the fast path already is):

* **Counters.**  Within a basic block, the counters can only be
  observed at calls, returns, and faults; adding a segment's static
  totals at those points is indistinguishable from the per-instruction
  increments the other tiers perform.
* **Cycle budget.**  The fast path checks ``cycles > limit`` after each
  increment.  A straight-line segment of ``B`` instructions runs them
  all unconditionally, so the budget trips inside the segment *iff*
  ``cycles + B > limit`` at segment entry.  The compiled code tests
  exactly that, and when it would trip it *bails*: registers are
  materialized back into the frame and execution resumes
  instruction-by-instruction on the decoded fast path from the segment
  start, which then produces the byte-identical fault (whichever of
  budget/divide/etc. comes first).  The bail path only runs on
  activations that are already guaranteed to fault, so it costs nothing
  on the happy path.
* **Faults.**  Before every instruction that can fault (``div``/
  ``mod``, heap access, ``loada``, ``call``, and any register read not
  proven initialized by a definite-assignment dataflow), the generated
  code stores the decoded pc into a local; a function-level handler
  maps it through ``_META`` to the original-code pc (via the decode
  ``pc_map``) and to the exact counter deltas accrued since the last
  segment exit, reproducing the slow path's annotation (message,
  function, pc, cycles) byte for byte.  Reads of uninitialized
  registers surface as :class:`UnboundLocalError`/:class:`NameError` on
  an ``rN`` local and are converted into the same ``MachineFault`` the
  other tiers raise.

The compiled artifact is cached on the :class:`FunctionImage` next to
the decode cache, so every machine (and every sweep cell or service
worker touching that image) shares one translation.  Any failure to
translate falls back to the decoded fast path for that image alone.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from .decode import (
    OP_ALLOCA,
    OP_AND,
    OP_CALL,
    OP_CBR,
    OP_DIV,
    OP_I2I,
    OP_JMP,
    OP_LDM_GLOBAL,
    OP_LDM_SPILL,
    OP_LOAD,
    OP_LOADA,
    OP_LOADI,
    OP_MOD,
    OP_NEG,
    OP_NOP,
    OP_NOT,
    OP_OR,
    OP_PARAM,
    OP_PRINT,
    OP_RET,
    OP_STM_GLOBAL,
    OP_STM_SPILL,
    OP_STORE,
    DecodedFunction,
)
from .machine import _div, _mod
from .memory import MachineFault

__all__ = ["PyCompiledFunction", "compile_decoded"]


@dataclass
class PyCompiledFunction:
    """Compiled artifact for one function image.

    ``fn(machine, frame)`` executes one activation and returns the
    function's return value, raising fully annotated
    :class:`MachineFault` on faulting runs.  ``source`` is kept for
    inspection (``REPRO_PYCOMPILE_DUMP=1`` prints it at compile time).
    """

    name: str
    fn: Callable
    source: str
    blocks: int = 0
    arms: int = 0


_REG_IN_ERROR = re.compile(r"'(r\d+)'")

#: opcodes whose operand 1 is a dense destination register index.
_DST_OPS = frozenset(range(2, 19)) | {
    OP_LOAD,
    OP_LDM_SPILL,
    OP_LDM_GLOBAL,
    OP_LOADA,
    OP_ALLOCA,
}

#: binary ops emitted as infix expressions (comparisons wrapped in int()).
_INFIX = {
    3: "+",  # add
    4: "-",  # sub
    5: "*",  # mul
    9: "<",
    10: "<=",
    11: ">",
    12: ">=",
    13: "==",
    14: "!=",
}
_CMP_OPS = frozenset(range(9, 15))
_LOAD_OPS = frozenset((OP_LOAD, OP_LDM_SPILL, OP_LDM_GLOBAL))
_STORE_OPS = frozenset((OP_STORE, OP_STM_SPILL, OP_STM_GLOBAL))
_INHERENT_FAULT_OPS = frozenset(
    (OP_DIV, OP_MOD, OP_LOAD, OP_STORE, OP_LOADA, OP_CALL)
)


def _reg_of(err: BaseException) -> Optional[int]:
    """Dense register index behind an Unbound/NameError on an ``rN`` local.

    Returns None when the error is not about a register local (the
    generated handler then re-raises it untouched — a codegen bug must
    crash loudly, not masquerade as a guest fault).
    """
    name = getattr(err, "name", None)
    if name is None:
        match = _REG_IN_ERROR.search(str(err))
        name = match.group(1) if match else None
    if not name or name[0] != "r" or not name[1:].isdigit():
        return None
    return int(name[1:])


def _bail(
    machine,
    image,
    decoded,
    frame,
    pc,
    cycles,
    loads,
    stores,
    copies,
    lcls,
    slot_names=(),
):
    """Leave compiled code and replay from ``pc`` on the decoded fast path.

    Called when a segment's cycle pre-check says the budget would trip
    inside it: the activation is guaranteed to fault, and the fast path
    is the authority on *which* instruction faults first.  Registers
    (and promoted frame slots, mapped back through ``slot_names``) move
    from Python locals into the frame; pending counter deltas move into
    ``frame.counts``, where the fast path accumulates and flushes them.

    The resulting fault is fully flushed and annotated, so it must sail
    *through* this activation's own generated ``except MachineFault``
    handler (which would flush stale deltas a second time): it travels
    wrapped in :class:`~repro.interp.machine._Bailout` and is unwrapped
    at the activation boundary in :class:`~repro.interp.machine.Machine`.
    """
    from .machine import _Bailout

    regs = frame.regs
    slots = frame.slots
    for key, value in lcls.items():
        if key[0] == "r" and key[1:].isdigit():
            regs[int(key[1:])] = value
        elif key.startswith("_s") and key[2:].isdigit():
            slots[slot_names[int(key[2:])]] = value
    counts = frame.counts
    counts[0] += loads
    counts[1] += stores
    counts[2] += copies
    try:
        return machine._dispatch_fast(image, decoded, frame, pc=pc, cycles=cycles)
    except MachineFault as fault:
        raise _Bailout(fault) from None


# -- control-flow analysis ---------------------------------------------------


def _block_starts(code: Tuple[tuple, ...]) -> List[int]:
    """Leaders: pc 0 plus every in-range branch target."""
    n = len(code)
    leaders: Set[int] = {0} if n else set()
    for ins in code:
        op = ins[0]
        if op == OP_CBR:
            for target in (ins[2], ins[3]):
                if target < n:
                    leaders.add(target)
        elif op == OP_JMP and ins[1] < n:
            leaders.add(ins[1])
    return sorted(leaders)


@dataclass
class _Block:
    start: int
    end: int  # exclusive; code[end - 1] is the terminator if there is one
    succs: List[int] = field(default_factory=list)  # leader pcs, or n (exit)
    preds: int = 0  # incoming edge count over reachable blocks
    reachable: bool = False
    gen: int = 0  # registers written anywhere in the block (bitset)
    assigned_in: int = 0  # registers written on every path to the block


def _build_cfg(code: Tuple[tuple, ...]) -> Dict[int, _Block]:
    n = len(code)
    starts = _block_starts(code)
    leader_set = set(starts)
    blocks: Dict[int, _Block] = {}
    for index, start in enumerate(starts):
        end = starts[index + 1] if index + 1 < len(starts) else n
        pc = start
        while pc < end:
            if code[pc][0] in (OP_CBR, OP_JMP, OP_RET):
                end = pc + 1
                break
            pc += 1
        blocks[start] = _Block(start=start, end=end)
    for block in blocks.values():
        last = code[block.end - 1]
        op = last[0]
        if op == OP_CBR:
            succs = [last[2], last[3]]
        elif op == OP_JMP:
            succs = [last[1]]
        elif op == OP_RET:
            succs = []
        else:  # fell into the next leader, or off the end of the function
            succs = [block.end]
        # A successor pc that is not a leader can only be n (decode
        # pre-resolves every branch target, and n marks "fall off end").
        block.succs = [s if s in leader_set else n for s in succs]
    work = [0] if blocks else []
    while work:
        block = blocks[work.pop()]
        if block.reachable:
            continue
        block.reachable = True
        work.extend(s for s in block.succs if s in blocks)
    for block in blocks.values():
        if block.reachable:
            for succ in block.succs:
                if succ in blocks:
                    blocks[succ].preds += 1
    return blocks


def _definite_assignment(code, blocks: Dict[int, _Block], nregs: int) -> None:
    """Forward must-analysis: registers written on *every* path to a block.

    ``assigned_in`` lets the emitter skip the ``pc = K`` bookkeeping
    store in front of register reads that provably cannot fault.
    ``and``/``or`` read their second operand conditionally, so an
    unproven second operand marks the instruction as possibly faulting
    (the short-circuit may evaluate it) without being a required read.
    """
    all_bits = (1 << nregs) - 1
    for block in blocks.values():
        gen = 0
        for pc in range(block.start, block.end):
            ins = code[pc]
            if ins[0] in _DST_OPS:
                gen |= 1 << ins[1]
            elif ins[0] == OP_CALL and ins[2] is not None:
                gen |= 1 << ins[2]
        block.gen = gen
        block.assigned_in = 0 if block.start == 0 else all_bits
    reachable = [b for b in blocks.values() if b.reachable]
    changed = True
    while changed:
        changed = False
        for block in reachable:
            out = block.assigned_in | block.gen
            for succ in block.succs:
                target = blocks.get(succ)
                if target is None or not target.reachable:
                    continue
                narrowed = target.assigned_in & out
                if narrowed != target.assigned_in:
                    target.assigned_in = narrowed
                    changed = True


def _reads_of(ins: tuple) -> Tuple[List[int], List[int]]:
    """(required reads, conditional reads) as dense register indices,
    in evaluation order — mirrored from the slow-path expressions."""
    op = ins[0]
    if op in _INFIX:
        return [ins[2], ins[3]], []
    if op in (OP_AND, OP_OR):
        return [ins[2]], [ins[3]]
    if op in (OP_DIV, OP_MOD):
        return [ins[2], ins[3]], []
    if op in (OP_NEG, OP_NOT, OP_I2I, OP_LOAD):
        return [ins[2]], []
    if op == OP_STORE:
        return [ins[2], ins[1]], []  # address evaluated before value
    if op in (OP_STM_SPILL, OP_STM_GLOBAL):
        return [ins[2]], []
    if op in (OP_CBR, OP_PARAM, OP_PRINT):
        return [ins[1]], []
    if op == OP_RET and ins[1] is not None:
        return [ins[1]], []
    return [], []


# -- code generation ---------------------------------------------------------


class _Emitter:
    def __init__(self, decoded: DecodedFunction):
        self.decoded = decoded
        self.code = decoded.code
        self.n = len(decoded.code)
        self.blocks = _build_cfg(decoded.code)
        _definite_assignment(decoded.code, self.blocks, len(decoded.regs))
        arm_starts = {
            start
            for start, block in self.blocks.items()
            if block.reachable and block.preds >= 2
        }
        if self.blocks and (arm_starts or self.blocks[0].preds):
            # All dispatch happens inside one ``while``; making the entry
            # block an arm keeps every transfer a plain ``continue``.
            arm_starts.add(0)
        self.arms = sorted(arm_starts)
        self.arm_set = arm_starts
        self.meta: Dict[int, Tuple[int, int, int, int, int]] = {}
        self.lines: List[str] = []
        self.uses: Set[str] = set()
        #: frame slots (params and spill homes) promoted to Python
        #: locals ``_s0..``, keyed by slot name in first-reference order.
        #: The prologue seeds each from the frame dict (parameters arrive
        #: there; unwritten spill slots read as 0), and the bail path
        #: materializes them back.
        self.slot_ids: Dict[str, int] = {}
        for ins in self.code:
            if ins[0] == OP_LDM_SPILL:
                slot = ins[2]
            elif ins[0] == OP_STM_SPILL:
                slot = ins[1]
            else:
                continue
            if slot not in self.slot_ids:
                self.slot_ids[slot] = len(self.slot_ids)
        ops = {ins[0] for ins in self.code}
        self.has_loads = bool(ops & _LOAD_OPS)
        self.has_stores = bool(ops & _STORE_OPS)
        self.has_copies = OP_I2I in ops
        self.guarded = self._needs_fault_wrapper()

    # -- small helpers -------------------------------------------------------

    def emit(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    def safe(self, assigned: int, reg: int) -> bool:
        return bool(assigned >> reg & 1)

    def counter_locals(self) -> List[Tuple[str, str]]:
        out = []
        if self.has_loads:
            out.append(("_ld", "loads"))
        if self.has_stores:
            out.append(("_st", "stores"))
        if self.has_copies:
            out.append(("_cp", "copies"))
        return out

    def flush_lines(self) -> List[str]:
        """Fold pending cycles + traffic counters into the shared stats."""
        out = ["_total.cycles += _cycles", "_counters.cycles += _cycles"]
        for local, kind in self.counter_locals():
            out.append(f"if {local}:")
            out.append(f"    _total.{kind} += {local}")
            out.append(f"    _counters.{kind} += {local}")
        return out

    def _needs_fault_wrapper(self) -> bool:
        """Whether any instruction can raise inside the generated body."""
        if any(ins[0] in _INHERENT_FAULT_OPS for ins in self.code):
            return True
        for block in self.blocks.values():
            if not block.reachable:
                continue
            assigned = block.assigned_in
            for pc in range(block.start, block.end):
                ins = self.code[pc]
                required, conditional = _reads_of(ins)
                if any(
                    not self.safe(assigned, r) for r in required + conditional
                ):
                    return True
                if ins[0] in _DST_OPS:
                    assigned |= 1 << ins[1]
                elif ins[0] == OP_CALL and ins[2] is not None:
                    assigned |= 1 << ins[2]
        return False

    # -- control transfer ----------------------------------------------------

    def emit_goto(self, depth: int, target: int) -> None:
        if target >= self.n:
            self.emit_exit(depth)
        elif target in self.arm_set:
            self.emit(depth, f"_b = {self.arms.index(target)}")
            self.emit(depth, "continue")
        else:
            self.emit_block_chain(depth, target)

    def emit_exit(self, depth: int) -> None:
        for line in self.flush_lines():
            self.emit(depth, line)
        self.emit(depth, "return 0")

    def emit_block_chain(self, depth: int, start: int) -> None:
        fall_through = self.emit_block_body(depth, self.blocks[start])
        if fall_through is not None:
            self.emit_goto(depth, fall_through)

    def emit_dispatch_tree(self, depth: int, lo: int, hi: int) -> None:
        """Binary search over arm ids: O(log arms) compares per transfer.
        Every arm body ends in ``return`` or ``continue``, so the arms
        never fall through into each other."""
        if hi - lo == 1:
            self.emit_block_chain(depth, self.arms[lo])
            return
        mid = (lo + hi) // 2
        if hi - lo == 2:
            self.emit(depth, f"if _b == {lo}:")
        else:
            self.emit(depth, f"if _b < {mid}:")
        self.emit_dispatch_tree(depth + 1, lo, mid)
        self.emit(depth, "else:")
        self.emit_dispatch_tree(depth + 1, mid, hi)

    # -- block and segment emission ------------------------------------------

    def emit_block_body(self, depth: int, block: _Block) -> Optional[int]:
        """Emit one block; returns the fall-through pc, or None if every
        path out of the block was emitted (terminator present)."""
        code = self.code
        assigned = block.assigned_in
        pc = block.start
        while pc < block.end:
            # Segment: instructions up to (and including) the next call,
            # or to the block end.  One budget pre-check covers it all.
            seg_end = pc
            while seg_end < block.end and code[seg_end][0] != OP_CALL:
                seg_end += 1
            stop = min(seg_end + 1, block.end)
            self.emit_budget_check(depth, pc, stop - pc)
            assigned = self.emit_segment(depth, pc, stop, assigned)
            pc = stop
        if code[block.end - 1][0] in (OP_CBR, OP_JMP, OP_RET):
            return None
        return block.end

    def emit_budget_check(self, depth: int, pc: int, seg_len: int) -> None:
        ld = "_ld" if self.has_loads else "0"
        st = "_st" if self.has_stores else "0"
        cp = "_cp" if self.has_copies else "0"
        self.emit(depth, f"if _cycles + {seg_len} > _limit:")
        self.emit(
            depth + 1,
            f"return _bail(machine, _IMAGE, _DECODED, frame, {pc}, "
            f"_cycles, {ld}, {st}, {cp}, locals(), _SLOT_NAMES)",
        )

    def emit_segment(self, depth: int, start: int, stop: int, assigned: int) -> int:
        """Emit code[start:stop] (straight line, call only at the end).

        Counter accounting is static: ``seg_len`` cycles plus the
        segment's load/store/copy totals are added at the segment's exit
        (fall-off, branch, return, or call flush), and ``_META`` records
        per-instruction prefix deltas so a mid-segment fault can
        reconstruct the exact counter state the slow path would report.
        """
        code = self.code
        seg_len = stop - start
        d_ld = d_st = d_cp = 0
        closed = False
        for offset in range(seg_len):
            pc = start + offset
            ins = code[pc]
            op = ins[0]
            required, conditional = _reads_of(ins)
            delta_ld = d_ld + (1 if op in _LOAD_OPS else 0)
            delta_st = d_st + (1 if op in _STORE_OPS else 0)
            delta_cp = d_cp + (1 if op == OP_I2I else 0)
            if op in _INHERENT_FAULT_OPS or any(
                not self.safe(assigned, r) for r in required + conditional
            ):
                self.emit(depth, f"pc = {pc}")
                self.meta[pc] = (
                    self.decoded.pc_map[pc],
                    offset + 1,
                    delta_ld,
                    delta_st,
                    delta_cp,
                )

            if op == OP_LOADI:
                self.emit(depth, f"r{ins[1]} = {ins[2]!r}")
            elif op in _INFIX:
                expr = f"r{ins[2]} {_INFIX[op]} r{ins[3]}"
                if op in _CMP_OPS:
                    expr = f"int({expr})"
                self.emit(depth, f"r{ins[1]} = {expr}")
            elif op in (OP_DIV, OP_MOD):
                helper = "_div" if op == OP_DIV else "_mod"
                self.emit(depth, f"r{ins[1]} = {helper}(r{ins[2]}, r{ins[3]})")
            elif op == OP_NEG:
                self.emit(depth, f"r{ins[1]} = -r{ins[2]}")
            elif op == OP_AND:
                self.emit(
                    depth, f"r{ins[1]} = int(bool(r{ins[2]}) and bool(r{ins[3]}))"
                )
            elif op == OP_OR:
                self.emit(
                    depth, f"r{ins[1]} = int(bool(r{ins[2]}) or bool(r{ins[3]}))"
                )
            elif op == OP_NOT:
                self.emit(depth, f"r{ins[1]} = int(not r{ins[2]})")
            elif op == OP_I2I:
                self.emit(depth, f"r{ins[1]} = r{ins[2]}")
                d_cp += 1
            elif op == OP_LOAD:
                # Inline the dominant case (non-negative int address,
                # the only kind the heap dict is ever keyed by): one
                # dict ``get`` instead of two method calls.  ``bool``
                # and ``float`` addresses take the Memory method, which
                # owns the exact fault wording.
                self.uses.update(("_heap_get", "_mem_load"))
                src = f"r{ins[2]}"
                self.emit(
                    depth,
                    f"r{ins[1]} = _heap_get({src}, 0)"
                    f" if type({src}) is int and {src} >= 0"
                    f" else _mem_load({src})",
                )
                d_ld += 1
            elif op == OP_STORE:
                # The address register is read first (in the condition),
                # preserving the slow path's address-before-value
                # operand evaluation for uninitialized-register faults.
                self.uses.update(("_heap", "_mem_store"))
                addr, val = f"r{ins[2]}", f"r{ins[1]}"
                self.emit(depth, f"if type({addr}) is int and {addr} >= 0:")
                self.emit(depth + 1, f"_heap[{addr}] = {val}")
                self.emit(depth, "else:")
                self.emit(depth + 1, f"_mem_store({addr}, {val})")
                d_st += 1
            elif op == OP_LDM_SPILL:
                self.emit(depth, f"r{ins[1]} = _s{self.slot_ids[ins[2]]}")
                d_ld += 1
            elif op == OP_LDM_GLOBAL:
                self.uses.add("_load_scalar")
                self.emit(depth, f"r{ins[1]} = _load_scalar({ins[2]!r})")
                d_ld += 1
            elif op == OP_STM_SPILL:
                self.emit(depth, f"_s{self.slot_ids[ins[1]]} = r{ins[2]}")
                d_st += 1
            elif op == OP_STM_GLOBAL:
                self.uses.add("_store_scalar")
                self.emit(depth, f"_store_scalar({ins[1]!r}, r{ins[2]})")
                d_st += 1
            elif op == OP_LOADA:
                self.uses.add("_array_base_get")
                message = f"unknown global array {ins[2]!r}"
                self.emit(depth, f"_t = _array_base_get({ins[2]!r})")
                self.emit(depth, "if _t is None:")
                self.emit(depth + 1, f"raise MachineFault({message!r})")
                self.emit(depth, f"r{ins[1]} = _t")
            elif op == OP_ALLOCA:
                self.uses.add("_alloca")
                self.emit(depth, f"r{ins[1]} = _alloca({ins[2]!r})")
            elif op == OP_CBR:
                self.emit(depth, f"_t = r{ins[1]}")
                self.emit_accounting(depth, seg_len, d_ld, d_st, d_cp)
                self.emit(depth, "if _t:")
                self.emit_goto(depth + 1, ins[2])
                self.emit_goto(depth, ins[3])
                closed = True
            elif op == OP_JMP:
                self.emit_accounting(depth, seg_len, d_ld, d_st, d_cp)
                self.emit_goto(depth, ins[1])
                closed = True
            elif op == OP_PARAM:
                self.uses.add("_argq")
                self.emit(depth, f"_argq.append(r{ins[1]})")
            elif op == OP_CALL:
                self.emit_call(depth, pc, ins, seg_len, d_ld, d_st, d_cp)
                closed = True
            elif op == OP_RET:
                if ins[1] is not None:
                    self.emit(depth, f"_t = r{ins[1]}")
                self.emit_accounting(depth, seg_len, d_ld, d_st, d_cp)
                for line in self.flush_lines():
                    self.emit(depth, line)
                self.emit(depth, f"return {'_t' if ins[1] is not None else 0}")
                closed = True
            elif op == OP_NOP:
                pass
            elif op == OP_PRINT:
                self.uses.add("_out_append")
                self.emit(depth, f"_out_append(r{ins[1]})")

            if op in _DST_OPS:
                assigned |= 1 << ins[1]
            elif op == OP_CALL and ins[2] is not None:
                assigned |= 1 << ins[2]
        if not closed:
            self.emit_accounting(depth, seg_len, d_ld, d_st, d_cp)
        return assigned

    def emit_accounting(
        self, depth: int, seg_len: int, d_ld: int, d_st: int, d_cp: int
    ) -> None:
        self.emit(depth, f"_cycles += {seg_len}")
        for value, local in ((d_ld, "_ld"), (d_st, "_st"), (d_cp, "_cp")):
            if value:
                self.emit(depth, f"{local} += {value}")

    def emit_call(
        self,
        depth: int,
        pc: int,
        ins: tuple,
        seg_len: int,
        d_ld: int,
        d_st: int,
        d_cp: int,
    ) -> None:
        """``call``: account and flush cycles first (so the callee's
        budget check and fault annotation see an up-to-date total,
        exactly like the fast path's inline handling), then the arity
        check, then the activation itself."""
        self.uses.update(("_argq", "_prog_image", "_machine_call", "_max_cycles"))
        callee = ins[1]
        self.emit_accounting(depth, seg_len, d_ld, d_st, d_cp)
        self.emit(depth, "_total.cycles += _cycles")
        self.emit(depth, "_counters.cycles += _cycles")
        self.emit(depth, "_cycles = 0")
        # Everything up to here is flushed before anything can raise, so
        # the fault-time deltas for the call pc itself are all zero.
        self.meta[pc] = (self.decoded.pc_map[pc], 0, 0, 0, 0)
        message = f"call to {callee} with too few queued params"
        self.emit(depth, f"_img = _prog_image({callee!r})")
        self.emit(depth, "_arity = len(_img.param_slots)")
        self.emit(depth, "_n = len(_argq)")
        self.emit(depth, "if _n < _arity:")
        self.emit(depth + 1, f"raise MachineFault({message!r})")
        self.emit(depth, "_a = _argq[_n - _arity:]")
        self.emit(depth, "del _argq[_n - _arity:]")
        target = f"r{ins[2]} = " if ins[2] is not None else ""
        self.emit(depth, f"{target}_machine_call(_img, _a)")
        self.emit(depth, "_limit = _max_cycles - _total.cycles")

    # -- whole-function assembly ---------------------------------------------

    def generate(self) -> str:
        name = self.decoded.name
        body: List[str] = []
        self.lines = body
        base = 2 if self.guarded else 1
        if self.arms:
            self.emit(base, "_b = 0")
            self.emit(base, "while 1:")
            self.emit_dispatch_tree(base + 1, 0, len(self.arms))
        elif self.n:
            self.emit_block_chain(base, 0)
        else:
            self.emit_exit(base)

        hoists = {
            "_mem_load": "_mem_load = machine.memory.load",
            "_mem_store": "_mem_store = machine.memory.store",
            "_heap": "_heap = machine.memory.heap",
            "_heap_get": "_heap_get = machine.memory.heap.get",
            "_load_scalar": "_load_scalar = machine.memory.load_scalar",
            "_store_scalar": "_store_scalar = machine.memory.store_scalar",
            "_array_base_get": "_array_base_get = machine.memory.array_base.get",
            "_alloca": "_alloca = machine.memory.alloca",
            "_slots": "_slots = frame.slots",
            "_slots_get": "_slots_get = frame.slots.get",
            "_argq": "_argq = machine._arg_queue",
            "_prog_image": "_prog_image = machine.program.image",
            "_machine_call": "_machine_call = machine._call_compiled",
            "_max_cycles": "_max_cycles = machine.max_cycles",
            "_out_append": "_out_append = machine.stats.output.append",
        }
        head: List[str] = [f"def {self.fn_name()}(machine, frame):"]
        pad = "    " * base
        if self.guarded:
            head.append("    try:")
        head.append(pad + "_total = machine.stats.total")
        head.append(pad + f"_counters = machine.stats.function({name!r})")
        head.append(pad + "_limit = machine.max_cycles - _total.cycles")
        head.append(pad + "_cycles = 0")
        locals_ = [local for local, _ in self.counter_locals()]
        if locals_:
            head.append(pad + f"{' = '.join(locals_)} = 0")
        if self.slot_ids:
            self.uses.add("_slots_get")
        for key in sorted(self.uses):
            head.append(pad + hoists[key])
        for slot, index in self.slot_ids.items():
            head.append(pad + f"_s{index} = _slots_get({slot!r}, 0)")

        tail: List[str] = []
        if self.guarded:
            tail.extend(self._handler("MachineFault", None))
            tail.extend(self._handler("NameError", "uninit"))
        return "\n".join(head + body + tail) + "\n"

    def fn_name(self) -> str:
        return f"_pyc_{_safe_ident(self.decoded.name)}"

    def _handler(self, exc: str, kind: Optional[str]) -> List[str]:
        """The function-level fault translator (see the module docstring)."""
        pad = "    "
        out = [pad + f"except {exc} as _e:"]
        inner = pad * 2

        def line(text: str) -> None:
            out.append(inner + text)

        if kind == "uninit":
            line("_r = _reg_of(_e)")
            line("if _r is None:")
            line("    raise")
        line("_o, _dc, _dl, _ds, _dp = _META[pc]")
        line("_cycles += _dc")
        line("_total.cycles += _cycles")
        line("_counters.cycles += _cycles")
        for (local, kind_name), delta in zip(
            self.counter_locals_all(), ("_dl", "_ds", "_dp")
        ):
            if local is None:
                continue
            line(f"{local} += {delta}")
            line(f"if {local}:")
            line(f"    _total.{kind_name} += {local}")
            line(f"    _counters.{kind_name} += {local}")
        if kind == "uninit":
            line("raise MachineFault(")
            line("    'read of uninitialized register %s in %s'")
            line("    % (_REGS[_r], _NAME),")
            line("    function=_NAME, pc=_o, cycles=_total.cycles,")
            line(") from None")
        else:
            line(
                "raise _e.annotate(function=_NAME, pc=_o, cycles=_total.cycles)"
            )
        return out

    def counter_locals_all(self) -> List[Tuple[Optional[str], str]]:
        return [
            ("_ld" if self.has_loads else None, "loads"),
            ("_st" if self.has_stores else None, "stores"),
            ("_cp" if self.has_copies else None, "copies"),
        ]


def _safe_ident(name: str) -> str:
    return re.sub(r"\W", "_", name) or "fn"


#: Content-keyed artifact cache shared across images.  A sweep allocates
#: the same program once per (allocator, k) cell, and small functions
#: frequently allocate to byte-identical code across cells; translating
#: each distinct (name, code, pc_map, regs) once is then enough, because
#: the generated source depends on nothing else (the executing machine
#: and frame are call arguments, and the ``_IMAGE``/``_DECODED`` bindings
#: the bail path closes over are content-equal stand-ins).  Bounded FIFO
#: so a long-lived service daemon cannot grow it without limit.
_ARTIFACTS: Dict[tuple, "PyCompiledFunction"] = {}
_ARTIFACTS_MAX = 4096


def _freeze_instr(ins: tuple) -> tuple:
    """A cache-key rendering of one decoded instruction.

    Float immediates are type-tagged: ``7.0 == 7`` (and they hash alike),
    but the two load distinct constants into the generated source.
    """
    if any(type(operand) is float for operand in ins):
        return tuple(
            (operand, "f") if type(operand) is float else operand
            for operand in ins
        )
    return ins


def compile_decoded(image, decoded: DecodedFunction) -> PyCompiledFunction:
    """Translate one decoded function into a specialized Python callable."""
    try:
        key = (
            decoded.name,
            tuple(_freeze_instr(ins) for ins in decoded.code),
            tuple(decoded.pc_map),
            tuple(decoded.regs),
        )
    except TypeError:  # pragma: no cover - decoded code is always hashable
        key = None
    if key is not None:
        cached = _ARTIFACTS.get(key)
        if cached is not None:
            return cached
    emitter = _Emitter(decoded)
    source = emitter.generate()
    if os.environ.get("REPRO_PYCOMPILE_DUMP"):  # pragma: no cover - debug aid
        print(f"# --- pycompile {decoded.name} ---\n{source}")
    namespace = {
        "MachineFault": MachineFault,
        "_div": _div,
        "_mod": _mod,
        "_bail": _bail,
        "_reg_of": _reg_of,
        "_META": emitter.meta,
        "_REGS": tuple(str(reg) for reg in decoded.regs),
        "_NAME": decoded.name,
        "_IMAGE": image,
        "_DECODED": decoded,
        "_SLOT_NAMES": tuple(emitter.slot_ids),
    }
    code = compile(source, f"<pycompiled {decoded.name}>", "exec")
    exec(code, namespace)
    artifact = PyCompiledFunction(
        name=decoded.name,
        fn=namespace[emitter.fn_name()],
        source=source,
        blocks=sum(1 for b in emitter.blocks.values() if b.reachable),
        arms=len(emitter.arms),
    )
    if key is not None:
        if len(_ARTIFACTS) >= _ARTIFACTS_MAX:
            del _ARTIFACTS[next(iter(_ARTIFACTS))]
        _ARTIFACTS[key] = artifact
    return artifact
