"""Pre-decoded interpreter images: decode once, dispatch on small ints.

The slow dispatch loop in :mod:`repro.interp.machine` pays, per executed
instruction, for an ``Op`` enum identity ladder, label skipping, hashing
of :class:`~repro.ir.iloc.Reg` dataclasses, and a closure call per
operand read.  This module compiles a :class:`FunctionImage` once into a
dense decoded form that removes all of that from the hot loop:

* labels are stripped; branch and jump targets are pre-resolved to
  *decoded* pc integers;
* operands are unpacked out of :class:`~repro.ir.iloc.Instr` into flat
  per-op tuples whose first element is a small-int opcode;
* register operands become dense per-function integer indices (the
  register file is a dict keyed by those ints; ``DecodedFunction.regs``
  maps an index back to the original :class:`Reg` so fault messages are
  byte-identical to the slow path's);
* ``ldm``/``stm`` are split into spill/global variants so the address
  space test disappears from the loop.

``HANDLERS`` is the dispatch table: one handler per opcode, indexed by
the small int, called as ``pc = HANDLERS[op](machine, frame, regs, ins,
pc)``.  ``ret`` and ``call`` are *not* in the table — the machine's fast
dispatch loop handles them inline because both need to flush the
dispatch-local cycle counter (for the shared cycle budget and for fault
annotation).  Memory-traffic counters (loads/stores/copies) accumulate in
``frame.counts`` and are folded into :class:`~repro.interp.stats.Counters`
at frame exit, call boundaries, and faults.

Decoded code is machine-independent: a decoded image cached on its
:class:`FunctionImage` is shared by every machine (and every sweep cell)
executing that image.  ``pc_map`` maps each decoded pc back to the
original code index, so faults raised from the fast path are annotated in
original-code coordinates.

Semantics are replicated from the slow path expression by expression —
including operand evaluation order, the ``and``/``or`` short-circuit (an
uninitialized second operand only faults when the first operand forces
its evaluation), and counter increments *before* the (possibly faulting)
memory access — so fast and slow runs produce identical ``ExecStats`` and
identical ``MachineFault`` annotations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.iloc import Instr, Op, Reg
from .memory import MachineFault

# Late import target: machine.py imports this module lazily (first decode),
# at which point machine.py is fully initialized.
from .machine import _div, _mod

# -- small-int opcodes -------------------------------------------------------
# RET and CALL stay below 2 so the dispatch loop can test ``op > 1`` once
# and handle both inline (they must flush dispatch-local counters).

OP_RET = 0
OP_CALL = 1
OP_LOADI = 2
OP_ADD = 3
OP_SUB = 4
OP_MUL = 5
OP_DIV = 6
OP_MOD = 7
OP_NEG = 8
OP_CMP_LT = 9
OP_CMP_LE = 10
OP_CMP_GT = 11
OP_CMP_GE = 12
OP_CMP_EQ = 13
OP_CMP_NE = 14
OP_AND = 15
OP_OR = 16
OP_NOT = 17
OP_I2I = 18
OP_LOAD = 19
OP_STORE = 20
OP_LDM_SPILL = 21
OP_LDM_GLOBAL = 22
OP_STM_SPILL = 23
OP_STM_GLOBAL = 24
OP_LOADA = 25
OP_ALLOCA = 26
OP_CBR = 27
OP_JMP = 28
OP_PARAM = 29
OP_PRINT = 30
OP_NOP = 31


@dataclass
class DecodedFunction:
    """Dense decoded form of one :class:`FunctionImage`.

    ``code[pc]`` is a flat tuple whose first element is a small-int
    opcode; ``pc_map[pc]`` is the original-code index of that
    instruction; ``regs[i]`` is the :class:`Reg` behind dense register
    index ``i`` (for fault messages).
    """

    name: str
    code: Tuple[tuple, ...]
    pc_map: Tuple[int, ...]
    regs: Tuple[Reg, ...]


def decode_image(image) -> DecodedFunction:
    """Compile one :class:`FunctionImage` into its decoded form."""
    code = list(image.code)

    # Pass 1: strip labels, build decoded<->original pc maps.
    originals: List[Instr] = []
    pc_map: List[int] = []
    dec_of_orig: Dict[int, int] = {}
    for index, instr in enumerate(code):
        if instr.op is not Op.LABEL:
            dec_of_orig[index] = len(originals)
            pc_map.append(index)
            originals.append(instr)
    n_decoded = len(originals)

    # orig_to_dec[i]: decoded pc of the first non-label at or after i.
    orig_to_dec = [n_decoded] * (len(code) + 1)
    following = n_decoded
    for index in range(len(code) - 1, -1, -1):
        if code[index].op is not Op.LABEL:
            following = dec_of_orig[index]
        orig_to_dec[index] = following

    def target(label_name: str) -> int:
        return orig_to_dec[image.labels[label_name]]

    # Pass 2: dense register indices + per-op operand tuples.
    reg_index: Dict[Reg, int] = {}
    regs: List[Reg] = []

    def ri(reg: Reg) -> int:
        index = reg_index.get(reg)
        if index is None:
            index = reg_index[reg] = len(regs)
            regs.append(reg)
        return index

    def ri_opt(reg: Optional[Reg]) -> Optional[int]:
        return None if reg is None else ri(reg)

    decoded: List[tuple] = []
    for instr in originals:
        op = instr.op
        if op in _BINARY_CODE:
            decoded.append(
                (_BINARY_CODE[op], ri(instr.dst), ri(instr.srcs[0]), ri(instr.srcs[1]))
            )
        elif op is Op.LOADI:
            decoded.append((OP_LOADI, ri(instr.dst), instr.imm))
        elif op is Op.NEG:
            decoded.append((OP_NEG, ri(instr.dst), ri(instr.srcs[0])))
        elif op is Op.NOT:
            decoded.append((OP_NOT, ri(instr.dst), ri(instr.srcs[0])))
        elif op is Op.I2I:
            decoded.append((OP_I2I, ri(instr.dst), ri(instr.srcs[0])))
        elif op is Op.LOAD:
            decoded.append((OP_LOAD, ri(instr.dst), ri(instr.srcs[0])))
        elif op is Op.STORE:
            decoded.append((OP_STORE, ri(instr.srcs[0]), ri(instr.srcs[1])))
        elif op is Op.LDM:
            kind = OP_LDM_SPILL if instr.addr.space == "spill" else OP_LDM_GLOBAL
            decoded.append((kind, ri(instr.dst), instr.addr.name))
        elif op is Op.STM:
            kind = OP_STM_SPILL if instr.addr.space == "spill" else OP_STM_GLOBAL
            decoded.append((kind, instr.addr.name, ri(instr.srcs[0])))
        elif op is Op.LOADA:
            decoded.append((OP_LOADA, ri(instr.dst), instr.addr.name))
        elif op is Op.ALLOCA:
            decoded.append((OP_ALLOCA, ri(instr.dst), int(instr.imm)))
        elif op is Op.CBR:
            decoded.append(
                (OP_CBR, ri(instr.srcs[0]), target(instr.label), target(instr.label_false))
            )
        elif op is Op.JMP:
            decoded.append((OP_JMP, target(instr.label)))
        elif op is Op.PARAM:
            decoded.append((OP_PARAM, ri(instr.srcs[0])))
        elif op is Op.CALL:
            decoded.append((OP_CALL, instr.callee, ri_opt(instr.dst)))
        elif op is Op.RET:
            decoded.append((OP_RET, ri(instr.srcs[0]) if instr.srcs else None))
        elif op is Op.PRINT:
            decoded.append((OP_PRINT, ri(instr.srcs[0])))
        elif op is Op.NOP:
            decoded.append((OP_NOP,))
        else:
            raise ValueError(f"cannot decode {instr}")

    return DecodedFunction(
        name=image.name,
        code=tuple(decoded),
        pc_map=tuple(pc_map),
        regs=tuple(regs),
    )


_BINARY_CODE = {
    Op.ADD: OP_ADD,
    Op.SUB: OP_SUB,
    Op.MUL: OP_MUL,
    Op.DIV: OP_DIV,
    Op.MOD: OP_MOD,
    Op.CMP_LT: OP_CMP_LT,
    Op.CMP_LE: OP_CMP_LE,
    Op.CMP_GT: OP_CMP_GT,
    Op.CMP_GE: OP_CMP_GE,
    Op.CMP_EQ: OP_CMP_EQ,
    Op.CMP_NE: OP_CMP_NE,
    Op.AND: OP_AND,
    Op.OR: OP_OR,
}


# -- handlers ----------------------------------------------------------------
# Signature: handler(machine, frame, regs, ins, pc) -> next pc.  ``regs``
# is ``frame.regs`` hoisted by the dispatch loop; an uninitialized read
# surfaces as KeyError (dense int key) and is converted to the exact
# slow-path MachineFault by the loop.  Counter increments happen *before*
# the operand reads, mirroring the slow path's order on faulting runs.


def _h_loadi(m, fr, regs, ins, pc):
    regs[ins[1]] = ins[2]
    return pc + 1


def _h_add(m, fr, regs, ins, pc):
    regs[ins[1]] = regs[ins[2]] + regs[ins[3]]
    return pc + 1


def _h_sub(m, fr, regs, ins, pc):
    regs[ins[1]] = regs[ins[2]] - regs[ins[3]]
    return pc + 1


def _h_mul(m, fr, regs, ins, pc):
    regs[ins[1]] = regs[ins[2]] * regs[ins[3]]
    return pc + 1


def _h_div(m, fr, regs, ins, pc):
    regs[ins[1]] = _div(regs[ins[2]], regs[ins[3]])
    return pc + 1


def _h_mod(m, fr, regs, ins, pc):
    regs[ins[1]] = _mod(regs[ins[2]], regs[ins[3]])
    return pc + 1


def _h_neg(m, fr, regs, ins, pc):
    regs[ins[1]] = -regs[ins[2]]
    return pc + 1


def _h_cmp_lt(m, fr, regs, ins, pc):
    regs[ins[1]] = int(regs[ins[2]] < regs[ins[3]])
    return pc + 1


def _h_cmp_le(m, fr, regs, ins, pc):
    regs[ins[1]] = int(regs[ins[2]] <= regs[ins[3]])
    return pc + 1


def _h_cmp_gt(m, fr, regs, ins, pc):
    regs[ins[1]] = int(regs[ins[2]] > regs[ins[3]])
    return pc + 1


def _h_cmp_ge(m, fr, regs, ins, pc):
    regs[ins[1]] = int(regs[ins[2]] >= regs[ins[3]])
    return pc + 1


def _h_cmp_eq(m, fr, regs, ins, pc):
    regs[ins[1]] = int(regs[ins[2]] == regs[ins[3]])
    return pc + 1


def _h_cmp_ne(m, fr, regs, ins, pc):
    regs[ins[1]] = int(regs[ins[2]] != regs[ins[3]])
    return pc + 1


def _h_and(m, fr, regs, ins, pc):
    # Short-circuit exactly like the slow path: the second operand is only
    # read (and can only fault) when the first operand is truthy.
    regs[ins[1]] = int(bool(regs[ins[2]]) and bool(regs[ins[3]]))
    return pc + 1


def _h_or(m, fr, regs, ins, pc):
    regs[ins[1]] = int(bool(regs[ins[2]]) or bool(regs[ins[3]]))
    return pc + 1


def _h_not(m, fr, regs, ins, pc):
    regs[ins[1]] = int(not regs[ins[2]])
    return pc + 1


def _h_i2i(m, fr, regs, ins, pc):
    fr.counts[2] += 1
    regs[ins[1]] = regs[ins[2]]
    return pc + 1


def _h_load(m, fr, regs, ins, pc):
    fr.counts[0] += 1
    regs[ins[1]] = m.memory.load(regs[ins[2]])
    return pc + 1


def _h_store(m, fr, regs, ins, pc):
    # Slow path reads the address operand (srcs[1]) before the value.
    fr.counts[1] += 1
    m.memory.store(regs[ins[2]], regs[ins[1]])
    return pc + 1


def _h_ldm_spill(m, fr, regs, ins, pc):
    fr.counts[0] += 1
    regs[ins[1]] = fr.slots.get(ins[2], 0)
    return pc + 1


def _h_ldm_global(m, fr, regs, ins, pc):
    fr.counts[0] += 1
    regs[ins[1]] = m.memory.load_scalar(ins[2])
    return pc + 1


def _h_stm_spill(m, fr, regs, ins, pc):
    fr.counts[1] += 1
    fr.slots[ins[1]] = regs[ins[2]]
    return pc + 1


def _h_stm_global(m, fr, regs, ins, pc):
    fr.counts[1] += 1
    m.memory.store_scalar(ins[1], regs[ins[2]])
    return pc + 1


def _h_loada(m, fr, regs, ins, pc):
    try:
        base = m.memory.array_base[ins[2]]
    except KeyError:
        raise MachineFault(f"unknown global array {ins[2]!r}") from None
    regs[ins[1]] = base
    return pc + 1


def _h_alloca(m, fr, regs, ins, pc):
    regs[ins[1]] = m.memory.alloca(ins[2])
    return pc + 1


def _h_cbr(m, fr, regs, ins, pc):
    return ins[2] if regs[ins[1]] else ins[3]


def _h_jmp(m, fr, regs, ins, pc):
    return ins[1]


def _h_param(m, fr, regs, ins, pc):
    m._arg_queue.append(regs[ins[1]])
    return pc + 1


def _h_print(m, fr, regs, ins, pc):
    m.stats.output.append(regs[ins[1]])
    return pc + 1


def _h_nop(m, fr, regs, ins, pc):
    return pc + 1


#: Dispatch table indexed by small-int opcode.  RET/CALL slots are None —
#: the machine's fast dispatch loop handles them inline.
HANDLERS: Tuple[Optional[object], ...] = (
    None,           # OP_RET (inline)
    None,           # OP_CALL (inline)
    _h_loadi,
    _h_add,
    _h_sub,
    _h_mul,
    _h_div,
    _h_mod,
    _h_neg,
    _h_cmp_lt,
    _h_cmp_le,
    _h_cmp_gt,
    _h_cmp_ge,
    _h_cmp_eq,
    _h_cmp_ne,
    _h_and,
    _h_or,
    _h_not,
    _h_i2i,
    _h_load,
    _h_store,
    _h_ldm_spill,
    _h_ldm_global,
    _h_stm_spill,
    _h_stm_global,
    _h_loada,
    _h_alloca,
    _h_cbr,
    _h_jmp,
    _h_param,
    _h_print,
    _h_nop,
)
