"""Memory model of the iloc machine.

Three disjoint spaces, matching the IR's instruction split:

* the **data heap**, a flat word-addressed store holding global arrays
  (laid out at link time) and ``alloca``-ed local arrays (stack-bumped per
  activation) — accessed by ``load``/``store`` through address registers;
* **global scalars**, accessed by name with ``ldm``/``stm`` on
  ``global``-space symbols, shared across the whole program;
* **spill slots**, accessed by name with ``ldm``/``stm`` on
  ``spill``-space symbols, private to one activation (so recursion cannot
  corrupt a caller's spilled values).

Uninitialized heap cells and scalars read as 0/0.0 — like C statics —
while uninitialized *registers* raise, to surface allocator bugs loudly.
"""

from __future__ import annotations

from typing import Dict, List, Union

from ..pdg.graph import GlobalVar

Number = Union[int, float]

#: Base address of the first global array; nothing magic, just nonzero so
#: accidental null-ish addresses fault in tests.
GLOBAL_BASE = 0x1000

#: Stack (alloca) area starts above all globals.
STACK_GAP = 0x1000


class Memory:
    """The data heap plus the global-scalar store."""

    def __init__(self, globals_: List[GlobalVar]):
        self.heap: Dict[int, Number] = {}
        self.scalars: Dict[str, Number] = {}
        self.array_base: Dict[str, int] = {}
        address = GLOBAL_BASE
        for var in globals_:
            if var.is_array:
                self.array_base[var.name] = address
                address += var.size
            else:
                self.scalars[var.name] = (
                    var.init
                    if var.init is not None
                    else (0 if var.base_type == "int" else 0.0)
                )
        self.stack_base = address + STACK_GAP
        self.stack_top = self.stack_base

    # -- heap ------------------------------------------------------------------

    def load(self, address: Number) -> Number:
        self._check_address(address)
        return self.heap.get(int(address), 0)

    def store(self, address: Number, value: Number) -> None:
        self._check_address(address)
        self.heap[int(address)] = value

    @staticmethod
    def _check_address(address: Number) -> None:
        if not isinstance(address, int):
            raise MachineFault(f"non-integer heap address {address!r}")
        if address < 0:
            raise MachineFault(f"negative heap address {address}")

    # -- global scalars -----------------------------------------------------------

    def load_scalar(self, name: str) -> Number:
        return self.scalars.get(name, 0)

    def store_scalar(self, name: str, value: Number) -> None:
        self.scalars[name] = value

    # -- stack ---------------------------------------------------------------------

    def alloca(self, count: int) -> int:
        base = self.stack_top
        self.stack_top += count
        return base

    def release_to(self, mark: int) -> None:
        self.stack_top = mark


class MachineFault(Exception):
    """A runtime fault in the interpreted program (bad address, etc.).

    Carries where it happened: the function and program counter of the
    faulting instruction plus the number of cycles executed so far.  The
    dispatch loop fills these via :meth:`annotate` as the fault unwinds;
    only the innermost frame's values stick, so a fault inside a callee
    reports the callee, not ``main``.
    """

    def __init__(
        self,
        message: str,
        function: "str | None" = None,
        pc: "int | None" = None,
        cycles: "int | None" = None,
    ):
        super().__init__(message)
        self.message = message
        self.function = function
        self.pc = pc
        self.cycles = cycles

    def annotate(
        self,
        function: "str | None" = None,
        pc: "int | None" = None,
        cycles: "int | None" = None,
    ) -> "MachineFault":
        """Fill in execution context without overwriting inner frames'."""
        if self.function is None:
            self.function = function
        if self.pc is None:
            self.pc = pc
        if self.cycles is None:
            self.cycles = cycles
        return self

    def where(self) -> str:
        parts = []
        if self.function is not None:
            parts.append(f"function={self.function}")
        if self.pc is not None:
            parts.append(f"pc={self.pc}")
        if self.cycles is not None:
            parts.append(f"cycle={self.cycles}")
        return ", ".join(parts)

    def __str__(self) -> str:
        where = self.where()
        return f"{self.message} ({where})" if where else self.message
