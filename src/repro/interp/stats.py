"""Execution statistics collected by the iloc interpreter.

Table 1 of the paper reports the percentage decrease in *total executed
cycles* (at one cycle per instruction) between GRA- and RAP-allocated
code, decomposed into the portions attributable to loads, stores, and
copy statements.  These counters are exactly what is needed to rebuild
that table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class Counters:
    """Instruction counters for one scope (whole program or one routine)."""

    cycles: int = 0
    loads: int = 0
    stores: int = 0
    copies: int = 0

    def add(self, other: "Counters") -> None:
        self.cycles += other.cycles
        self.loads += other.loads
        self.stores += other.stores
        self.copies += other.copies

    def as_dict(self) -> Dict[str, int]:
        return {
            "cycles": self.cycles,
            "loads": self.loads,
            "stores": self.stores,
            "copies": self.copies,
        }


@dataclass
class ExecStats:
    """Result of one program execution."""

    total: Counters = field(default_factory=Counters)
    #: per-routine counters (cycles spent inside each function body,
    #: excluding its callees) — this is how the paper reports e.g. the
    #: Stanford routines ``fit``, ``place``, ``trial`` individually.
    per_function: Dict[str, Counters] = field(default_factory=dict)
    output: list = field(default_factory=list)
    #: which interpreter tier executed the run ("slow"/"fast"/"compiled");
    #: excluded from equality — the whole point of the tiers is that runs
    #: on different ones compare equal on every observable counter.
    interp_tier: "str | None" = field(default=None, compare=False)

    def function(self, name: str) -> Counters:
        if name not in self.per_function:
            self.per_function[name] = Counters()
        return self.per_function[name]
