"""The iloc interpreter: machine, memory model, statistics, tracing."""

from .machine import (
    FunctionImage,
    Machine,
    MachineFault,
    ProgramImage,
    Tracer,
    run_program,
)
from .memory import Memory
from .stats import Counters, ExecStats

__all__ = [
    "Machine",
    "MachineFault",
    "ProgramImage",
    "FunctionImage",
    "Tracer",
    "run_program",
    "Memory",
    "ExecStats",
    "Counters",
]
