"""Abstract syntax tree for Mini-C.

Every expression node carries a ``ty`` slot which the semantic analyzer
(:mod:`repro.frontend.sema`) fills in with ``"int"`` or ``"float"``; the
IR builder relies on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from .errors import SourceLocation

# Scalar type names used throughout the compiler.
INT = "int"
FLOAT = "float"
VOID = "void"


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for all expression nodes."""

    location: SourceLocation
    ty: Optional[str] = field(default=None, init=False, compare=False)


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class Name(Expr):
    """A reference to a scalar variable (or a bare array name as a call arg)."""

    name: str = ""


@dataclass
class Index(Expr):
    """An array element access ``a[i]`` or ``a[i][j]``."""

    name: str = ""
    indices: List[Expr] = field(default_factory=list)


@dataclass
class Binary(Expr):
    """A binary operation; ``op`` is the surface operator text (``+``, ``<=``, ``&&`` ...)."""

    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class Unary(Expr):
    """A unary operation: ``-`` (negation) or ``!`` (logical not)."""

    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Call(Expr):
    """A function call; usable both as an expression and as a statement."""

    callee: str = ""
    args: List[Expr] = field(default_factory=list)


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for all statement nodes."""

    location: SourceLocation


@dataclass
class VarDecl(Stmt):
    """A variable declaration, scalar or array.

    ``dims`` is empty for scalars, otherwise a list of one or two constant
    extents.  ``init`` (scalars only) is an optional initializer expression.
    """

    name: str = ""
    base_type: str = INT
    dims: List[int] = field(default_factory=list)
    init: Optional[Expr] = None

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def size(self) -> int:
        """Number of elements (1 for scalars)."""
        total = 1
        for extent in self.dims:
            total *= extent
        return total


@dataclass
class Assign(Stmt):
    """``target = value;`` where target is a scalar name or array element."""

    target: Union[Name, Index] = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: List[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    """``for (init; cond; update) body`` with assignment init/update clauses."""

    init: Optional[Assign] = None
    cond: Optional[Expr] = None
    update: Optional[Assign] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Print(Stmt):
    value: Expr = None  # type: ignore[assignment]


@dataclass
class ExprStmt(Stmt):
    """A bare call used for its side effects: ``f(x);``."""

    call: Call = None  # type: ignore[assignment]


# --------------------------------------------------------------------------
# Declarations
# --------------------------------------------------------------------------


@dataclass
class Param:
    """A formal parameter.  ``dims`` non-empty means an array parameter.

    One-dimensional array parameters are passed by reference (the argument
    is the base address).  Two-dimensional array parameters carry their
    column extent in ``dims[1]`` (``dims[0]`` is 0, meaning "unspecified").
    """

    name: str
    base_type: str
    location: SourceLocation
    dims: List[int] = field(default_factory=list)

    @property
    def is_array(self) -> bool:
        return bool(self.dims)


@dataclass
class FuncDecl:
    """A function definition."""

    name: str
    ret_type: str
    params: List[Param]
    body: List[Stmt]
    location: SourceLocation


@dataclass
class Program:
    """A whole Mini-C translation unit: globals plus function definitions."""

    globals: List[VarDecl] = field(default_factory=list)
    functions: List[FuncDecl] = field(default_factory=list)

    def function(self, name: str) -> FuncDecl:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(name)


def walk_stmts(stmts: List[Stmt]):
    """Yield every statement in ``stmts`` recursively (pre-order)."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_stmts(stmt.then_body)
            yield from walk_stmts(stmt.else_body)
        elif isinstance(stmt, While):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, For):
            yield from walk_stmts(stmt.body)
