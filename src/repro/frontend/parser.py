"""Recursive-descent parser for Mini-C.

Grammar (EBNF):

.. code-block:: text

    program   := (global_decl | func_decl)*
    decl_head := ('int' | 'float' | 'void') IDENT
    global    := decl_head ('[' INT ']' ('[' INT ']')?)? ('=' expr)? ';'
    function  := decl_head '(' [param {',' param}] ')' block
    param     := ('int'|'float') IDENT ('[' ']' ('[' INT ']')?)?
    block     := '{' {stmt} '}'
    stmt      := var_decl ';' | assign ';' | call ';' | if | while | for
               | 'return' [expr] ';' | 'print' '(' expr ')' ';'
    assign    := lvalue '=' expr
    lvalue    := IDENT {'[' expr ']'}
    expr      := standard C precedence: || && == != < <= > >= + - * / % unary

Expressions are side-effect free except calls; assignment is a statement,
which keeps the PDG construction (one region node per source statement)
well defined exactly as in the ``pdgcc`` front end the paper used.
"""

from __future__ import annotations

from typing import List, Optional, Union

from . import ast
from .errors import ParseError
from .lexer import tokenize
from .tokens import Token, TokenKind

_TYPE_KINDS = (TokenKind.KW_INT, TokenKind.KW_FLOAT, TokenKind.KW_VOID)


class Parser:
    """Parses a token stream into a :class:`repro.frontend.ast.Program`."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _expect(self, kind: TokenKind) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise ParseError(
                f"expected {kind.value!r}, found {token.text or token.kind.value!r}",
                token.location,
            )
        return self._advance()

    def _match(self, kind: TokenKind) -> Optional[Token]:
        if self._at(kind):
            return self._advance()
        return None

    # -- program structure --------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while not self._at(TokenKind.EOF):
            token = self._peek()
            if token.kind not in _TYPE_KINDS:
                raise ParseError(
                    f"expected declaration, found {token.text!r}", token.location
                )
            # Lookahead past `type IDENT` to see `(` (function) or not (global).
            if self._peek(2).kind is TokenKind.LPAREN:
                program.functions.append(self._parse_function())
            else:
                program.globals.append(self._parse_var_decl(global_scope=True))
        return program

    def _parse_type(self, allow_void: bool = False) -> str:
        token = self._advance()
        if token.kind is TokenKind.KW_INT:
            return ast.INT
        if token.kind is TokenKind.KW_FLOAT:
            return ast.FLOAT
        if token.kind is TokenKind.KW_VOID and allow_void:
            return ast.VOID
        raise ParseError(f"expected type, found {token.text!r}", token.location)

    def _parse_function(self) -> ast.FuncDecl:
        location = self._peek().location
        ret_type = self._parse_type(allow_void=True)
        name = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.LPAREN)
        params: List[ast.Param] = []
        if not self._at(TokenKind.RPAREN):
            params.append(self._parse_param())
            while self._match(TokenKind.COMMA):
                params.append(self._parse_param())
        self._expect(TokenKind.RPAREN)
        body = self._parse_block()
        return ast.FuncDecl(name, ret_type, params, body, location)

    def _parse_param(self) -> ast.Param:
        location = self._peek().location
        base_type = self._parse_type()
        name = self._expect(TokenKind.IDENT).text
        dims: List[int] = []
        if self._match(TokenKind.LBRACKET):
            self._expect(TokenKind.RBRACKET)
            dims.append(0)
            if self._match(TokenKind.LBRACKET):
                extent = self._expect(TokenKind.INT_LIT)
                self._expect(TokenKind.RBRACKET)
                dims.append(int(extent.value))  # type: ignore[arg-type]
        return ast.Param(name, base_type, location, dims)

    def _parse_var_decl(self, global_scope: bool = False) -> ast.VarDecl:
        location = self._peek().location
        base_type = self._parse_type()
        name = self._expect(TokenKind.IDENT).text
        dims: List[int] = []
        while self._match(TokenKind.LBRACKET):
            extent = self._expect(TokenKind.INT_LIT)
            if int(extent.value) <= 0:  # type: ignore[arg-type]
                raise ParseError("array extent must be positive", extent.location)
            dims.append(int(extent.value))  # type: ignore[arg-type]
            self._expect(TokenKind.RBRACKET)
        if len(dims) > 2:
            raise ParseError("at most two array dimensions supported", location)
        init: Optional[ast.Expr] = None
        if self._match(TokenKind.ASSIGN):
            if dims:
                raise ParseError("array initializers are not supported", location)
            init = self._parse_expr()
        self._expect(TokenKind.SEMI)
        return ast.VarDecl(location, name, base_type, dims, init)

    # -- statements ----------------------------------------------------------

    def _parse_block(self) -> List[ast.Stmt]:
        self._expect(TokenKind.LBRACE)
        stmts: List[ast.Stmt] = []
        while not self._at(TokenKind.RBRACE):
            stmts.append(self._parse_stmt())
        self._expect(TokenKind.RBRACE)
        return stmts

    def _parse_body(self) -> List[ast.Stmt]:
        """A statement body: either a braced block or a single statement."""
        if self._at(TokenKind.LBRACE):
            return self._parse_block()
        return [self._parse_stmt()]

    def _parse_stmt(self) -> ast.Stmt:
        token = self._peek()
        if token.kind in (TokenKind.KW_INT, TokenKind.KW_FLOAT):
            return self._parse_var_decl()
        if token.kind is TokenKind.KW_IF:
            return self._parse_if()
        if token.kind is TokenKind.KW_WHILE:
            return self._parse_while()
        if token.kind is TokenKind.KW_FOR:
            return self._parse_for()
        if token.kind is TokenKind.KW_RETURN:
            return self._parse_return()
        if token.kind is TokenKind.KW_PRINT:
            return self._parse_print()
        if token.kind is TokenKind.IDENT:
            if self._peek(1).kind is TokenKind.LPAREN:
                call = self._parse_primary()
                assert isinstance(call, ast.Call)
                self._expect(TokenKind.SEMI)
                return ast.ExprStmt(token.location, call)
            stmt = self._parse_assign()
            self._expect(TokenKind.SEMI)
            return stmt
        raise ParseError(f"expected statement, found {token.text!r}", token.location)

    def _parse_assign(self) -> ast.Assign:
        location = self._peek().location
        target = self._parse_lvalue()
        self._expect(TokenKind.ASSIGN)
        value = self._parse_expr()
        return ast.Assign(location, target, value)

    def _parse_lvalue(self) -> Union[ast.Name, ast.Index]:
        token = self._expect(TokenKind.IDENT)
        if self._at(TokenKind.LBRACKET):
            indices: List[ast.Expr] = []
            while self._match(TokenKind.LBRACKET):
                indices.append(self._parse_expr())
                self._expect(TokenKind.RBRACKET)
            if len(indices) > 2:
                raise ParseError("at most two array dimensions", token.location)
            return ast.Index(token.location, token.text, indices)
        return ast.Name(token.location, token.text)

    def _parse_if(self) -> ast.If:
        location = self._expect(TokenKind.KW_IF).location
        self._expect(TokenKind.LPAREN)
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN)
        then_body = self._parse_body()
        else_body: List[ast.Stmt] = []
        if self._match(TokenKind.KW_ELSE):
            else_body = self._parse_body()
        return ast.If(location, cond, then_body, else_body)

    def _parse_while(self) -> ast.While:
        location = self._expect(TokenKind.KW_WHILE).location
        self._expect(TokenKind.LPAREN)
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN)
        body = self._parse_body()
        return ast.While(location, cond, body)

    def _parse_for(self) -> ast.For:
        location = self._expect(TokenKind.KW_FOR).location
        self._expect(TokenKind.LPAREN)
        init = None if self._at(TokenKind.SEMI) else self._parse_assign()
        self._expect(TokenKind.SEMI)
        cond = None if self._at(TokenKind.SEMI) else self._parse_expr()
        self._expect(TokenKind.SEMI)
        update = None if self._at(TokenKind.RPAREN) else self._parse_assign()
        self._expect(TokenKind.RPAREN)
        body = self._parse_body()
        return ast.For(location, init, cond, update, body)

    def _parse_return(self) -> ast.Return:
        location = self._expect(TokenKind.KW_RETURN).location
        value = None if self._at(TokenKind.SEMI) else self._parse_expr()
        self._expect(TokenKind.SEMI)
        return ast.Return(location, value)

    def _parse_print(self) -> ast.Print:
        location = self._expect(TokenKind.KW_PRINT).location
        self._expect(TokenKind.LPAREN)
        value = self._parse_expr()
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.SEMI)
        return ast.Print(location, value)

    # -- expressions ---------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_binary_level(self, sub, kinds) -> ast.Expr:
        left = sub()
        while self._peek().kind in kinds:
            op = self._advance()
            right = sub()
            left = ast.Binary(op.location, op.text, left, right)
        return left

    def _parse_or(self) -> ast.Expr:
        return self._parse_binary_level(self._parse_and, (TokenKind.OR,))

    def _parse_and(self) -> ast.Expr:
        return self._parse_binary_level(self._parse_equality, (TokenKind.AND,))

    def _parse_equality(self) -> ast.Expr:
        return self._parse_binary_level(
            self._parse_relational, (TokenKind.EQ, TokenKind.NE)
        )

    def _parse_relational(self) -> ast.Expr:
        return self._parse_binary_level(
            self._parse_additive,
            (TokenKind.LT, TokenKind.LE, TokenKind.GT, TokenKind.GE),
        )

    def _parse_additive(self) -> ast.Expr:
        return self._parse_binary_level(
            self._parse_multiplicative, (TokenKind.PLUS, TokenKind.MINUS)
        )

    def _parse_multiplicative(self) -> ast.Expr:
        return self._parse_binary_level(
            self._parse_unary, (TokenKind.STAR, TokenKind.SLASH, TokenKind.PERCENT)
        )

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind in (TokenKind.MINUS, TokenKind.NOT):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(token.location, token.text, operand)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT_LIT:
            self._advance()
            return ast.IntLit(token.location, int(token.value))  # type: ignore[arg-type]
        if token.kind is TokenKind.FLOAT_LIT:
            self._advance()
            return ast.FloatLit(token.location, float(token.value))  # type: ignore[arg-type]
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN)
            return expr
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._match(TokenKind.LPAREN):
                args: List[ast.Expr] = []
                if not self._at(TokenKind.RPAREN):
                    args.append(self._parse_expr())
                    while self._match(TokenKind.COMMA):
                        args.append(self._parse_expr())
                self._expect(TokenKind.RPAREN)
                return ast.Call(token.location, token.text, args)
            if self._at(TokenKind.LBRACKET):
                indices: List[ast.Expr] = []
                while self._match(TokenKind.LBRACKET):
                    indices.append(self._parse_expr())
                    self._expect(TokenKind.RBRACKET)
                if len(indices) > 2:
                    raise ParseError("at most two array dimensions", token.location)
                return ast.Index(token.location, token.text, indices)
            return ast.Name(token.location, token.text)
        raise ParseError(f"expected expression, found {token.text!r}", token.location)


def parse(source: str, filename: str = "<string>") -> ast.Program:
    """Parse Mini-C ``source`` into an (untyped) AST."""
    return Parser(tokenize(source, filename)).parse_program()
