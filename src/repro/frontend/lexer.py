"""Hand-written lexer for Mini-C.

Mini-C is the small imperative language in which all benchmark programs of
this reproduction are written.  It is a strict subset of C: ``int`` and
``float`` scalars, fixed-size one- and two-dimensional arrays, functions
with recursion, ``if``/``while``/``for`` control flow, and a ``print``
builtin used by the test suite to compare observable behaviour across
register allocators.

The lexer supports ``//`` line comments and ``/* ... */`` block comments.
"""

from __future__ import annotations

from typing import Iterator, List

from .errors import LexError, SourceLocation
from .tokens import KEYWORDS, Token, TokenKind

_TWO_CHAR_OPS = {
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
}

_ONE_CHAR_OPS = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "!": TokenKind.NOT,
}


class Lexer:
    """Converts Mini-C source text into a stream of :class:`Token`."""

    def __init__(self, source: str, filename: str = "<string>"):
        self._source = source
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokens(self) -> Iterator[Token]:
        """Yield every token in the source, ending with a single EOF token."""
        while True:
            self._skip_trivia()
            if self._pos >= len(self._source):
                yield Token(TokenKind.EOF, "", self._location())
                return
            yield self._next_token()

    def _location(self) -> SourceLocation:
        return SourceLocation(self._line, self._col, self._filename)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._source):
            return self._source[index]
        return ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._source):
                return
            if self._source[self._pos] == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
            self._pos += 1

    def _skip_trivia(self) -> None:
        while self._pos < len(self._source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self._pos >= len(self._source):
                        raise LexError("unterminated block comment", start)
                    self._advance()
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        location = self._location()
        ch = self._peek()

        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number(location)
        if ch.isalpha() or ch == "_":
            return self._lex_identifier(location)

        two = ch + self._peek(1)
        if two in _TWO_CHAR_OPS:
            self._advance(2)
            return Token(_TWO_CHAR_OPS[two], two, location)
        if ch in _ONE_CHAR_OPS:
            self._advance()
            return Token(_ONE_CHAR_OPS[ch], ch, location)

        raise LexError(f"unexpected character {ch!r}", location)

    def _lex_number(self, location: SourceLocation) -> Token:
        start = self._pos
        is_float = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == ".":
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E"):
            is_float = True
            self._advance()
            if self._peek() in ("+", "-"):
                self._advance()
            if not self._peek().isdigit():
                raise LexError("malformed exponent", self._location())
            while self._peek().isdigit():
                self._advance()
        text = self._source[start:self._pos]
        if is_float:
            return Token(TokenKind.FLOAT_LIT, text, location, float(text))
        return Token(TokenKind.INT_LIT, text, location, int(text))

    def _lex_identifier(self, location: SourceLocation) -> Token:
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._source[start:self._pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, location)


def tokenize(source: str, filename: str = "<string>") -> List[Token]:
    """Tokenize ``source`` and return the complete token list (incl. EOF)."""
    return list(Lexer(source, filename).tokens())
