"""Token definitions for the Mini-C lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from .errors import SourceLocation


class TokenKind(enum.Enum):
    """Every terminal of the Mini-C grammar."""

    # Literals and identifiers.
    INT_LIT = "int_lit"
    FLOAT_LIT = "float_lit"
    IDENT = "ident"

    # Keywords.
    KW_INT = "int"
    KW_FLOAT = "float"
    KW_VOID = "void"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_FOR = "for"
    KW_RETURN = "return"
    KW_PRINT = "print"

    # Punctuation.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMI = ";"

    # Operators.
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "&&"
    OR = "||"
    NOT = "!"

    EOF = "<eof>"


KEYWORDS = {
    "int": TokenKind.KW_INT,
    "float": TokenKind.KW_FLOAT,
    "void": TokenKind.KW_VOID,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "for": TokenKind.KW_FOR,
    "return": TokenKind.KW_RETURN,
    "print": TokenKind.KW_PRINT,
}


@dataclass(frozen=True)
class Token:
    """A single lexeme with its decoded value and source location."""

    kind: TokenKind
    text: str
    location: SourceLocation
    value: Union[int, float, None] = None

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})"
