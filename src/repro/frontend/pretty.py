"""Mini-C unparser.

Turns an AST back into source text that parses to an equivalent AST —
pinned by a round-trip property test over the random program generator.
Useful for dumping minimized fuzzer findings and for the CLI's diagnostic
output.
"""

from __future__ import annotations

from typing import List

from . import ast

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}

_UNARY_PRECEDENCE = 7


def pretty_expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    """Render one expression, parenthesizing only where needed."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.FloatLit):
        text = repr(expr.value)
        return text if ("." in text or "e" in text or "n" in text) else text + ".0"
    if isinstance(expr, ast.Name):
        return expr.name
    if isinstance(expr, ast.Index):
        indices = "".join(f"[{pretty_expr(i)}]" for i in expr.indices)
        return f"{expr.name}{indices}"
    if isinstance(expr, ast.Call):
        args = ", ".join(pretty_expr(a) for a in expr.args)
        return f"{expr.callee}({args})"
    if isinstance(expr, ast.Unary):
        inner = pretty_expr(expr.operand, _UNARY_PRECEDENCE)
        text = f"{expr.op}{inner}"
        # `--x` would lex as two minus tokens... it actually lexes as two
        # separate MINUS tokens and parses as -(-x); still, keep a space
        # for readability when nesting the same operator.
        if expr.op == "-" and inner.startswith("-"):
            text = f"-({inner})"
        return text if parent_prec < _UNARY_PRECEDENCE else f"({text})"
    if isinstance(expr, ast.Binary):
        prec = _PRECEDENCE[expr.op]
        left = pretty_expr(expr.left, prec - 1)   # left-assoc: allow equal
        right = pretty_expr(expr.right, prec)     # right side needs higher
        text = f"{left} {expr.op} {right}"
        return text if parent_prec < prec else f"({text})"
    raise TypeError(f"cannot pretty-print {type(expr).__name__}")


def _pretty_stmt(stmt: ast.Stmt, indent: int, out: List[str]) -> None:
    pad = "    " * indent

    if isinstance(stmt, ast.VarDecl):
        dims = "".join(f"[{d}]" for d in stmt.dims)
        init = f" = {pretty_expr(stmt.init)}" if stmt.init is not None else ""
        out.append(f"{pad}{stmt.base_type} {stmt.name}{dims}{init};")
    elif isinstance(stmt, ast.Assign):
        target = pretty_expr(stmt.target)
        out.append(f"{pad}{target} = {pretty_expr(stmt.value)};")
    elif isinstance(stmt, ast.If):
        out.append(f"{pad}if ({pretty_expr(stmt.cond)}) {{")
        for inner in stmt.then_body:
            _pretty_stmt(inner, indent + 1, out)
        if stmt.else_body:
            out.append(f"{pad}}} else {{")
            for inner in stmt.else_body:
                _pretty_stmt(inner, indent + 1, out)
        out.append(f"{pad}}}")
    elif isinstance(stmt, ast.While):
        out.append(f"{pad}while ({pretty_expr(stmt.cond)}) {{")
        for inner in stmt.body:
            _pretty_stmt(inner, indent + 1, out)
        out.append(f"{pad}}}")
    elif isinstance(stmt, ast.For):
        init = _clause(stmt.init)
        cond = pretty_expr(stmt.cond) if stmt.cond is not None else ""
        update = _clause(stmt.update)
        out.append(f"{pad}for ({init}; {cond}; {update}) {{")
        for inner in stmt.body:
            _pretty_stmt(inner, indent + 1, out)
        out.append(f"{pad}}}")
    elif isinstance(stmt, ast.Return):
        if stmt.value is None:
            out.append(f"{pad}return;")
        else:
            out.append(f"{pad}return {pretty_expr(stmt.value)};")
    elif isinstance(stmt, ast.Print):
        out.append(f"{pad}print({pretty_expr(stmt.value)});")
    elif isinstance(stmt, ast.ExprStmt):
        out.append(f"{pad}{pretty_expr(stmt.call)};")
    else:
        raise TypeError(f"cannot pretty-print {type(stmt).__name__}")


def _clause(stmt) -> str:
    if stmt is None:
        return ""
    assert isinstance(stmt, ast.Assign)
    return f"{pretty_expr(stmt.target)} = {pretty_expr(stmt.value)}"


def pretty_program(program: ast.Program) -> str:
    """Render a whole translation unit."""
    out: List[str] = []
    for decl in program.globals:
        _pretty_stmt(decl, 0, out)
    for func in program.functions:
        params = ", ".join(_pretty_param(p) for p in func.params)
        out.append(f"{func.ret_type} {func.name}({params}) {{")
        for stmt in func.body:
            _pretty_stmt(stmt, 1, out)
        out.append("}")
    return "\n".join(out) + "\n"


def _pretty_param(param: ast.Param) -> str:
    if not param.is_array:
        return f"{param.base_type} {param.name}"
    if len(param.dims) == 2:
        return f"{param.base_type} {param.name}[][{param.dims[1]}]"
    return f"{param.base_type} {param.name}[]"
