"""Diagnostic types shared by the Mini-C front end.

All front-end failures raise a subclass of :class:`FrontendError` carrying a
source location so callers (tests, the CLI driver, the benchmark harness)
can report *where* a benchmark source is malformed rather than just *that*
it is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SourceLocation:
    """A position in a Mini-C source file (1-based line and column)."""

    line: int
    column: int
    filename: str = "<string>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class FrontendError(Exception):
    """Base class for all lexer / parser / semantic errors."""

    def __init__(self, message: str, location: Optional[SourceLocation] = None):
        self.message = message
        self.location = location
        if location is not None:
            super().__init__(f"{location}: {message}")
        else:
            super().__init__(message)


class LexError(FrontendError):
    """An invalid character or malformed literal was encountered."""


class ParseError(FrontendError):
    """The token stream does not conform to the Mini-C grammar."""


class SemanticError(FrontendError):
    """The program is grammatical but ill-typed or ill-formed."""
