"""Mini-C front end: lexer, parser, semantic analysis, unparser.

This package stands in for ``pdgcc``, the University of Pittsburgh C-to-PDG
compiler used as the front end in the paper.  It accepts a C subset rich
enough to express all 37 evaluation routines (Livermore loops, Linpack,
heapsort, hanoi, sieve, and the Stanford routines); see docs/LANGUAGE.md.
"""

from .errors import FrontendError, LexError, ParseError, SemanticError
from .lexer import tokenize
from .parser import parse
from .pretty import pretty_expr, pretty_program
from .sema import SemaInfo, analyze

__all__ = [
    "FrontendError",
    "LexError",
    "ParseError",
    "SemanticError",
    "tokenize",
    "parse",
    "analyze",
    "SemaInfo",
    "pretty_program",
    "pretty_expr",
]
