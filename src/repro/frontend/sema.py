"""Semantic analysis for Mini-C.

Type-checks a parsed :class:`~repro.frontend.ast.Program`, resolves every
name to a :class:`VarSymbol`, and annotates every expression node with its
type (``"int"`` or ``"float"``).  The IR builder consumes the annotations.

Rules (deliberately a strict subset of C):

* scalars are ``int`` or ``float``; mixed arithmetic promotes to ``float``;
* ``%`` and the logical operators require ``int`` operands; comparisons
  yield ``int``;
* assignments and argument passing may promote ``int`` to ``float`` but
  never demote;
* array parameters are passed by reference; a bare array name is only legal
  as a call argument; dimension counts must match exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from . import ast
from .errors import SemanticError


@dataclass
class VarSymbol:
    """Resolution result for a variable reference."""

    name: str
    kind: str  # "global" | "local" | "param"
    base_type: str
    dims: List[int] = field(default_factory=list)

    @property
    def is_array(self) -> bool:
        return bool(self.dims)


@dataclass
class FuncSymbol:
    """Signature of a declared function."""

    name: str
    ret_type: str
    params: List[ast.Param]


class SemaInfo:
    """The result of semantic analysis over one program."""

    def __init__(self) -> None:
        self.globals: Dict[str, VarSymbol] = {}
        self.functions: Dict[str, FuncSymbol] = {}


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.symbols: Dict[str, VarSymbol] = {}

    def declare(self, symbol: VarSymbol, location) -> None:
        if symbol.name in self.symbols:
            raise SemanticError(f"redeclaration of {symbol.name!r}", location)
        self.symbols[symbol.name] = symbol

    def lookup(self, name: str) -> Optional[VarSymbol]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


def analyze(program: ast.Program) -> SemaInfo:
    """Type-check ``program`` in place and return the symbol information."""
    info = SemaInfo()

    for decl in program.globals:
        if decl.name in info.globals:
            raise SemanticError(f"redeclaration of global {decl.name!r}", decl.location)
        if decl.init is not None and not _is_constant(decl.init):
            raise SemanticError(
                "global initializers must be constant literals", decl.location
            )
        info.globals[decl.name] = VarSymbol(
            decl.name, "global", decl.base_type, list(decl.dims)
        )

    for func in program.functions:
        if func.name in info.functions:
            raise SemanticError(f"redefinition of function {func.name!r}", func.location)
        info.functions[func.name] = FuncSymbol(func.name, func.ret_type, func.params)

    for func in program.functions:
        _FunctionChecker(info, func).check()

    return info


def _is_constant(expr: ast.Expr) -> bool:
    if isinstance(expr, (ast.IntLit, ast.FloatLit)):
        return True
    if isinstance(expr, ast.Unary) and expr.op == "-":
        return _is_constant(expr.operand)
    return False


def constant_value(expr: ast.Expr):
    """Evaluate a constant initializer expression."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.FloatLit):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "-":
        return -constant_value(expr.operand)
    raise SemanticError("not a constant expression", expr.location)


class _FunctionChecker:
    def __init__(self, info: SemaInfo, func: ast.FuncDecl):
        self._info = info
        self._func = func

    def check(self) -> None:
        scope = _Scope()
        for param in self._func.params:
            symbol = VarSymbol(param.name, "param", param.base_type, list(param.dims))
            scope.declare(symbol, param.location)
            param.symbol = symbol  # type: ignore[attr-defined]
        self._check_body(self._func.body, scope)

    # -- statements ---------------------------------------------------------

    def _check_body(self, stmts: List[ast.Stmt], scope: _Scope) -> None:
        inner = _Scope(scope)
        for stmt in stmts:
            self._check_stmt(stmt, inner)

    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                init_ty = self._check_expr(stmt.init, scope)
                self._require_assignable(stmt.base_type, init_ty, stmt.location)
            symbol = VarSymbol(stmt.name, "local", stmt.base_type, list(stmt.dims))
            scope.declare(symbol, stmt.location)
            stmt.symbol = symbol  # type: ignore[attr-defined]
        elif isinstance(stmt, ast.Assign):
            target_ty = self._check_lvalue(stmt.target, scope)
            value_ty = self._check_expr(stmt.value, scope)
            self._require_assignable(target_ty, value_ty, stmt.location)
        elif isinstance(stmt, ast.If):
            self._require_int(self._check_expr(stmt.cond, scope), stmt.cond)
            self._check_body(stmt.then_body, scope)
            self._check_body(stmt.else_body, scope)
        elif isinstance(stmt, ast.While):
            self._require_int(self._check_expr(stmt.cond, scope), stmt.cond)
            self._check_body(stmt.body, scope)
        elif isinstance(stmt, ast.For):
            # The loop clauses share the body scope's parent, as in C.
            if stmt.init is not None:
                self._check_stmt(stmt.init, scope)
            if stmt.cond is not None:
                self._require_int(self._check_expr(stmt.cond, scope), stmt.cond)
            if stmt.update is not None:
                self._check_stmt(stmt.update, scope)
            self._check_body(stmt.body, scope)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                if self._func.ret_type != ast.VOID:
                    raise SemanticError(
                        f"function {self._func.name!r} must return a value",
                        stmt.location,
                    )
            else:
                if self._func.ret_type == ast.VOID:
                    raise SemanticError(
                        "void function cannot return a value", stmt.location
                    )
                value_ty = self._check_expr(stmt.value, scope)
                self._require_assignable(self._func.ret_type, value_ty, stmt.location)
        elif isinstance(stmt, ast.Print):
            self._check_expr(stmt.value, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_call(stmt.call, scope, allow_void=True)
        else:  # pragma: no cover - parser produces no other nodes
            raise SemanticError(f"unknown statement {type(stmt).__name__}", stmt.location)

    # -- expressions ---------------------------------------------------------

    def _resolve(self, name: str, scope: _Scope, location) -> VarSymbol:
        symbol = scope.lookup(name)
        if symbol is None:
            symbol = self._info.globals.get(name)
        if symbol is None:
            raise SemanticError(f"undeclared variable {name!r}", location)
        return symbol

    def _check_lvalue(self, target, scope: _Scope) -> str:
        if isinstance(target, ast.Name):
            symbol = self._resolve(target.name, scope, target.location)
            if symbol.is_array:
                raise SemanticError(
                    f"cannot assign to array {target.name!r}", target.location
                )
            target.symbol = symbol  # type: ignore[attr-defined]
            target.ty = symbol.base_type
            return symbol.base_type
        assert isinstance(target, ast.Index)
        return self._check_index(target, scope)

    def _check_index(self, expr: ast.Index, scope: _Scope) -> str:
        symbol = self._resolve(expr.name, scope, expr.location)
        if not symbol.is_array:
            raise SemanticError(f"{expr.name!r} is not an array", expr.location)
        if len(expr.indices) != len(symbol.dims):
            raise SemanticError(
                f"{expr.name!r} expects {len(symbol.dims)} indices, "
                f"got {len(expr.indices)}",
                expr.location,
            )
        for index in expr.indices:
            self._require_int(self._check_expr(index, scope), index)
        expr.symbol = symbol  # type: ignore[attr-defined]
        expr.ty = symbol.base_type
        return symbol.base_type

    def _check_call(self, call: ast.Call, scope: _Scope, allow_void: bool) -> str:
        func = self._info.functions.get(call.callee)
        if func is None:
            raise SemanticError(f"call to undefined function {call.callee!r}", call.location)
        if len(call.args) != len(func.params):
            raise SemanticError(
                f"{call.callee!r} expects {len(func.params)} arguments, "
                f"got {len(call.args)}",
                call.location,
            )
        for arg, param in zip(call.args, func.params):
            if param.is_array:
                if not isinstance(arg, ast.Name):
                    raise SemanticError(
                        f"argument for array parameter {param.name!r} must be "
                        "an array name",
                        arg.location,
                    )
                symbol = self._resolve(arg.name, scope, arg.location)
                if not symbol.is_array:
                    raise SemanticError(
                        f"{arg.name!r} is not an array", arg.location
                    )
                if symbol.base_type != param.base_type:
                    raise SemanticError(
                        "array element type mismatch in call", arg.location
                    )
                if len(symbol.dims) != len(param.dims):
                    raise SemanticError(
                        "array dimension count mismatch in call", arg.location
                    )
                if len(param.dims) == 2 and symbol.dims[1] != param.dims[1]:
                    raise SemanticError(
                        "column extent of 2-D array argument must match "
                        "the parameter declaration",
                        arg.location,
                    )
                arg.symbol = symbol  # type: ignore[attr-defined]
                arg.ty = param.base_type
            else:
                arg_ty = self._check_expr(arg, scope)
                self._require_assignable(param.base_type, arg_ty, arg.location)
        if func.ret_type == ast.VOID and not allow_void:
            raise SemanticError(
                f"void function {call.callee!r} used as a value", call.location
            )
        call.ty = func.ret_type
        return func.ret_type

    def _check_expr(self, expr: ast.Expr, scope: _Scope) -> str:
        if isinstance(expr, ast.IntLit):
            expr.ty = ast.INT
        elif isinstance(expr, ast.FloatLit):
            expr.ty = ast.FLOAT
        elif isinstance(expr, ast.Name):
            symbol = self._resolve(expr.name, scope, expr.location)
            if symbol.is_array:
                raise SemanticError(
                    f"array {expr.name!r} used as a scalar value", expr.location
                )
            expr.symbol = symbol  # type: ignore[attr-defined]
            expr.ty = symbol.base_type
        elif isinstance(expr, ast.Index):
            self._check_index(expr, scope)
        elif isinstance(expr, ast.Call):
            self._check_call(expr, scope, allow_void=False)
        elif isinstance(expr, ast.Unary):
            operand_ty = self._check_expr(expr.operand, scope)
            if expr.op == "!":
                self._require_int(operand_ty, expr.operand)
                expr.ty = ast.INT
            else:
                expr.ty = operand_ty
        elif isinstance(expr, ast.Binary):
            left_ty = self._check_expr(expr.left, scope)
            right_ty = self._check_expr(expr.right, scope)
            if expr.op in ("&&", "||"):
                self._require_int(left_ty, expr.left)
                self._require_int(right_ty, expr.right)
                expr.ty = ast.INT
            elif expr.op in ("==", "!=", "<", "<=", ">", ">="):
                expr.ty = ast.INT
            elif expr.op == "%":
                self._require_int(left_ty, expr.left)
                self._require_int(right_ty, expr.right)
                expr.ty = ast.INT
            else:
                expr.ty = (
                    ast.FLOAT if ast.FLOAT in (left_ty, right_ty) else ast.INT
                )
        else:  # pragma: no cover
            raise SemanticError(f"unknown expression {type(expr).__name__}", expr.location)
        return expr.ty

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _require_int(ty: str, expr: ast.Expr) -> None:
        if ty != ast.INT:
            raise SemanticError("expected an int-valued expression", expr.location)

    @staticmethod
    def _require_assignable(target_ty: str, value_ty: str, location) -> None:
        if target_ty == value_ty:
            return
        if target_ty == ast.FLOAT and value_ty == ast.INT:
            return
        raise SemanticError(
            f"cannot assign {value_ty} value to {target_ty} target", location
        )
