"""Register-count sweep: executed cycles as a function of k.

``python -m repro.bench.sweep`` prints, for each program, the GRA, RAP,
and SSA spill-then-color cycle counts for every k in a range — the
curves behind Table 1's four sampled columns.  Useful for seeing where
each benchmark stops spilling (the curve flattens) and where the
allocators cross.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from .harness import Harness
from .suite import program

DEFAULT_PROGRAMS = ("sieve", "hsort", "queens")


def sweep(
    names: Sequence[str],
    k_values: Sequence[int],
    harness: Optional[Harness] = None,
    jobs: Optional[int] = None,
) -> Dict[str, List[Tuple[int, int, int, int]]]:
    """Measure ``(k, gra_cycles, rap_cycles, ssa_cycles)`` rows per
    program (``ssa`` being the SSA spill-then-color allocator).

    ``jobs > 1`` measures the (program, allocator, k) cells in a process
    pool; the curves are identical to a serial sweep (cells are
    independent), only wall time changes.
    """
    harness = harness or Harness()
    if jobs is not None and jobs > 1:
        from .parallel import cells_for, run_cells

        runs = run_cells(
            cells_for(names, k_values, allocators=("gra", "rap", "ssaspill")),
            jobs,
            harness=harness,
        )

        def cycles(name: str, allocator: str, k: int) -> int:
            return runs[(name, allocator, k)].stats.total.cycles

    else:

        def cycles(name: str, allocator: str, k: int) -> int:
            return harness.run(program(name), allocator, k).stats.total.cycles

    curves: Dict[str, List[Tuple[int, int, int, int]]] = {}
    for name in names:
        rows: List[Tuple[int, int, int, int]] = []
        for k in k_values:
            rows.append(
                (
                    k,
                    cycles(name, "gra", k),
                    cycles(name, "rap", k),
                    cycles(name, "ssaspill", k),
                )
            )
        curves[name] = rows
    return curves


def render(
    curves: Dict[str, List[Tuple[int, int, int, int]]], stream=None
) -> None:
    stream = stream or sys.stdout
    for name, rows in curves.items():
        print(f"\n== {name} ==", file=stream)
        print(
            f"{'k':>3} | {'GRA':>9} | {'RAP':>9} | {'SSA':>9} |"
            f" {'RAP vs GRA':>10} | {'SSA vs GRA':>10}",
            file=stream,
        )
        for k, gra, rap, ssa in rows:
            gain = 100.0 * (gra - rap) / gra if gra else 0.0
            ssa_gain = 100.0 * (gra - ssa) / gra if gra else 0.0
            marker = " <- flat" if _is_flat(rows, k) else ""
            print(
                f"{k:>3} | {gra:>9} | {rap:>9} | {ssa:>9} |"
                f" {gain:>+9.1f}% | {ssa_gain:>+9.1f}%{marker}",
                file=stream,
            )


def _is_flat(rows: List[Tuple[int, int, int, int]], k: int) -> bool:
    """True when no allocator improves beyond this k (spilling over)."""
    this = next(row for row in rows if row[0] == k)
    later = [row for row in rows if row[0] > k]
    if not later:
        return False
    return all(row[1:] == this[1:] for row in later)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--k-min", type=int, default=3)
    parser.add_argument("--k-max", type=int, default=10)
    parser.add_argument("--programs", nargs="*", default=list(DEFAULT_PROGRAMS))
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="measure cells in N worker processes (default: serial)",
    )
    args = parser.parse_args(argv)
    curves = sweep(
        args.programs, range(args.k_min, args.k_max + 1), jobs=args.jobs
    )
    render(curves)
    return 0


if __name__ == "__main__":
    sys.exit(main())
