"""Text report for the ablation studies (``python -m repro.bench.ablations``).

Each section answers one question from DESIGN.md §5 with executed-cycle
(and load/store/copy) numbers across a subset of the suite.  The same
measurements run under pytest-benchmark in ``benchmarks/test_ablations.py``;
this module is the human-readable one-shot version.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from ..compiler import compile_source
from .harness import Harness
from .suite import PROGRAMS, BenchProgram, program

DEFAULT_PROGRAMS = ("hsort", "sieve", "queens", "linpack")


def _row(label: str, counters) -> str:
    return (
        f"  {label:<28} cycles={counters.cycles:<8} loads={counters.loads:<7}"
        f" stores={counters.stores:<6} copies={counters.copies}"
    )


def report(names: Sequence[str], k: int = 3, stream=None) -> None:
    stream = stream or sys.stdout
    harness = Harness()
    benches = [program(name) for name in names]

    def total(bench, allocator, **kwargs):
        return harness.run(bench, allocator, k, **kwargs).stats.total

    print(f"Ablation report (k={k})", file=stream)
    for bench in benches:
        print(f"\n== {bench.name} ==", file=stream)
        gra = total(bench, "gra")
        rap = total(bench, "rap")
        print(_row("GRA baseline", gra), file=stream)
        print(_row("RAP (all phases)", rap), file=stream)
        print(
            _row("SSA spill-then-color", total(bench, "ssaspill")),
            file=stream,
        )
        print(
            _row("RAP, no peephole", total(bench, "rap", enable_peephole=False)),
            file=stream,
        )
        print(
            _row("RAP, no motion", total(bench, "rap", enable_motion=False)),
            file=stream,
        )
        print(
            _row("RAP, global peephole", total(bench, "rap", global_peephole=True)),
            file=stream,
        )
        print(
            _row("RAP, rematerialization", total(bench, "rap", remat=True)),
            file=stream,
        )
        print(
            _row("GRA, rematerialization", total(bench, "gra", remat=True)),
            file=stream,
        )
        print(
            _row("GRA + coalescing", total(bench, "gra", pre_coalesce=True)),
            file=stream,
        )
        print(
            _row("RAP + coalescing", total(bench, "rap", pre_coalesce=True)),
            file=stream,
        )
        print(
            _row("GRA, Chaitin coloring", total(bench, "gra", optimistic=False)),
            file=stream,
        )
        print(
            _row(
                "GRA, loop-weighted costs",
                total(bench, "gra", loop_weight=True),
            ),
            file=stream,
        )
        merged = _merged_granularity_total(bench, k)
        print(_row("RAP, merged regions", merged), file=stream)


def _merged_granularity_total(bench: BenchProgram, k: int):
    harness = Harness()
    harness._compiled[bench.name] = compile_source(
        bench.source(), granularity="merged"
    )
    return harness.run(bench, "rap", k).stats.total


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--programs", nargs="*", default=list(DEFAULT_PROGRAMS))
    args = parser.parse_args(argv)
    report(args.programs, k=args.k)
    return 0


if __name__ == "__main__":
    sys.exit(main())
