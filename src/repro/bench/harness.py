"""Measurement harness: compile, allocate, run, and compare the
allocators.

This module regenerates the paper's Table 1.  For each benchmark program,
each register-set size k, and each allocator it:

1. compiles the Mini-C source to a PDG module (cached per program);
2. allocates every function (GRA and the SSA spill-then-color allocator
   on the cloned linear code, RAP on a fresh copy of the PDG) through the
   :class:`~repro.resilience.pipeline.PassPipeline`,
   which validates every result structurally;
3. runs the allocated program in the iloc interpreter, checking that the
   observable output matches the infinite-register reference execution
   (NaN-tolerant; a mismatch raises a structured
   :class:`~repro.resilience.errors.MiscompileError`);
4. reports per-routine counters.

When an allocator crashes, fails validation, or miscompiles, the harness
walks the fallback ladder (rap -> gra -> ssaspill -> linearscan ->
spillall, see :mod:`repro.resilience.fallback`) instead of aborting,
recording every abandoned rung in ``ProgramRun.fallbacks_taken`` so a
sweep always completes and the report shows *which* cells are degraded.

Metrics, matching §4 exactly: the ``tot`` column is
``(cycles(GRA) - cycles(RAP)) / cycles(GRA)`` as a percentage, and the
``ld``/``st`` columns are the portions of that percentage attributable to
the change in executed loads and stores (each instruction being one
cycle); the remainder is due to copy statements.  An entry is blank when
neither allocation contains spill code for the routine.  The ``ssa``
column is the same ``tot`` metric for the SSA spill-then-color allocator
(:mod:`repro.regalloc.ssaspill`) against the same GRA baseline — the
Table-1 comparison of region-local spilling (RAP) vs SSA-decoupled
spilling on identical programs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..compiler import CompiledProgram, param_slots
from ..interp.machine import FunctionImage, ProgramImage, run_program
from ..interp.stats import Counters, ExecStats
from ..ir.iloc import Instr, Op
from ..resilience.errors import StageError
from ..resilience.fallback import FallbackEvent, chain_for
from ..resilience.pipeline import PassPipeline, PipelineConfig
from ..resilience.telemetry import MetricsCollector, StageMetrics
from .suite import PROGRAMS, BenchProgram

DEFAULT_K_VALUES = (3, 5, 7, 9)

AllocatorFn = Callable[..., object]


@dataclass
class RoutineResult:
    """Measured counters for one routine under one allocator and one k."""

    counters: Counters
    has_spill_code: bool


@dataclass
class ProgramRun:
    """One (program, allocator, k) measurement.

    ``allocator`` is the allocator that was *requested*;
    ``allocator_used`` is the one whose code actually ran (different when
    the fallback ladder engaged), and ``fallbacks_taken`` records every
    rung abandoned on the way there (empty in a healthy run).

    ``metrics`` maps stage name to the cell's
    :class:`~repro.resilience.telemetry.StageMetrics` (wall time spent
    in each pipeline stage, plus allocation rounds / spill counts /
    peephole hits), aggregated across every function allocated and every
    ladder rung attempted; ``wall_time`` is the whole cell's wall-clock
    seconds.  Front-end stages only appear on the first run of a program
    per harness, because compilation is cached.
    """

    program: str
    allocator: str
    k: int
    stats: ExecStats
    spill_code_functions: Dict[str, bool]
    allocator_used: str = ""
    fallbacks_taken: List[FallbackEvent] = field(default_factory=list)
    metrics: Dict[str, StageMetrics] = field(default_factory=dict)
    wall_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.allocator_used:
            self.allocator_used = self.allocator

    def routine(self, bench: BenchProgram, name: str) -> RoutineResult:
        total = Counters()
        spill = False
        for func in bench.functions_for(name):
            total.add(self.stats.per_function.get(func, Counters()))
            spill = spill or self.spill_code_functions.get(func, False)
        return RoutineResult(total, spill)


class Harness:
    """Caches compiled programs and executes allocator comparisons.

    ``fallback=False`` restores fail-fast behaviour: the first stage
    failure propagates as a :class:`StageError` instead of degrading to
    the next allocator in the ladder.
    """

    def __init__(
        self,
        programs: Optional[Sequence[BenchProgram]] = None,
        check_outputs: bool = True,
        fallback: bool = True,
        pipeline: Optional[PassPipeline] = None,
    ):
        self.programs = list(programs) if programs is not None else list(PROGRAMS)
        self.check_outputs = check_outputs
        self.fallback = fallback
        self.pipeline = pipeline or PassPipeline(PipelineConfig())
        self._compiled: Dict[str, CompiledProgram] = {}
        self._reference_out: Dict[str, list] = {}

    # -- building blocks -----------------------------------------------------

    def compiled(self, bench: BenchProgram) -> CompiledProgram:
        if bench.name not in self._compiled:
            # Through the pipeline (not bare compile_source) so the
            # front-end stages are timed by the active metrics collector.
            self._compiled[bench.name] = self.pipeline.compile(
                bench.source(), filename=bench.filename
            )
        return self._compiled[bench.name]

    def reference_output(self, bench: BenchProgram) -> list:
        if bench.name not in self._reference_out:
            prog = self.compiled(bench)
            stats = run_program(
                prog.reference_image(), max_cycles=bench.max_cycles
            )
            self._reference_out[bench.name] = stats.output
        return self._reference_out[bench.name]

    def allocate_program(
        self,
        bench: BenchProgram,
        allocator: str,
        k: int,
        pre_coalesce: bool = False,
        **alloc_kwargs,
    ) -> Tuple[ProgramImage, Dict[str, bool]]:
        """Allocate every function of a benchmark; returns the executable
        image and a per-function "contains spill code" flag.

        ``pre_coalesce=True`` runs the conservative coalescing pass (the
        paper's future-work extension) before the allocator.
        """
        prog = self.compiled(bench)
        module = prog.fresh_module()
        functions: Dict[str, FunctionImage] = {}
        spill_flags: Dict[str, bool] = {}
        for name, func in module.functions.items():
            if pre_coalesce:
                from ..regalloc.coalesce import coalesce_function

                coalesce_function(func, k)
            try:
                result = self.pipeline.allocate(func, allocator, k, **alloc_kwargs)
            except StageError as err:
                if err.context.program is None:
                    err.context.program = bench.name
                raise
            functions[name] = FunctionImage(name, result.code, param_slots(func))
            spill_flags[name] = _has_spill_code(result.code, name)
        image = ProgramImage(list(module.globals.values()), functions)
        return image, spill_flags

    def run(
        self,
        bench: BenchProgram,
        allocator: str,
        k: int,
        pre_coalesce: bool = False,
        **alloc_kwargs,
    ) -> ProgramRun:
        """Allocate, execute, and check one (program, allocator, k) cell.

        Walks the fallback ladder on failure (unless ``fallback=False``),
        so the returned run may have executed a simpler allocator than the
        one requested — see :class:`ProgramRun`.
        """
        attempts = chain_for(allocator)  # validates the allocator name
        if not self.fallback:
            attempts = attempts[:1]
        fallbacks: List[FallbackEvent] = []
        collector = MetricsCollector()
        previous_collector = self.pipeline.metrics
        self.pipeline.metrics = collector
        started = time.perf_counter()
        try:
            for position, rung in enumerate(attempts):
                # Requested-allocator tuning does not transfer down the
                # ladder: rap-only kwargs would crash gra, and a knob that
                # just broke one allocator should not be re-applied to its
                # replacement.
                own = rung == allocator
                try:
                    image, spill_flags = self.allocate_program(
                        bench,
                        rung,
                        k,
                        pre_coalesce=pre_coalesce if own else False,
                        **(alloc_kwargs if own else {}),
                    )
                    stats = self.pipeline.execute(
                        image,
                        max_cycles=bench.max_cycles,
                        program=bench.name,
                        allocator=rung,
                        k=k,
                    )
                    if self.check_outputs:
                        self.pipeline.check_output(
                            stats.output,
                            self.reference_output(bench),
                            program=bench.name,
                            allocator=rung,
                            k=k,
                        )
                except StageError as err:
                    if position == len(attempts) - 1:
                        raise
                    fallbacks.append(FallbackEvent(rung, err.stage, err.message))
                    continue
                return ProgramRun(
                    bench.name,
                    allocator,
                    k,
                    stats,
                    spill_flags,
                    allocator_used=rung,
                    fallbacks_taken=fallbacks,
                    metrics=collector.stages,
                    wall_time=time.perf_counter() - started,
                )
            raise AssertionError("unreachable: ladder exhausted without raising")
        finally:
            self.pipeline.metrics = previous_collector


def _has_spill_code(code: Sequence[Instr], func_name: str) -> bool:
    """True if the allocated code contains allocator-inserted spill
    loads/stores (slots named after a virtual register — incoming-argument
    slots do not count)."""
    marker = f"{func_name}.%v"
    for instr in code:
        if instr.op in (Op.LDM, Op.STM) and instr.addr is not None:
            if instr.addr.space == "spill" and marker in instr.addr.name:
                return True
    return False


# ----------------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------------


@dataclass
class Table1Cell:
    """One routine × one k: the percentages of Table 1.

    ``tot``/``ld``/``st`` compare RAP against GRA exactly as in the
    paper; ``ssa`` is the total-cycle percentage for the SSA
    spill-then-color allocator against the same GRA baseline, with its
    own blank flag (a routine can be spill-free under GRA and RAP yet
    spill under ssaspill, or vice versa).

    ``fallbacks`` records any allocator degradations behind the numbers
    (from the GRA, RAP, or ssaspill run of the owning program); a
    non-empty list means the cell compares something other than the pure
    requested allocators.  ``used`` maps each requested allocator to the
    ladder rung whose code actually ran (identical keys and values in a
    healthy cell).
    """

    tot: Optional[float]
    ld: Optional[float]
    st: Optional[float]
    gra: Counters = field(default_factory=Counters)
    rap: Counters = field(default_factory=Counters)
    blank: bool = False
    fallbacks: List[FallbackEvent] = field(default_factory=list)
    used: Dict[str, str] = field(default_factory=dict)
    ssa: Optional[float] = None
    ssa_counters: Counters = field(default_factory=Counters)
    ssa_blank: bool = True


@dataclass
class Table1:
    """The full reproduction of Table 1."""

    k_values: Tuple[int, ...]
    #: routine -> {k -> cell}
    cells: Dict[str, Dict[int, Table1Cell]] = field(default_factory=dict)
    routine_order: List[str] = field(default_factory=list)

    def average(self, k: int) -> float:
        """Average percentage decrease over the non-blank rows for one k."""
        values = [
            row[k].tot
            for row in self.cells.values()
            if k in row and row[k].tot is not None
        ]
        return sum(values) / len(values) if values else 0.0

    def overall_average(self) -> float:
        per_k = [self.average(k) for k in self.k_values]
        return sum(per_k) / len(per_k) if per_k else 0.0

    def ssa_average(self, k: int) -> float:
        """Average ``ssa`` percentage over the rows with a value for one k."""
        values = [
            row[k].ssa
            for row in self.cells.values()
            if k in row and row[k].ssa is not None
        ]
        return sum(values) / len(values) if values else 0.0

    def ssa_overall_average(self) -> float:
        per_k = [self.ssa_average(k) for k in self.k_values]
        return sum(per_k) / len(per_k) if per_k else 0.0

    def degraded_cells(self) -> List[Tuple[str, int, List[FallbackEvent]]]:
        """Every (routine, k) whose measurement involved a fallback."""
        out: List[Tuple[str, int, List[FallbackEvent]]] = []
        for routine in self.routine_order:
            for k in self.k_values:
                cell = self.cells.get(routine, {}).get(k)
                if cell is not None and cell.fallbacks:
                    out.append((routine, k, cell.fallbacks))
        return out


def build_table1(
    harness: Optional[Harness] = None,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    gra_kwargs: Optional[dict] = None,
    rap_kwargs: Optional[dict] = None,
    ssaspill_kwargs: Optional[dict] = None,
    jobs: Optional[int] = None,
    runs_out: Optional[List[ProgramRun]] = None,
) -> Table1:
    """Measure every benchmark and assemble Table 1.

    ``jobs > 1`` farms the (program, allocator, k) cells out to a
    process pool (:mod:`repro.bench.parallel`); the table is assembled
    from the returned runs in the same order as the serial loop, so the
    rendered text is byte-identical either way.  ``runs_out``, when
    given, receives every :class:`ProgramRun` in serial order — the raw
    material for the ``--profile`` and ``--metrics-out`` reports.
    """
    harness = harness or Harness()
    table = Table1(tuple(k_values))
    per_allocator = {
        "gra": gra_kwargs,
        "rap": rap_kwargs,
        "ssaspill": ssaspill_kwargs,
    }

    if jobs is not None and jobs > 1:
        from .parallel import CellSpec, run_cells

        specs = []
        for bench in harness.programs:
            for k in k_values:
                for allocator, kwargs in per_allocator.items():
                    specs.append(
                        CellSpec(
                            bench.name,
                            allocator,
                            k,
                            alloc_kwargs=tuple(sorted((kwargs or {}).items())),
                        )
                    )
        runs = run_cells(specs, jobs, harness=harness)

        def measure(bench: BenchProgram, allocator: str, k: int) -> ProgramRun:
            return runs[(bench.name, allocator, k)]

    else:

        def measure(bench: BenchProgram, allocator: str, k: int) -> ProgramRun:
            kwargs = per_allocator[allocator]
            return harness.run(bench, allocator, k, **(kwargs or {}))

    for bench in harness.programs:
        for k in k_values:
            gra_run = measure(bench, "gra", k)
            rap_run = measure(bench, "rap", k)
            ssa_run = measure(bench, "ssaspill", k)
            if runs_out is not None:
                runs_out.extend((gra_run, rap_run, ssa_run))
            fallbacks = (
                gra_run.fallbacks_taken
                + rap_run.fallbacks_taken
                + ssa_run.fallbacks_taken
            )
            used = {
                "gra": gra_run.allocator_used,
                "rap": rap_run.allocator_used,
                "ssaspill": ssa_run.allocator_used,
            }
            for routine in bench.routines:
                gra = gra_run.routine(bench, routine)
                rap = rap_run.routine(bench, routine)
                ssa = ssa_run.routine(bench, routine)
                cell = _make_cell(gra, rap, ssa, fallbacks, used)
                table.cells.setdefault(routine, {})[k] = cell
                if routine not in table.routine_order:
                    table.routine_order.append(routine)
    return table


def _make_cell(
    gra: RoutineResult,
    rap: RoutineResult,
    ssa: Optional[RoutineResult] = None,
    fallbacks: Optional[List[FallbackEvent]] = None,
    used: Optional[Dict[str, str]] = None,
) -> Table1Cell:
    blank = not (gra.has_spill_code or rap.has_spill_code)
    fallbacks = list(fallbacks or [])
    used = dict(used or {})
    g, r = gra.counters, rap.counters
    s = ssa.counters if ssa is not None else Counters()
    ssa_blank = ssa is None or not (gra.has_spill_code or ssa.has_spill_code)
    if g.cycles == 0:
        return Table1Cell(
            None,
            None,
            None,
            g,
            r,
            blank=True,
            fallbacks=fallbacks,
            used=used,
            ssa=None,
            ssa_counters=s,
            ssa_blank=True,
        )
    tot = 100.0 * (g.cycles - r.cycles) / g.cycles
    ld = 100.0 * (g.loads - r.loads) / g.cycles
    st = 100.0 * (g.stores - r.stores) / g.cycles
    ssa_tot = (
        100.0 * (g.cycles - s.cycles) / g.cycles if ssa is not None else None
    )
    return Table1Cell(
        tot,
        ld,
        st,
        g,
        r,
        blank=blank,
        fallbacks=fallbacks,
        used=used,
        ssa=ssa_tot,
        ssa_counters=s,
        ssa_blank=ssa_blank,
    )
