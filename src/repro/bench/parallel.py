"""Process-pool execution of benchmark sweep cells.

The sweep's unit of work is one *cell*: measuring one (program,
allocator, k) combination end to end — compile, allocate through the
fallback ladder, execute, compare against the reference output.  Cells
are independent by construction (each run allocates a fresh module
copy), which makes them safe to farm out to worker processes:

* every worker holds a private :class:`~repro.bench.harness.Harness`
  whose compile/reference caches warm up over the cells it serves;
* the fault plan active in the parent when the pool starts is re-armed
  inside every worker, so probe points fire in parallel sweeps just as
  they do serially (occurrence counters — ``times``/``skip`` — are
  per-process; use ``times=None`` specs when a probe must hit every
  matching cell regardless of scheduling);
* a cell whose fallback ladder engages degrades *inside its worker*
  exactly as it would serially, and comes back as an ordinary
  :class:`~repro.bench.harness.ProgramRun` with ``fallbacks_taken`` set;
* a :class:`~repro.resilience.errors.StageError` that escapes a
  worker's ladder (only possible with ``fallback=False`` — the
  spill-everywhere bottom rung cannot fail) comes back frozen as plain
  data and is re-raised by the parent for the *earliest cell in serial
  order*, so a dying sweep dies on the same cell with the same
  diagnostic as a serial one.  Freezing is subclass-aware: miscompiles
  and the transformation-validator errors (motion / schedule / peephole
  / ssa / destruct / chordal) thaw back to their own types, so callers
  that catch a specific class behave identically with and without
  ``--jobs``.

Scheduling is one cell per task (``chunksize=1``): the suite's cell
costs are wildly uneven (tens of milliseconds to tens of seconds), and
coarser chunks would serialize the tail.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..resilience import faults
from ..resilience.errors import StageError
from ..resilience.pipeline import PassPipeline, PipelineConfig


@dataclass(frozen=True)
class CellSpec:
    """One unit of sweep work, picklable and hashable.

    ``alloc_kwargs`` is a sorted tuple of items (not a dict) so specs
    can key result maps.
    """

    program: str
    allocator: str
    k: int
    pre_coalesce: bool = False
    alloc_kwargs: Tuple[Tuple[str, Any], ...] = ()

    @property
    def key(self) -> Tuple[str, str, int]:
        return (self.program, self.allocator, self.k)


#: The per-process harness, created once by :func:`_init_worker`.
_WORKER_HARNESS = None


def _init_worker(
    config: PipelineConfig,
    check_outputs: bool,
    fallback: bool,
    fault_specs: Tuple[faults.FaultSpec, ...],
) -> None:
    global _WORKER_HARNESS
    from .harness import Harness  # late: harness imports this module

    if fault_specs:
        faults.install(*fault_specs)
    _WORKER_HARNESS = Harness(
        check_outputs=check_outputs,
        fallback=fallback,
        pipeline=PassPipeline(config),
    )


def _run_cell(spec: CellSpec):
    """Worker body: returns ``(spec, run, frozen_error)``."""
    from .suite import program

    bench = program(spec.program)
    try:
        run = _WORKER_HARNESS.run(
            bench,
            spec.allocator,
            spec.k,
            pre_coalesce=spec.pre_coalesce,
            **dict(spec.alloc_kwargs),
        )
        return spec, run, None
    except StageError as err:
        return spec, None, err.freeze()


def default_jobs() -> int:
    """Worker count matching the CPUs this process may actually use."""
    if hasattr(os, "sched_getaffinity"):
        return max(1, len(os.sched_getaffinity(0)))
    return max(1, os.cpu_count() or 1)


def run_cells(
    specs: Sequence[CellSpec],
    jobs: int,
    harness=None,
) -> Dict[Tuple[str, str, int], Any]:
    """Run every cell in a pool of ``jobs`` workers; returns
    ``{(program, allocator, k): ProgramRun}``.

    ``harness`` supplies the configuration the workers replicate
    (pipeline config, ``check_outputs``, ``fallback``); its caches are
    not shipped — each worker compiles what it needs.  If any cell's
    ladder-escaping failure comes back, the one earliest in ``specs``
    order is re-raised after the pool drains, mirroring a serial sweep's
    first-failure behaviour.
    """
    from .harness import Harness

    if harness is None:
        harness = Harness()
    plan = faults.active()
    fault_specs = tuple(plan.specs) if plan is not None else ()

    runs: Dict[Tuple[str, str, int], Any] = {}
    errors: Dict[Tuple[str, str, int], dict] = {}
    with ProcessPoolExecutor(
        max_workers=max(1, jobs),
        initializer=_init_worker,
        initargs=(
            harness.pipeline.config,
            harness.check_outputs,
            harness.fallback,
            fault_specs,
        ),
    ) as pool:
        for spec, run, frozen in pool.map(_run_cell, specs):
            if frozen is not None:
                errors[spec.key] = frozen
            else:
                runs[spec.key] = run

    for spec in specs:
        if spec.key in errors:
            raise StageError.thaw(errors[spec.key])
    return runs


def cells_for(
    names: Sequence[str],
    k_values: Sequence[int],
    allocators: Sequence[str] = ("gra", "rap"),
) -> List[CellSpec]:
    """Enumerate sweep cells in serial (program, k, allocator) order."""
    return [
        CellSpec(name, allocator, k)
        for name in names
        for k in k_values
        for allocator in allocators
    ]
