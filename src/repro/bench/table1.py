"""Render the Table 1 reproduction as text.

Run with ``python -m repro.bench.table1`` — prints the same rows as the
paper's Table 1: for each routine and register-set size (3, 5, 7, 9), the
percentage decrease in total executed cycles (RAP vs GRA), the portions
of that decrease due to loads and stores, and the ``ssa`` column — the
same total-cycle metric for the SSA spill-then-color allocator
(:mod:`repro.regalloc.ssaspill`) against the same GRA baseline — then
the per-k averages and the overall averages (the paper's headline 2.7%
for RAP, plus the ssaspill figure).

``--jobs N`` measures the sweep cells in N worker processes; the table
text is byte-identical to a serial run (cells are independent and
assembled in serial order), only the wall-time footer on *stderr*
differs.  ``--profile`` appends aggregated per-stage telemetry,
``--metrics-out FILE`` dumps per-cell stage metrics as JSON — see
docs/BENCHMARKING.md.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional, Sequence

from ..resilience.telemetry import aggregate, render_profile
from .harness import DEFAULT_K_VALUES, Harness, ProgramRun, Table1, build_table1


def _fmt(value: Optional[float], blank: bool) -> str:
    if blank or value is None:
        return "      "
    if value == 0.0:
        return "   0.0"
    if abs(value) < 0.05:
        return "  +0.0" if value > 0 else "  -0.0"
    return f"{value:6.1f}"


def render_table1(table: Table1, stream=None) -> None:
    stream = stream or sys.stdout
    ks = table.k_values
    header = "Benchmark".ljust(14) + "".join(
        f"|  k={k}: tot    ld    st   ssa " for k in ks
    )
    print(header, file=stream)
    print("-" * len(header), file=stream)
    for routine in table.routine_order:
        row = table.cells[routine]
        line = routine.ljust(14)
        for k in ks:
            cell = row.get(k)
            if cell is None:
                line += "|" + " " * 30
                continue
            line += (
                "|"
                + _fmt(cell.tot, cell.blank)
                + _fmt(cell.ld, cell.blank)
                + _fmt(cell.st, cell.blank)
                + _fmt(cell.ssa, cell.ssa_blank)
                + "  "
            )
        print(line, file=stream)
    print("-" * len(header), file=stream)
    line = "Average".ljust(14)
    for k in ks:
        line += (
            "|"
            + _fmt(table.average(k), False)
            + " " * 12
            + _fmt(table.ssa_average(k), False)
            + "  "
        )
    print(line, file=stream)
    print(
        f"\nOverall average percentage decrease in cycles executed: "
        f"{table.overall_average():.1f}%  (paper: 2.7%)",
        file=stream,
    )
    print(
        f"Overall average for ssaspill (SSA spill-then-color) vs GRA: "
        f"{table.ssa_overall_average():.1f}%",
        file=stream,
    )
    degraded = table.degraded_cells()
    if degraded:
        # Only printed when a fallback fired, so a healthy run's output
        # stays byte-identical to the reference table.
        print("\nDegraded cells (allocator fallbacks taken):", file=stream)
        for routine, k, events in degraded:
            for event in events:
                print(f"  {routine} k={k}: {event}", file=stream)
            used = table.cells[routine][k].used
            rungs = ", ".join(
                f"{req}->{used[req]}"
                for req in sorted(used)
                if used[req] != req
            )
            if rungs:
                print(f"  {routine} k={k}: completed on {rungs}", file=stream)


def render_schedule_footer(runs: List[ProgramRun], stream=None) -> None:
    """The ``--schedule`` delta footer: how much shorter the RAP column's
    code got under list scheduling, in static (latency-model) cycles.

    The interpreter charges one cycle per instruction, so *executed*
    cycle counts are schedule-invariant (the scheduler emits a verified
    permutation of each block) and the table body is byte-identical with
    scheduling on or off — the footer is where the phase-ordering
    experiment's numbers live.
    """
    stream = stream or sys.stdout
    total = aggregate(run.metrics for run in runs).stages.get("schedule")
    if total is None or total.sched_blocks == 0:
        print("\n[schedule] no blocks were scheduled", file=stream)
        return
    before, after = total.sched_length_before, total.sched_length_after
    delta = before - after
    percent = 100.0 * delta / before if before else 0.0
    print(
        f"\n[schedule] RAP column list-scheduled: static schedule length "
        f"{before} -> {after} model cycles ({-delta:+d}, {-percent:.1f}%) "
        f"over {total.sched_blocks} blocks, "
        f"{total.sched_moved} instructions moved",
        file=stream,
    )
    print(
        "[schedule] executed cycle counts are schedule-invariant "
        "(unit-latency interpreter): the table body matches --schedule off",
        file=stream,
    )


def metrics_payload(
    runs: List[ProgramRun],
    wall_time: float,
    k_values: Sequence[int],
    jobs: Optional[int],
) -> dict:
    """The ``--metrics-out`` JSON document: sweep-level aggregate plus
    one record per (program, allocator, k) cell."""
    from ..resilience.telemetry import MetricsCollector

    def stages_of(run: ProgramRun) -> dict:
        collector = MetricsCollector()
        collector.merge(run.metrics)
        return collector.as_dict()

    return {
        "sweep": "table1",
        "k_values": list(k_values),
        "jobs": jobs if jobs else 1,
        "wall_time_s": round(wall_time, 3),
        "stages": aggregate(run.metrics for run in runs).as_dict(),
        "cells": [
            {
                "program": run.program,
                "allocator": run.allocator,
                "k": run.k,
                "allocator_used": run.allocator_used,
                "wall_time_s": round(run.wall_time, 6),
                "cycles": run.stats.total.cycles,
                "fallbacks": [e.as_dict() for e in run.fallbacks_taken],
                "stages": stages_of(run),
            }
            for run in runs
        ],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--k",
        type=int,
        nargs="*",
        default=list(DEFAULT_K_VALUES),
        help="register-set sizes to measure (default: 3 5 7 9)",
    )
    parser.add_argument(
        "--programs",
        nargs="*",
        default=None,
        help="restrict to specific benchmark programs",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="measure sweep cells in N worker processes (default: serial)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print aggregated per-stage telemetry after the table",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write per-cell stage metrics as JSON",
    )
    parser.add_argument(
        "--inject",
        action="append",
        metavar="POINT",
        help="arm a fault-injection probe for the whole sweep (repeatable;"
        " fires every matching occurrence — see `repro faults`); the"
        " fallback ladder keeps the table complete and the footer shows"
        " the degradation",
    )
    parser.add_argument(
        "--schedule",
        action="store_true",
        help="run the validated list-scheduler stage on the RAP column and"
        " print a schedule-on/off static-cycle delta footer (the paper's"
        " phase-ordering experiment); the table body is unchanged",
    )
    args = parser.parse_args(argv)

    harness = Harness()
    if args.programs:
        from .suite import program

        harness = Harness([program(name) for name in args.programs])
    runs: List[ProgramRun] = []
    from contextlib import nullcontext

    from ..resilience import faults

    specs = [faults.FaultSpec(point, times=None) for point in args.inject or []]
    started = time.perf_counter()
    with faults.injected(*specs) if specs else nullcontext():
        table = build_table1(
            harness,
            k_values=args.k,
            jobs=args.jobs,
            runs_out=runs,
            rap_kwargs={"schedule": True} if args.schedule else None,
        )
    wall_time = time.perf_counter() - started
    render_table1(table)
    if args.schedule:
        render_schedule_footer(runs)
    if args.profile:
        render_profile(
            aggregate(run.metrics for run in runs),
            sys.stdout,
            title="Per-stage telemetry (all cells):",
        )
    if args.metrics_out:
        payload = metrics_payload(runs, wall_time, args.k, args.jobs)
        with open(args.metrics_out, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    # stderr, so the table on stdout stays byte-identical to
    # results_table1.txt for healthy runs, serial or parallel.
    mode = f"jobs={args.jobs}" if args.jobs and args.jobs > 1 else "serial"
    print(f"[wall] table1 completed in {wall_time:.2f}s ({mode})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
