"""Render the Table 1 reproduction as text.

Run with ``python -m repro.bench.table1`` — prints the same rows as the
paper's Table 1: for each routine and register-set size (3, 5, 7, 9), the
percentage decrease in total executed cycles (RAP vs GRA) and the portions
of that decrease due to loads and stores, then the per-k averages and the
overall average (the paper's headline 2.7%).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .harness import DEFAULT_K_VALUES, Harness, Table1, build_table1


def _fmt(value: Optional[float], blank: bool) -> str:
    if blank or value is None:
        return "      "
    if value == 0.0:
        return "   0.0"
    if abs(value) < 0.05:
        return "  +0.0" if value > 0 else "  -0.0"
    return f"{value:6.1f}"


def render_table1(table: Table1, stream=None) -> None:
    stream = stream or sys.stdout
    ks = table.k_values
    header = "Benchmark".ljust(14) + "".join(
        f"|  k={k}: tot    ld    st  " for k in ks
    )
    print(header, file=stream)
    print("-" * len(header), file=stream)
    for routine in table.routine_order:
        row = table.cells[routine]
        line = routine.ljust(14)
        for k in ks:
            cell = row.get(k)
            if cell is None:
                line += "|" + " " * 24
                continue
            line += (
                "|"
                + _fmt(cell.tot, cell.blank)
                + _fmt(cell.ld, cell.blank)
                + _fmt(cell.st, cell.blank)
                + "  "
            )
        print(line, file=stream)
    print("-" * len(header), file=stream)
    line = "Average".ljust(14)
    for k in ks:
        line += "|" + _fmt(table.average(k), False) + " " * 14
    print(line, file=stream)
    print(
        f"\nOverall average percentage decrease in cycles executed: "
        f"{table.overall_average():.1f}%  (paper: 2.7%)",
        file=stream,
    )
    degraded = table.degraded_cells()
    if degraded:
        # Only printed when a fallback fired, so a healthy run's output
        # stays byte-identical to the reference table.
        print("\nDegraded cells (allocator fallbacks taken):", file=stream)
        for routine, k, events in degraded:
            for event in events:
                print(f"  {routine} k={k}: {event}", file=stream)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--k",
        type=int,
        nargs="*",
        default=list(DEFAULT_K_VALUES),
        help="register-set sizes to measure (default: 3 5 7 9)",
    )
    parser.add_argument(
        "--programs",
        nargs="*",
        default=None,
        help="restrict to specific benchmark programs",
    )
    args = parser.parse_args(argv)

    harness = Harness()
    if args.programs:
        from .suite import program

        harness = Harness([program(name) for name in args.programs])
    table = build_table1(harness, k_values=args.k)
    render_table1(table)
    return 0


if __name__ == "__main__":
    sys.exit(main())
