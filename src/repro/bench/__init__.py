"""Benchmark suite and Table-1 harness."""

from .harness import Harness, Table1, build_table1
from .suite import PROGRAMS, BenchProgram, all_routines, program

__all__ = [
    "Harness",
    "Table1",
    "build_table1",
    "PROGRAMS",
    "BenchProgram",
    "program",
    "all_routines",
]
