"""Benchmark suite and Table-1 harness."""

from .harness import Harness, Table1, build_table1
from .parallel import CellSpec, cells_for, default_jobs, run_cells
from .suite import PROGRAMS, BenchProgram, all_programs, all_routines, program

__all__ = [
    "Harness",
    "Table1",
    "build_table1",
    "PROGRAMS",
    "BenchProgram",
    "CellSpec",
    "program",
    "all_programs",
    "all_routines",
    "cells_for",
    "default_jobs",
    "run_cells",
]
