"""The benchmark suite of the paper's §4.

"Performance measurements of RAP and GRA have been taken for 13 of the
Livermore Loops, the cLinpack routines, implementations of heapsort,
hanoi, sieve and some of the Stanford routines."  Table 1 reports 37
routines; this registry maps each program to the routine rows it
contributes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

_PROGRAM_DIR = os.path.join(os.path.dirname(__file__), "programs")


@dataclass(frozen=True)
class BenchProgram:
    """One Mini-C benchmark program and its reported routine rows."""

    name: str
    filename: str
    routines: List[str]
    group: str
    description: str = ""
    max_cycles: int = 5_000_000
    #: row name -> list of functions whose counters make up that row
    #: (defaults to the identically named function).
    rollup: Optional[Dict[str, List[str]]] = None

    @property
    def path(self) -> str:
        return os.path.join(_PROGRAM_DIR, self.filename)

    def source(self) -> str:
        with open(self.path) as handle:
            return handle.read()

    def functions_for(self, routine: str) -> List[str]:
        if self.rollup and routine in self.rollup:
            return self.rollup[routine]
        return [routine]


LIVERMORE_ROUTINES = [
    "loop1",
    "loop2",
    "loop3",
    "loop5",
    "loop6",
    "loop7",
    "loop9",
    "loop10",
    "loop11",
    "loop12",
    "loop21",
    "loop23",
    "loop24",
]

PROGRAMS: List[BenchProgram] = [
    BenchProgram(
        "livermore",
        "livermore.mc",
        LIVERMORE_ROUTINES,
        group="Livermore",
        description="13 of the Livermore Loops (kernels 1,2,3,5,6,7,9,10,11,12,21,23,24)",
    ),
    BenchProgram(
        "linpack",
        "linpack.mc",
        ["matgen", "daxpy", "ddot", "dscal", "idamax"],
        group="cLinpack",
        description="cLinpack BLAS-1 routines driven by a dgefa LU factorization",
    ),
    BenchProgram(
        "hsort", "hsort.mc", ["hsort"], group="hsort",
        description="heapsort with iterative sift-down",
        rollup={"hsort": ["hsort", "sift"]},
    ),
    BenchProgram(
        "hanoi", "hanoi.mc", ["hanoi"], group="Hanoi",
        description="towers of Hanoi, 9 discs",
    ),
    BenchProgram(
        "nsieve", "nsieve.mc", ["nsieve"], group="Nsieve",
        description="repeated sieve over decreasing sizes",
    ),
    BenchProgram(
        "sieve", "sieve.mc", ["sieve"], group="seive",
        description="sieve of Eratosthenes",
    ),
    BenchProgram(
        "intmm",
        "intmm.mc",
        ["initmatrix", "innerproduct", "intmm"],
        group="Stanford",
        description="Stanford integer matrix multiply",
    ),
    BenchProgram(
        "perm",
        "perm.mc",
        ["permute", "swap", "initialize", "perm"],
        group="Stanford",
        description="Stanford recursive permutations",
    ),
    BenchProgram(
        "puzzle",
        "puzzle.mc",
        ["fit", "place", "trial", "remove", "puzzle"],
        group="Stanford",
        description="Stanford 3-D packing puzzle (scaled to a 4^3 cube)",
    ),
    BenchProgram(
        "queens",
        "queens.mc",
        ["queens", "try", "doit"],
        group="Stanford",
        description="Stanford eight queens, solved 10 times",
    ),
]


#: Extended suite: additional workloads this repository ships beyond the
#: paper's Table-1 set (not part of the table reproduction, but covered by
#: the differential tests and available to the harness/CLI).
EXTRA_PROGRAMS: List[BenchProgram] = [
    BenchProgram(
        "bubble", "bubble.mc", ["bubble"], group="Extended",
        description="Stanford bubble sort",
    ),
    BenchProgram(
        "quicksort", "quicksort.mc", ["quick"], group="Extended",
        description="Stanford quicksort (recursive)",
    ),
    BenchProgram(
        "ackermann", "ackermann.mc", ["ack"], group="Extended",
        description="Ackermann(2,4)/(3,3): deep recursion",
    ),
    BenchProgram(
        "matmul", "matmul.mc", ["mm_naive", "mm_unrolled2"], group="Extended",
        description="float matrix multiply, naive and 2x-unrolled",
    ),
]


def all_programs() -> List[BenchProgram]:
    """Every registered program: the Table-1 set plus the extensions.
    This is the registry sweep workers resolve :class:`CellSpec` program
    names against, so any program listed here can be swept in parallel."""
    return PROGRAMS + EXTRA_PROGRAMS


def program(name: str) -> BenchProgram:
    for bench in all_programs():
        if bench.name == name:
            return bench
    raise KeyError(name)


def all_routines() -> List[str]:
    """Every Table-1 routine row, in suite order."""
    rows: List[str] = []
    for bench in PROGRAMS:
        rows.extend(bench.routines)
    return rows
