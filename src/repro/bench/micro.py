"""Interpreter microbenchmark: slow (tree-walking) vs fast (pre-decoded)
dispatch.

``python -m repro.bench.micro`` runs every benchmark program's reference
image through both interpreter paths and reports executed instructions
per second (Minstr/s) for each, plus the speedup.  Both paths execute
the *same* :class:`~repro.interp.machine.FunctionImage` objects and must
produce identical outputs and cycle counts — the harness asserts both,
so this doubles as a quick whole-suite equivalence smoke test.

The decoded form is cached on the image, so the fast column includes the
(one-time) decode cost on its first run; ``--repeat`` amortizes it the
way a sweep's repeated executions do.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from ..compiler import compile_source
from ..interp.machine import Machine
from .suite import all_programs, program


def _time_run(image, max_cycles: int, force_slow: bool):
    machine = Machine(image, max_cycles=max_cycles, force_slow=force_slow)
    started = time.perf_counter()
    machine.run("main")
    return time.perf_counter() - started, machine.stats


def run_micro(
    names: Optional[Sequence[str]] = None,
    repeat: int = 1,
    stream=sys.stdout,
) -> float:
    """Run the microbenchmark; returns the aggregate fast-path speedup."""
    benches = (
        [program(name) for name in names] if names else all_programs()
    )
    header = (
        f"{'program':<12} {'Minstr':>8} {'slow(s)':>9} {'fast(s)':>9} "
        f"{'slow Mi/s':>10} {'fast Mi/s':>10} {'speedup':>8}"
    )
    print(header, file=stream)
    print("-" * len(header), file=stream)
    total_slow = total_fast = 0.0
    total_instrs = 0
    for bench in benches:
        image = compile_source(
            bench.source(), filename=bench.filename
        ).reference_image()
        slow = fast = 0.0
        slow_stats = fast_stats = None
        for _ in range(repeat):
            seconds, slow_stats = _time_run(
                image, bench.max_cycles, force_slow=True
            )
            slow += seconds
            seconds, fast_stats = _time_run(
                image, bench.max_cycles, force_slow=False
            )
            fast += seconds
        if slow_stats.output != fast_stats.output:
            raise AssertionError(f"{bench.name}: outputs diverge across paths")
        if slow_stats.total != fast_stats.total:
            raise AssertionError(f"{bench.name}: counters diverge across paths")
        instrs = slow_stats.total.cycles * repeat
        total_slow += slow
        total_fast += fast
        total_instrs += instrs
        print(
            f"{bench.name:<12} {instrs / 1e6:>8.2f} {slow:>9.3f} {fast:>9.3f} "
            f"{instrs / slow / 1e6:>10.2f} {instrs / fast / 1e6:>10.2f} "
            f"{slow / fast:>7.1f}x",
            file=stream,
        )
    speedup = total_slow / total_fast
    print("-" * len(header), file=stream)
    print(
        f"{'total':<12} {total_instrs / 1e6:>8.2f} {total_slow:>9.3f} "
        f"{total_fast:>9.3f} {total_instrs / total_slow / 1e6:>10.2f} "
        f"{total_instrs / total_fast / 1e6:>10.2f} {speedup:>7.1f}x",
        file=stream,
    )
    return speedup


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.micro",
        description="slow-vs-fast interpreter microbenchmark",
    )
    parser.add_argument(
        "--programs",
        nargs="+",
        metavar="NAME",
        help="benchmark programs to run (default: all)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="executions per (program, path) pair (default 1)",
    )
    args = parser.parse_args(argv)
    run_micro(args.programs, repeat=args.repeat)
    return 0


if __name__ == "__main__":
    sys.exit(main())
