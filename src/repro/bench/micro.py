"""Interpreter microbenchmark: slow (tree-walking) vs fast (pre-decoded)
vs compiled (generated Python) dispatch.

``python -m repro.bench.micro`` runs every benchmark program's reference
image through all three interpreter tiers and reports executed
instructions per second (Minstr/s) for each, plus the compiled tier's
speedup over the other two.  All tiers execute the *same*
:class:`~repro.interp.machine.FunctionImage` objects and must produce
identical outputs and cycle counters — the harness asserts both, so
this doubles as a quick whole-suite equivalence smoke test.

Decoded and compiled forms are cached on the image, so those columns
include the (one-time) decode/translation cost on their first run;
``--repeat`` amortizes it the way a sweep's repeated executions do.

``--json FILE`` additionally writes the per-program and aggregate
numbers as a JSON document (CI uploads this as an artifact so tier
throughput can be tracked across commits).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional, Sequence

from ..compiler import compile_source
from ..interp.machine import INTERP_TIERS, Machine
from .suite import all_programs, program

#: Measurement order: slowest first so the decoded/compiled caches are
#: populated by the tier that owns them, not by a faster predecessor.
TIER_ORDER = tuple(INTERP_TIERS)  # ("slow", "fast", "compiled")


def _time_run(image, max_cycles: int, tier: str):
    machine = Machine(image, max_cycles=max_cycles, tier=tier)
    started = time.perf_counter()
    machine.run("main")
    return time.perf_counter() - started, machine.stats


def run_micro(
    names: Optional[Sequence[str]] = None,
    repeat: int = 1,
    stream=sys.stdout,
) -> Dict[str, object]:
    """Run the microbenchmark; returns the report dict (the ``--json``
    payload).  ``report["speedup"]["compiled_vs_fast"]`` is the headline
    execute-stage ratio quoted in docs/BENCHMARKING.md."""
    benches = (
        [program(name) for name in names] if names else all_programs()
    )
    header = (
        f"{'program':<12} {'Minstr':>8} "
        f"{'slow Mi/s':>10} {'fast Mi/s':>10} {'comp Mi/s':>10} "
        f"{'c/slow':>7} {'c/fast':>7}"
    )
    print(header, file=stream)
    print("-" * len(header), file=stream)
    totals = {tier: 0.0 for tier in TIER_ORDER}
    total_instrs = 0
    rows: List[Dict[str, object]] = []
    for bench in benches:
        image = compile_source(
            bench.source(), filename=bench.filename
        ).reference_image()
        seconds = {tier: 0.0 for tier in TIER_ORDER}
        stats = {}
        for _ in range(repeat):
            for tier in TIER_ORDER:
                elapsed, run_stats = _time_run(image, bench.max_cycles, tier)
                seconds[tier] += elapsed
                stats[tier] = run_stats
        for tier in TIER_ORDER[1:]:
            if stats["slow"].output != stats[tier].output:
                raise AssertionError(
                    f"{bench.name}: outputs diverge on the {tier} tier"
                )
            if stats["slow"].total != stats[tier].total:
                raise AssertionError(
                    f"{bench.name}: counters diverge on the {tier} tier"
                )
        instrs = stats["slow"].total.cycles * repeat
        total_instrs += instrs
        for tier in TIER_ORDER:
            totals[tier] += seconds[tier]
        mips = {
            tier: instrs / seconds[tier] / 1e6 for tier in TIER_ORDER
        }
        rows.append(
            {
                "program": bench.name,
                "instructions": instrs,
                "seconds": dict(seconds),
                "minstr_per_s": {t: round(v, 2) for t, v in mips.items()},
                "speedup": {
                    "compiled_vs_slow": round(
                        seconds["slow"] / seconds["compiled"], 2
                    ),
                    "compiled_vs_fast": round(
                        seconds["fast"] / seconds["compiled"], 2
                    ),
                },
            }
        )
        print(
            f"{bench.name:<12} {instrs / 1e6:>8.2f} "
            f"{mips['slow']:>10.2f} {mips['fast']:>10.2f} "
            f"{mips['compiled']:>10.2f} "
            f"{seconds['slow'] / seconds['compiled']:>6.1f}x "
            f"{seconds['fast'] / seconds['compiled']:>6.1f}x",
            file=stream,
        )
    print("-" * len(header), file=stream)
    aggregate_mips = {
        tier: total_instrs / totals[tier] / 1e6 for tier in TIER_ORDER
    }
    print(
        f"{'total':<12} {total_instrs / 1e6:>8.2f} "
        f"{aggregate_mips['slow']:>10.2f} {aggregate_mips['fast']:>10.2f} "
        f"{aggregate_mips['compiled']:>10.2f} "
        f"{totals['slow'] / totals['compiled']:>6.1f}x "
        f"{totals['fast'] / totals['compiled']:>6.1f}x",
        file=stream,
    )
    return {
        "repeat": repeat,
        "programs": rows,
        "total_instructions": total_instrs,
        "total_seconds": {t: round(v, 4) for t, v in totals.items()},
        "minstr_per_s": {t: round(v, 2) for t, v in aggregate_mips.items()},
        "speedup": {
            "compiled_vs_slow": round(
                totals["slow"] / totals["compiled"], 2
            ),
            "compiled_vs_fast": round(
                totals["fast"] / totals["compiled"], 2
            ),
            "fast_vs_slow": round(totals["slow"] / totals["fast"], 2),
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.micro",
        description="slow/fast/compiled interpreter microbenchmark",
    )
    parser.add_argument(
        "--programs",
        nargs="+",
        metavar="NAME",
        help="benchmark programs to run (default: all)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="executions per (program, tier) pair (default 1)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also write the report as JSON ('-' for stdout)",
    )
    args = parser.parse_args(argv)
    report = run_micro(args.programs, repeat=args.repeat)
    if args.json == "-":
        json.dump(report, sys.stdout, indent=2)
        print()
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
