"""Node types of the Program Dependence Graph.

Our PDG mirrors the structure produced by ``pdgcc`` (the paper's front
end): a hierarchy of *region nodes*, where each region node groups the
program parts executed under the same control conditions, with *predicate
nodes* introducing new control conditions.  Low-level iloc statements are
attached directly to region nodes ("the input to the RAP register
allocator consists of the PDG with attached low-level intermediate code
statements", §3).

A region node's ``items`` list is the ordered sequence of things executed
under that region's control condition.  An item is one of:

* an :class:`~repro.ir.iloc.Instr` — a directly attached iloc statement
  (this is the "intermediate code of the parent region" that
  ``add_region_conflicts`` scans);
* a child :class:`Region` — a *subregion*;
* a :class:`Predicate` — a condition test whose true/false subregions
  execute under a refined control condition.

Loops are regions with ``is_loop=True``: the loop region's items (condition
code plus the predicate guarding the body subregion) execute once per
iteration, exactly like region ``R2`` in the paper's Figure 1.

Statement-level granularity: by default every Mini-C source statement
receives its own region node, reproducing the pdgcc property that §3.3 of
the paper identifies as the cause of both RAP's copy-elimination win and
its spill-code excess (Figure 7).
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Set, Union

from ..ir.iloc import Instr, Op, Reg

_next_region_id = itertools.count(1)


class Predicate:
    """A predicate node: tests ``cond`` and transfers control to one of two
    subregions.

    The persistent ``branch`` instruction (a ``cbr``) is what the
    linearizer emits for this predicate; keeping one identity-stable
    instruction object lets dataflow results computed on linear code be
    queried per PDG node.
    """

    __slots__ = ("true_region", "false_region", "branch")

    def __init__(
        self,
        cond: Reg,
        true_region: Optional["Region"] = None,
        false_region: Optional["Region"] = None,
    ):
        self.true_region = true_region
        self.false_region = false_region
        self.branch = Instr(Op.CBR, srcs=[cond])

    @property
    def cond(self) -> Reg:
        """The tested register (kept in the branch so register rewrites and
        spill renaming can never desynchronize the two)."""
        return self.branch.srcs[0]

    def regions(self) -> List["Region"]:
        out = []
        if self.true_region is not None:
            out.append(self.true_region)
        if self.false_region is not None:
            out.append(self.false_region)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Predicate {self.branch.srcs[0]}>"


Item = Union[Instr, "Region", Predicate]


class Region:
    """A region node and (implicitly, via ``items``) the region below it.

    Terminology from the paper, §3.1: "A *region* refers to a region node
    in the PDG and all of its control dependence successors.  The *parent
    region* refers to only the topmost region node of the region.  A
    *subregion* of the parent region refers to a subregion node and all of
    its control dependence successors."

    Correspondingly, :meth:`direct_instrs` is the intermediate code of the
    parent region, :meth:`subregions` are the child region nodes, and
    :meth:`walk_instrs` is the code of the whole region.
    """

    __slots__ = ("id", "kind", "is_loop", "items", "note")

    def __init__(self, kind: str = "block", is_loop: bool = False, note: str = ""):
        self.id = next(_next_region_id)
        self.kind = kind
        self.is_loop = is_loop
        self.items: List[Item] = []
        self.note = note

    @property
    def name(self) -> str:
        return f"R{self.id}"

    # -- structure queries ----------------------------------------------------

    def direct_instrs(self) -> List[Instr]:
        """Iloc statements attached directly to this region node, in order.

        A predicate contributes its branch instruction (the test itself is
        executed under this region's control condition).
        """
        out: List[Instr] = []
        for item in self.items:
            if isinstance(item, Instr):
                out.append(item)
            elif isinstance(item, Predicate):
                out.append(item.branch)
        return out

    def subregions(self) -> List["Region"]:
        """Immediate child region nodes (including predicate branches)."""
        out: List[Region] = []
        for item in self.items:
            if isinstance(item, Region):
                out.append(item)
            elif isinstance(item, Predicate):
                out.extend(item.regions())
        return out

    def walk_regions(self) -> Iterator["Region"]:
        """This region and every descendant region node, pre-order."""
        yield self
        for sub in self.subregions():
            yield from sub.walk_regions()

    def walk_instrs(self) -> Iterator[Instr]:
        """Every iloc statement in the whole region, in execution order.

        Iterative (explicit iterator stack) rather than ``yield from``
        recursion: this is the allocator's innermost traversal, and the
        recursive form pays one generator resume per nesting level per
        yielded instruction.
        """
        stack = [iter(self.items)]
        while stack:
            pushed = False
            for item in stack[-1]:
                if isinstance(item, Instr):
                    yield item
                elif isinstance(item, Predicate):
                    yield item.branch
                    false_region = item.false_region
                    if false_region is not None:
                        stack.append(iter(false_region.items))
                    true_region = item.true_region
                    if true_region is not None:
                        stack.append(iter(true_region.items))
                    if true_region is not None or false_region is not None:
                        pushed = True
                        break
                else:
                    stack.append(iter(item.items))
                    pushed = True
                    break
            if not pushed:
                stack.pop()

    def referenced_regs(self) -> Set[Reg]:
        """All registers used or defined anywhere in the region."""
        out: Set[Reg] = set()
        for instr in self.walk_instrs():
            out.update(instr.regs())
        return out

    def direct_referenced_regs(self) -> Set[Reg]:
        """Registers referenced by the parent region's own code only."""
        out: Set[Reg] = set()
        for instr in self.direct_instrs():
            out.update(instr.regs())
        return out

    # -- structure edits --------------------------------------------------------

    def insert_before(self, index: int, instr: Instr) -> None:
        self.items.insert(index, instr)

    def index_of(self, item: Item) -> int:
        for position, existing in enumerate(self.items):
            if existing is item:
                return position
        raise ValueError(f"{item!r} is not an item of {self.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flavor = "loop " if self.is_loop else ""
        return f"<{flavor}Region {self.name} {self.kind} items={len(self.items)}>"
