"""Structural verification of a PDG function.

RAP mutates the PDG heavily (spill insertion, renaming, motion's spill
nodes, rematerialization's deletions).  This verifier checks the
structural invariants every transformation must preserve; the test suite
runs it after each phase and the property-based tests run it on every
random program's allocation.

Checked invariants:

* the region hierarchy is a tree: every region and every instruction
  appears exactly once;
* loop regions contain a guard predicate (the linearizer requires it);
* predicate branch instructions are ``cbr`` with exactly one use;
* no instruction object is shared between two positions;
* all register operands are one consistent kind (all-virtual before
  allocation, all-physical after — mixed code is a half-rewritten bug).
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..ir.iloc import Instr, Op
from .graph import PDGFunction
from .nodes import Predicate, Region


class PDGValidationError(AssertionError):
    """A structural invariant of the PDG is violated."""


def check_pdg(func: PDGFunction, expect_kind: Optional[str] = None) -> None:
    """Verify ``func``'s region tree; ``expect_kind`` is ``"v"``/``"p"``
    to additionally require uniformly virtual/physical operands."""
    seen_regions: Set[int] = set()
    seen_instrs: Set[int] = set()

    def visit_region(region: Region) -> None:
        if id(region) in seen_regions:
            raise PDGValidationError(
                f"region {region.name} appears twice in the hierarchy"
            )
        seen_regions.add(id(region))
        guard_found = False
        for item in region.items:
            if isinstance(item, Instr):
                _visit_instr(item)
            elif isinstance(item, Predicate):
                guard_found = True
                if item.branch.op is not Op.CBR:
                    raise PDGValidationError(
                        f"predicate branch in {region.name} is {item.branch.op}"
                    )
                if len(item.branch.srcs) != 1:
                    raise PDGValidationError(
                        f"predicate in {region.name} must test one register"
                    )
                _visit_instr(item.branch)
                for sub in item.regions():
                    visit_region(sub)
            elif isinstance(item, Region):
                visit_region(item)
            else:
                raise PDGValidationError(
                    f"illegal item {item!r} in {region.name}"
                )
        if region.is_loop and not guard_found:
            raise PDGValidationError(
                f"loop region {region.name} has no guard predicate"
            )

    def _visit_instr(instr: Instr) -> None:
        if id(instr) in seen_instrs:
            raise PDGValidationError(f"instruction {instr} appears twice")
        seen_instrs.add(id(instr))
        if instr.op is Op.LABEL:
            raise PDGValidationError("label pseudo-instructions may not live in a PDG")
        if expect_kind is not None:
            for reg in instr.regs():
                if reg.kind != expect_kind:
                    raise PDGValidationError(
                        f"{instr} mixes register kinds (expected all "
                        f"{expect_kind!r})"
                    )

    visit_region(func.entry)
