"""The Program Dependence Graph: regions, predicates, analyses."""

from .graph import GlobalVar, Module, ParamInfo, PDGFunction
from .linearize import LinearCode, linearize
from .liveness import FunctionAnalysis
from .nodes import Predicate, Region

__all__ = [
    "Region",
    "Predicate",
    "PDGFunction",
    "Module",
    "GlobalVar",
    "ParamInfo",
    "linearize",
    "LinearCode",
    "FunctionAnalysis",
]
