"""Containers for whole functions and modules in PDG form."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from ..ir.iloc import Instr, Reg, vreg
from .nodes import Item, Predicate, Region


@dataclass
class GlobalVar:
    """A module-level variable.

    Global scalars are memory resident (accessed with ``ldm``/``stm`` on a
    ``global``-space symbol); global arrays live in the data heap and code
    obtains their base address with ``loada``.
    """

    name: str
    base_type: str
    dims: List[int] = field(default_factory=list)
    init: Union[int, float, None] = None

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def size(self) -> int:
        total = 1
        for extent in self.dims:
            total *= extent
        return total


@dataclass
class ParamInfo:
    """A formal parameter of a PDG function and the register receiving it."""

    name: str
    reg: Reg
    base_type: str
    is_array: bool = False


class PDGFunction:
    """One function: an entry region plus register bookkeeping.

    ``entry`` is the function's entry region node — the root of the region
    hierarchy ("The interference graph for the entry region of the PDG has
    nodes to represent every virtual register referenced in the PDG and the
    register assignment is done at this level", §3.1).
    """

    def __init__(self, name: str, ret_type: str, params: List[ParamInfo]):
        self.name = name
        self.ret_type = ret_type
        self.params = params
        self.entry = Region(kind="entry", note=f"entry of {name}")
        self._next_vreg = 0
        self._next_spill = 0
        #: monotonic mutation counter: every mutation entry point (spill
        #: insertion, rematerialization, dead-def sweeps, spill-code
        #: motion, coalescing, the final physical rewrite) bumps it, so
        #: analysis caches can key on "has the code actually changed"
        #: instead of a coarse dirty flag.
        self.version = 0

    def bump_version(self) -> int:
        """Record one mutation of the region tree or its instructions."""
        self.version += 1
        return self.version

    # -- register management -----------------------------------------------

    def new_vreg(self) -> Reg:
        reg = vreg(self._next_vreg)
        self._next_vreg += 1
        return reg

    def reserve_vregs(self, count: int) -> None:
        """Make sure the next ``new_vreg`` index is at least ``count``."""
        self._next_vreg = max(self._next_vreg, count)

    def new_spill_index(self) -> int:
        index = self._next_spill
        self._next_spill += 1
        return index

    # -- structure queries ----------------------------------------------------

    def walk_regions(self) -> Iterator[Region]:
        return self.entry.walk_regions()

    def walk_instrs(self) -> Iterator[Instr]:
        return self.entry.walk_instrs()

    def referenced_regs(self) -> Set[Reg]:
        return self.entry.referenced_regs()

    def parent_map(self) -> Dict[Region, Tuple[Region, int]]:
        """Map each region to ``(parent_region, index_of_its_item)``.

        For a region hanging off a predicate, the index is that of the
        predicate item in the parent's list.
        """
        parents: Dict[Region, Tuple[Region, int]] = {}
        for region in self.walk_regions():
            for index, item in enumerate(region.items):
                if isinstance(item, Region):
                    parents[item] = (region, index)
                elif isinstance(item, Predicate):
                    for sub in item.regions():
                        parents[sub] = (region, index)
        return parents

    def instr_locations(self) -> Dict[int, Tuple[Region, int]]:
        """Map ``id(instr)`` to ``(owning_region, item_index)``.

        Predicate branch instructions map to the predicate's item position
        in the owning region.  Rebuild after structural edits.
        """
        locations: Dict[int, Tuple[Region, int]] = {}
        for region in self.walk_regions():
            for index, item in enumerate(region.items):
                if isinstance(item, Instr):
                    locations[id(item)] = (region, index)
                elif isinstance(item, Predicate):
                    locations[id(item.branch)] = (region, index)
        return locations

    def reference_counts(self) -> Dict[Reg, int]:
        """Total number of references (uses + defs) of each register."""
        counts: Dict[Reg, int] = {}
        for instr in self.walk_instrs():
            for reg in instr.regs():
                counts[reg] = counts.get(reg, 0) + 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PDGFunction {self.name}>"


class Module:
    """A compiled Mini-C translation unit in PDG form."""

    def __init__(self) -> None:
        self.globals: Dict[str, GlobalVar] = {}
        self.functions: Dict[str, PDGFunction] = {}

    def add_global(self, var: GlobalVar) -> None:
        self.globals[var.name] = var

    def add_function(self, func: PDGFunction) -> None:
        self.functions[func.name] = func

    def function(self, name: str) -> PDGFunction:
        return self.functions[name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Module globals={sorted(self.globals)} "
            f"functions={sorted(self.functions)}>"
        )
