"""Per-region dataflow facts for a PDG function.

RAP needs, for every region and at several points inside it (§3.1 of the
paper): live-on-entry and live-on-exit sets, per-instruction live sets for
interference construction, reference sets, and locality ("a virtual
register is *local* to a region if all references to that virtual register
can be found in intermediate code within the region; otherwise it is
*global* to that region").

Rather than running a bespoke hierarchical analysis over the region tree,
we exploit the identity-sharing linearization (:mod:`repro.pdg.linearize`):
one ordinary CFG liveness pass over the linear code answers every
region-level query, because each structured region occupies one contiguous
linear span.  Loop-carried liveness falls out of the CFG fixpoint for
free.

A :class:`FunctionAnalysis` is a snapshot — rebuild it after mutating the
PDG (RAP rebuilds one per allocation round, mirroring the paper's
"the interference graph is rebuilt" loop).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..cfg.graph import CFG
from ..cfg.liveness import LivenessResult, compute_liveness
from ..cfg.reachdefs import RegChains, chains_for
from ..ir.iloc import Instr, Reg
from .graph import PDGFunction
from .linearize import LinearCode, linearize
from .nodes import Region


class FunctionAnalysis:
    """Linearization + CFG + liveness snapshot of one PDG function."""

    def __init__(self, func: PDGFunction):
        self.func = func
        #: the function's mutation counter at snapshot time (consumers
        #: key their caches on it — see ``RAPContext.analysis``).
        self.version = getattr(func, "version", 0)
        self.linear: LinearCode = linearize(func)
        self.cfg = CFG(self.linear.instrs)
        self.live: LivenessResult = compute_liveness(self.cfg)
        self._referenced: Dict[int, Set[Reg]] = {}
        self._ref_counts: Optional[Dict[Reg, int]] = None
        self._region_ref_counts: Dict[int, Dict[Reg, int]] = {}
        self._chains: Dict[Reg, RegChains] = {}

    # -- per-instruction ----------------------------------------------------

    def live_before(self, instr: Instr) -> Set[Reg]:
        return self.live.live_before(instr)

    def live_after(self, instr: Instr) -> Set[Reg]:
        return self.live.live_after(instr)

    # -- per-region -----------------------------------------------------------

    def live_in(self, region: Region) -> Set[Reg]:
        start, _ = self.linear.region_span[region]
        return self.live.live_at[start]

    def live_out(self, region: Region) -> Set[Reg]:
        _, end = self.linear.region_span[region]
        return self.live.live_at[end]

    def referenced(self, region: Region) -> Set[Reg]:
        """Registers referenced anywhere in the region (cached)."""
        cached = self._referenced.get(id(region))
        if cached is None:
            cached = region.referenced_regs()
            self._referenced[id(region)] = cached
        return cached

    def is_local_to(self, reg: Reg, region: Region) -> bool:
        """True if *all* references of ``reg`` are inside ``region``.

        Parameter home registers are defined by the entry prologue's
        ``ldm``, so they are naturally global to every proper subregion.
        """
        if self._ref_counts is None:
            self._ref_counts = self.func.reference_counts()
        counts = self._region_ref_counts.get(id(region))
        if counts is None:
            # One walk per region per snapshot (memoized) instead of one
            # walk per (register, region) query.
            counts = {}
            for instr in region.walk_instrs():
                for operand in instr.regs():
                    counts[operand] = counts.get(operand, 0) + 1
            self._region_ref_counts[id(region)] = counts
        return counts.get(reg, 0) == self._ref_counts.get(reg, 0)

    def is_global_to(self, reg: Reg, region: Region) -> bool:
        """Referenced (or arriving as a parameter) outside ``region``."""
        return not self.is_local_to(reg, region)

    # -- chains ---------------------------------------------------------------

    def chains(self, reg: Reg) -> RegChains:
        """ud/du chains of one register (used by spill insertion);
        memoized per register for the lifetime of the snapshot."""
        cached = self._chains.get(reg)
        if cached is None:
            cached = self._chains[reg] = chains_for(self.cfg, reg)
        return cached
