"""Data-dependence edges of the PDG.

The PDG proper carries both control dependence (our region hierarchy) and
data dependence.  The allocators consume liveness rather than explicit
dependence edges, but the edges themselves are part of the representation
the paper builds on (Figure 1 draws them), are exported by the DOT
renderer, and give the test suite an independent view to validate the
ud/du machinery against.

Three classic kinds over registers:

* **flow** (true) dependence: definition reaches a use;
* **anti** dependence: use followed by a redefinition;
* **output** dependence: definition followed by a redefinition.

Edges connect iloc instructions (by identity); region-level edges can be
derived by mapping instructions to their owning regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple

from ..cfg.graph import CFG
from ..cfg.reachdefs import chains_for
from ..ir.iloc import Instr, Reg
from .graph import PDGFunction
from .liveness import FunctionAnalysis


@dataclass(frozen=True)
class DataDep:
    """One data-dependence edge ``source -> sink`` on register ``reg``."""

    source: Instr
    sink: Instr
    reg: Reg
    kind: str  # "flow" | "anti" | "output"


def flow_dependences(analysis: FunctionAnalysis) -> List[DataDep]:
    """All def→use (true) dependences of a function."""
    edges: List[DataDep] = []
    seen: Set[Tuple[int, int, Reg]] = set()
    for reg in sorted(_all_regs(analysis)):
        chains = analysis.chains(reg)
        for definition in chains.all_defs():
            for use in chains.uses_reached_by(definition):
                key = (id(definition), id(use), reg)
                if key not in seen:
                    seen.add(key)
                    edges.append(DataDep(definition, use, reg, "flow"))
    return edges


def all_dependences(analysis: FunctionAnalysis) -> List[DataDep]:
    """Flow, anti, and output dependences.

    Anti and output edges are derived from the same reaching information
    computed on the reversed role: a use (or def) *anti/output-depends* on
    a later redefinition when the redefinition can follow it on some path.
    For the structured code our front end emits, a simple ordered-scan per
    basic block plus the flow chains covers the cases the PDG literature
    draws; cross-block anti/output edges are approximated through block
    order in the linearization (sufficient for rendering and testing — the
    allocators never consume these edges).
    """
    edges = flow_dependences(analysis)
    code = analysis.linear.instrs
    last_def: Dict[Reg, Instr] = {}
    last_uses: Dict[Reg, List[Instr]] = {}
    for instr in code:
        for reg in instr.defs:
            previous = last_def.get(reg)
            if previous is not None:
                edges.append(DataDep(previous, instr, reg, "output"))
            for use in last_uses.get(reg, []):
                if use is not instr:
                    edges.append(DataDep(use, instr, reg, "anti"))
            last_def[reg] = instr
            last_uses[reg] = []
        for reg in instr.uses:
            last_uses.setdefault(reg, []).append(instr)
    return edges


def region_level_dependences(
    func: PDGFunction, analysis: FunctionAnalysis
) -> Set[Tuple[str, str, str]]:
    """Dependences lifted to region names: ``(source_region, sink_region,
    kind)`` — the granularity at which Figure 1 draws its arrows."""
    locations = func.instr_locations()
    lifted: Set[Tuple[str, str, str]] = set()
    for dep in flow_dependences(analysis):
        src = locations.get(id(dep.source))
        dst = locations.get(id(dep.sink))
        if src is None or dst is None:
            continue
        lifted.add((src[0].name, dst[0].name, dep.kind))
    return lifted


def _all_regs(analysis: FunctionAnalysis) -> Set[Reg]:
    regs: Set[Reg] = set()
    for instr in analysis.linear.instrs:
        regs.update(instr.regs())
    return regs
