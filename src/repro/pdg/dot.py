"""Graphviz (DOT) export of a PDG.

Renders the region hierarchy (control dependence, solid edges, labelled T/F
out of predicates) and optionally the register flow dependences (dashed
edges), reproducing the visual vocabulary of the paper's Figure 1.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.iloc import Instr, Op
from .datadeps import flow_dependences
from .graph import PDGFunction
from .liveness import FunctionAnalysis
from .nodes import Predicate, Region


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(
    func: PDGFunction,
    include_code: bool = True,
    include_data_deps: bool = False,
) -> str:
    """Serialize the function's PDG as a DOT digraph."""
    lines: List[str] = [
        f'digraph "{_escape(func.name)}" {{',
        "  rankdir=TB;",
        '  node [fontname="Helvetica"];',
    ]
    instr_node: Dict[int, str] = {}
    counter = [0]

    def fresh(prefix: str) -> str:
        counter[0] += 1
        return f"{prefix}{counter[0]}"

    def emit_region(region: Region) -> str:
        shape = "ellipse"
        label = region.name
        if region.is_loop:
            label += " (loop)"
        if region.note:
            label += f"\\n{_escape(region.note)}"
        name = f"R{region.id}"
        lines.append(f'  {name} [label="{label}", shape={shape}];')
        for item in region.items:
            if isinstance(item, Instr):
                if not include_code:
                    continue
                node = fresh("S")
                instr_node[id(item)] = node
                lines.append(
                    f'  {node} [label="{_escape(str(item))}", shape=box];'
                )
                lines.append(f"  {name} -> {node};")
            elif isinstance(item, Predicate):
                pred = fresh("P")
                lines.append(
                    f'  {pred} [label="{_escape(str(item.cond))}?", '
                    f"shape=diamond];"
                )
                instr_node[id(item.branch)] = pred
                lines.append(f"  {name} -> {pred};")
                if item.true_region is not None:
                    child = emit_region(item.true_region)
                    lines.append(f'  {pred} -> {child} [label="T"];')
                if item.false_region is not None:
                    child = emit_region(item.false_region)
                    lines.append(f'  {pred} -> {child} [label="F"];')
            else:
                child = emit_region(item)
                lines.append(f"  {name} -> {child};")
        return name

    emit_region(func.entry)

    if include_data_deps and include_code:
        analysis = FunctionAnalysis(func)
        for dep in flow_dependences(analysis):
            src = instr_node.get(id(dep.source))
            dst = instr_node.get(id(dep.sink))
            if src and dst and src != dst:
                lines.append(
                    f'  {src} -> {dst} [style=dashed, color=gray, '
                    f'label="{_escape(str(dep.reg))}"];'
                )
    lines.append("}")
    return "\n".join(lines)
