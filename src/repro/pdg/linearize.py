"""Deterministic linearization of a PDG function into branch/label code.

The allocators reason over the PDG but the interpreter (and the baseline
GRA allocator) consume linear iloc.  Linearization **shares instruction
objects with the PDG**: every ``Instr`` attached to a region node appears
by identity in the emitted list, and every predicate node contributes its
persistent ``branch`` instruction.  Dataflow analyses run on the linear
code can therefore be queried per PDG item by object identity, which is
how RAP obtains per-region liveness (live-in/live-out of every region is
just the live set at the region's linear span boundaries — structured
regions occupy contiguous spans).

Only labels and unconditional jumps are freshly created per linearization.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..ir.iloc import Instr, Op
from .graph import PDGFunction
from .nodes import Predicate, Region


class LinearCode:
    """The result of linearizing one PDG function."""

    def __init__(self, func: PDGFunction):
        self.func = func
        self.instrs: List[Instr] = []
        #: region -> (start, end) indices; the region's code is
        #: ``instrs[start:end]`` and the position ``end`` is the first
        #: point after the region (so ``live_at[end]`` is its live-out).
        self.region_span: Dict[Region, Tuple[int, int]] = {}
        self._index_of: Dict[int, int] = {}

    def index_of(self, instr: Instr) -> int:
        """Linear position of an instruction (by identity)."""
        return self._index_of[id(instr)]

    def contains(self, instr: Instr) -> bool:
        """True when ``instr`` (by identity) appears in this snapshot —
        false for instructions inserted after linearization."""
        return id(instr) in self._index_of

    def _append(self, instr: Instr) -> None:
        self._index_of[id(instr)] = len(self.instrs)
        self.instrs.append(instr)

    def __len__(self) -> int:
        return len(self.instrs)

    def __str__(self) -> str:
        lines = []
        for instr in self.instrs:
            if instr.op is Op.LABEL:
                lines.append(str(instr))
            else:
                lines.append(f"    {instr}")
        return "\n".join(lines)


def linearize(func: PDGFunction) -> LinearCode:
    """Emit ``func`` as linear code, recording every region's span."""
    emitter = _Emitter(func)
    emitter.emit_region(func.entry)
    # Guarantee the function cannot fall off the end.
    code = emitter.code
    if not code.instrs or code.instrs[-1].op is not Op.RET:
        code._append(Instr(Op.RET))
    return code


class _Emitter:
    def __init__(self, func: PDGFunction):
        self.code = LinearCode(func)
        self._next_label = 0
        self._prefix = func.name

    def _fresh_label(self, hint: str) -> str:
        self._next_label += 1
        return f"{self._prefix}_{hint}{self._next_label}"

    def emit_region(self, region: Region) -> None:
        start = len(self.code)
        if region.is_loop:
            self._emit_loop(region)
        else:
            for item in region.items:
                self._emit_item(item)
        self.code.region_span[region] = (start, len(self.code))

    def _emit_item(self, item) -> None:
        if isinstance(item, Instr):
            self.code._append(item)
        elif isinstance(item, Region):
            self.emit_region(item)
        elif isinstance(item, Predicate):
            self._emit_if(item)
        else:  # pragma: no cover
            raise TypeError(f"bad PDG item {item!r}")

    def _emit_if(self, pred: Predicate) -> None:
        code = self.code
        then_label = self._fresh_label("then")
        end_label = self._fresh_label("endif")
        else_label = (
            self._fresh_label("else") if pred.false_region is not None else end_label
        )
        pred.branch.label = then_label
        pred.branch.label_false = else_label
        code._append(pred.branch)
        code._append(Instr(Op.LABEL, label=then_label))
        if pred.true_region is not None:
            self.emit_region(pred.true_region)
        if pred.false_region is not None:
            code._append(Instr(Op.JMP, label=end_label))
            code._append(Instr(Op.LABEL, label=else_label))
            self.emit_region(pred.false_region)
        code._append(Instr(Op.LABEL, label=end_label))

    def _emit_loop(self, region: Region) -> None:
        """A loop region: items are the per-iteration code, whose final
        predicate guards the body subregion (paper Figure 1, regions
        R2/R3)."""
        code = self.code
        header = self._fresh_label("loop")
        body_label = self._fresh_label("body")
        exit_label = self._fresh_label("endloop")
        code._append(Instr(Op.LABEL, label=header))
        items = list(region.items)
        guard_index = None
        for index in range(len(items) - 1, -1, -1):
            if isinstance(items[index], Predicate):
                guard_index = index
                break
        if guard_index is None:
            raise ValueError(f"loop region {region.name} has no guard predicate")
        for item in items[:guard_index]:
            self._emit_item(item)
        guard: Predicate = items[guard_index]
        guard.branch.label = body_label
        guard.branch.label_false = exit_label
        code._append(guard.branch)
        code._append(Instr(Op.LABEL, label=body_label))
        if guard.true_region is not None:
            self.emit_region(guard.true_region)
        for item in items[guard_index + 1:]:
            self._emit_item(item)
        code._append(Instr(Op.JMP, label=header))
        code._append(Instr(Op.LABEL, label=exit_label))
