"""Liveness with phi semantics, plus MAXLIVE.

Phis are not instructions, so classic liveness misattributes their
operands: a phi argument is live *on the incoming edge only* (it is read
"in the predecessor", at the moment of the edge transfer), and a phi
destination is live from the top of its block.  This module implements
the corrected equations:

    edge_live(P -> S) = (live_in(S) - phi_dests(S)) | phi_args_from(S, P)
    live_out(B)       = union of edge_live(B -> S) over successors
    live_in(B)        = phi_dests(B) | upexposed(B) | (live_out(B) - defs(B))

``maxlive`` is the register pressure the spiller must lower to ``k``:
the maximum, over every program point, of simultaneously live values —
counting a value as needing a register at its definition even when dead
(a def writes a register whether or not anyone reads it).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from ..cfg.graph import CFG
from ..ir.iloc import Instr, Reg
from .form import Phi


class SSALiveness:
    """Liveness facts over SSA code + phi side table."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        #: per block index; live_in includes the block's phi dests.
        self.block_live_in: Dict[int, Set[Reg]] = {}
        self.block_live_out: Dict[int, Set[Reg]] = {}
        #: live set immediately before code[i] (phi dests of a block are
        #: live at its first position).
        self.live_before: List[Set[Reg]] = []
        #: live set immediately after code[i] (before = the next
        #: boundary down; for a terminator this is the block's live_out).
        self.live_after: List[Set[Reg]] = []
        self.maxlive: int = 0
        #: position witnessing maxlive (block entry -> the block's start).
        self.maxlive_at: int = 0

    def edge_live(
        self, pred_index: int, succ_index: int, phis: Dict[int, List[Phi]]
    ) -> Set[Reg]:
        """Values live along the CFG edge ``pred -> succ``."""
        dests = {phi.dest for phi in phis.get(succ_index, ())}
        live = self.block_live_in[succ_index] - dests
        for phi in phis.get(succ_index, ()):
            live.add(phi.args[pred_index])
        return live


def ssa_liveness(
    code: Sequence[Instr], cfg: CFG, phis: Dict[int, List[Phi]]
) -> SSALiveness:
    """Fixed-point liveness over ``code``/``cfg`` with ``phis`` applied
    at block tops.  Physical registers are ignored (SSA code has none)."""
    result = SSALiveness(cfg)
    n_blocks = len(cfg.blocks)

    upexposed: Dict[int, Set[Reg]] = {}
    defs: Dict[int, Set[Reg]] = {}
    dests: Dict[int, Set[Reg]] = {}
    for block in cfg.blocks:
        up: Set[Reg] = set()
        killed: Set[Reg] = set()
        for index in block.instr_indices():
            instr = code[index]
            for reg in instr.uses:
                if reg.is_virtual and reg not in killed:
                    up.add(reg)
            for reg in instr.defs:
                killed.add(reg)
        upexposed[block.index] = up
        defs[block.index] = killed
        dests[block.index] = {phi.dest for phi in phis.get(block.index, ())}

    live_in: Dict[int, Set[Reg]] = {b.index: set() for b in cfg.blocks}
    live_out: Dict[int, Set[Reg]] = {b.index: set() for b in cfg.blocks}

    order = cfg.reverse_postorder()
    changed = True
    while changed:
        changed = False
        for block in reversed(order):
            out: Set[Reg] = set()
            for succ in block.succs:
                out |= live_in[succ.index] - dests[succ.index]
                for phi in phis.get(succ.index, ()):
                    out.add(phi.args[block.index])
            new_in = (
                dests[block.index]
                | upexposed[block.index]
                | (out - defs[block.index])
            )
            if (
                out != live_out[block.index]
                or new_in != live_in[block.index]
            ):
                live_out[block.index] = out
                live_in[block.index] = new_in
                changed = True

    result.block_live_in = live_in
    result.block_live_out = live_out

    n = len(code)
    result.live_before = [set() for _ in range(n)]
    result.live_after = [set() for _ in range(n)]
    maxlive = 0
    maxlive_at = 0
    for block in cfg.blocks:
        live = set(live_out[block.index])
        for index in range(block.end - 1, block.start - 1, -1):
            instr = code[index]
            result.live_after[index] = set(live)
            # Pressure at the def point: the def occupies a register
            # alongside everything live after, even if never read.
            pressure = len(live | set(instr.defs))
            if pressure > maxlive:
                maxlive, maxlive_at = pressure, index
            live = (live - set(instr.defs)) | {
                reg for reg in instr.uses if reg.is_virtual
            }
            result.live_before[index] = set(live)
            if len(live) > maxlive:
                maxlive, maxlive_at = len(live), index
        # Block entry: phi dests are all live at once alongside the
        # live-through values (a parallel copy targets them together).
        entry_pressure = len(live | dests[block.index])
        if entry_pressure > maxlive:
            maxlive, maxlive_at = entry_pressure, block.start
    result.maxlive = maxlive
    result.maxlive_at = maxlive_at
    return result
