"""SSA construction: normalize, insert phis, rename.

Pipeline:

1. **Normalize** the linear code: drop unreachable blocks (a function
   whose every branch returns leaves a dead epilogue) and split every
   critical edge with a fresh ``label; jmp`` block.  With no critical
   edges, out-of-SSA copies and spilled-phi stores always land on an
   edge owned by exactly one predecessor, which kills the lost-copy
   class of bugs at the source.
2. **Insert phis** at the iterated dominance frontier of each virtual
   register's definition blocks, pruned by block liveness (a phi is
   placed only where the register is live-in).
3. **Rename** along the dominator tree with the classic per-register
   stack discipline.

A use reached by no definition on some path (the fuzzer can produce
path-dependent def-before-use) becomes a per-register *undef* value:
no defining instruction, live from entry, never spillable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..cfg.dominators import dominance_frontiers
from ..cfg.graph import CFG
from ..cfg.liveness import compute_liveness
from ..ir.iloc import Instr, Op, Reg, jmp, label
from ..resilience import faults
from .form import SSAError, SSAForm, Phi


def normalize_code(code: List[Instr], func_name: str) -> List[Instr]:
    """Return ``code`` with unreachable blocks removed and every critical
    edge split.  Branch instructions are retargeted in place; the caller
    must own the instruction objects (pass clones)."""
    code = _drop_unreachable(code)
    return _split_critical_edges(code, func_name)


def _drop_unreachable(code: List[Instr]) -> List[Instr]:
    cfg = CFG(code)
    reachable: Set[int] = {block.index for block in cfg.reverse_postorder()}
    if len(reachable) == len(cfg.blocks):
        return code
    # Any block following a fall-through block is itself reachable, so
    # removing unreachable blocks never breaks fall-through adjacency.
    keep: List[Instr] = []
    for block in cfg.blocks:
        if block.index in reachable:
            keep.extend(code[block.start : block.end])
    return keep


def _split_critical_edges(code: List[Instr], func_name: str) -> List[Instr]:
    cfg = CFG(code)
    splits: List[Tuple[Instr, str]] = []  # (branch instr, succ label)
    for block in cfg.blocks:
        if len(block.succs) < 2:
            continue
        branch = code[block.end - 1]
        if branch.op is not Op.CBR:  # pragma: no cover - CBR is the only
            continue  # multi-successor terminator
        for succ in block.succs:
            if len(succ.preds) < 2:
                continue
            target = code[succ.start]
            if target.op is not Op.LABEL:
                raise SSAError(
                    f"{func_name}: CBR successor B{succ.index} does not "
                    "start with a label"
                )
            splits.append((branch, target.label))
    if not splits:
        return code

    used = {instr.label for instr in code if instr.op is Op.LABEL}
    counter = 0

    def fresh_label() -> str:
        nonlocal counter
        while True:
            name = f"{func_name}_ssa{counter}"
            counter += 1
            if name not in used:
                used.add(name)
                return name

    out = list(code)
    for branch, target in splits:
        name = fresh_label()
        # Retarget exactly one side of the CBR (if both sides named the
        # same label the edge was not critical: the CFG dedups it).
        if branch.label == target:
            branch.label = name
        elif branch.label_false == target:
            branch.label_false = name
        else:  # pragma: no cover - split applied twice to one side
            raise SSAError(
                f"{func_name}: cannot retarget {branch} away from {target}"
            )
        out.append(label(name))
        out.append(jmp(target))
    return out


def build_ssa(
    code: List[Instr], func_name: str, next_index: Optional[int] = None
) -> SSAForm:
    """Construct pruned SSA over ``code`` (which the call takes ownership
    of — pass freshly cloned instructions)."""
    code = normalize_code(code, func_name)
    max_index = -1
    for instr in code:
        for reg in instr.regs():
            if reg.is_virtual and reg.index > max_index:
                max_index = reg.index
            elif reg.is_physical:
                raise SSAError(
                    f"{func_name}: physical register {reg} in pre-SSA code"
                )
    if next_index is None:
        next_index = max_index + 1

    ssa = SSAForm(func_name, code, next_index)
    cfg = ssa.cfg
    dom = ssa.dom
    frontiers = dominance_frontiers(cfg, dom)
    live = compute_liveness(cfg)

    # --- phi insertion at the pruned iterated dominance frontier -------
    def_blocks: Dict[Reg, Set[int]] = {}
    for block in cfg.blocks:
        for index in block.instr_indices():
            for dst in code[index].defs:
                def_blocks.setdefault(dst, set()).add(block.index)

    phis: Dict[int, List[Phi]] = {}
    phi_regs: Dict[int, Set[Reg]] = {}
    for reg in sorted(def_blocks):
        work = sorted(def_blocks[reg])
        placed: Set[int] = set()
        while work:
            block_index = work.pop()
            for join in sorted(frontiers.get(block_index, ())):
                if join in placed:
                    continue
                if reg not in live.block_live_in[join]:
                    continue  # pruned: dead at the join
                placed.add(join)
                phis.setdefault(join, []).append(Phi(reg, join, reg))
                phi_regs.setdefault(join, set()).add(reg)
                if join not in def_blocks[reg]:
                    work.append(join)
    ssa.phis = phis

    # --- renaming ------------------------------------------------------
    ssa.pre_ssa = [instr.clone() for instr in code]
    stacks: Dict[Reg, List[Reg]] = {}
    undef_for: Dict[Reg, Reg] = {}

    def undef_value(origin: Reg) -> Reg:
        value = undef_for.get(origin)
        if value is None:
            value = ssa.new_value(origin)
            undef_for[origin] = value
            ssa.undef.add(value)
            ssa.unspillable.add(value)
        return value

    def current(origin: Reg, allow_probe: bool) -> Reg:
        stack = stacks.get(origin)
        if not stack:
            return undef_value(origin)
        if (
            allow_probe
            and len(stack) >= 2
            and faults.active() is not None
            and faults.should_fire("ssa.rename.stale-def", func_name)
        ):
            return stack[-2]  # a shadowed, provably killed definition
        return stack[-1]

    children = dom.children()
    blocks = {block.index: block for block in cfg.blocks}
    entry = cfg.entry_block().index

    # Iterative dominator-tree walk; each frame renames one block, fills
    # its successors' phi args, then visits dominated blocks.
    stack: List[Tuple[int, Optional[List[Tuple[Reg, int]]]]] = [(entry, None)]
    while stack:
        block_index, pushed = stack.pop()
        if pushed is not None:
            # Unwind marker: pop this block's definitions.
            for origin, count in pushed:
                del stacks[origin][-count:]
            continue

        block = blocks[block_index]
        pushed_here: Dict[Reg, int] = {}

        def push(origin: Reg, value: Reg) -> None:
            stacks.setdefault(origin, []).append(value)
            pushed_here[origin] = pushed_here.get(origin, 0) + 1

        for phi in phis.get(block_index, ()):
            value = ssa.new_value(phi.origin)
            phi.dest = value
            push(phi.origin, value)
        for index in block.instr_indices():
            instr = code[index]
            if instr.srcs:
                instr.srcs = [
                    current(reg, True) if reg.is_virtual else reg
                    for reg in instr.srcs
                ]
            if instr.dst is not None and instr.dst.is_virtual:
                origin = instr.dst
                value = ssa.new_value(origin)
                instr.dst = value
                push(origin, value)
        for succ in block.succs:
            for phi in phis.get(succ.index, ()):
                phi.args[block_index] = current(phi.origin, False)

        stack.append((block_index, sorted(pushed_here.items())))
        for child in reversed(children.get(block_index, ())):
            stack.append((child, None))

    # A phi fed by an undef argument can never be spilled: removing it
    # would store the undef register in the predecessor (a faulting read
    # the original program never performed) or leave the slot
    # uninitialized on that path (a spill-discipline violation).
    for phi_list in phis.values():
        for phi in phi_list:
            if any(arg in ssa.undef for arg in phi.args.values()):
                ssa.unspillable.add(phi.dest)

    ssa.refresh()
    ssa.check()
    return ssa
