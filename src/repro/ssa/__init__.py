"""Static single assignment over linear iloc code.

The subsystem behind the ``ssaspill`` allocator
(:mod:`repro.regalloc.ssaspill`): SSA construction over the existing CFG
(dominance frontiers, pruned phi insertion, dominator-tree renaming), a
liveness analysis with phi semantics, and a verified out-of-SSA
destruction pass (phi elimination via parallel-copy sequentialization
with explicit lost-copy/swap handling).  The point, per Bouchez, Darte &
Rastello: interference graphs of SSA programs are chordal, so spilling
decouples from coloring — lower MAXLIVE to ``k`` first, then color
greedily along the dominance tree with zero coloring-time spills.
"""

from .construct import build_ssa, normalize_code
from .destruct import DestructResult, destruct
from .form import Phi, SSAError, SSAForm
from .liveness import SSALiveness, ssa_liveness

__all__ = [
    "DestructResult",
    "Phi",
    "SSAError",
    "SSAForm",
    "SSALiveness",
    "build_ssa",
    "destruct",
    "normalize_code",
    "ssa_liveness",
]
