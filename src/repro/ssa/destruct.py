"""Out-of-SSA destruction: phi elimination via parallel-copy
sequentialization.

Each CFG edge into a phi block carries one *parallel copy*: all of the
block's phi destinations receive their incoming arguments at once.
Construction split every critical edge, so each such copy can be
materialized at the end of the predecessor — no edge is shared.

Sequentializing a parallel copy is where lost-copy and swap bugs live.
The worklist below reasons about *locations* (the assigned physical
color when an allocation is provided, the SSA value itself otherwise):

* a move is *ready* when its destination location is no pending move's
  source location — emitting it clobbers nothing still needed;
* when no move is ready the remaining moves form permutation cycles;
  the value occupying the chosen move's destination is saved first
  (to a fresh temporary register before allocation, through a spill
  "shuffle" slot after allocation, when all k registers may be busy),
  and the moves that needed it read the saved copy instead.

Arguments that are *undef* values (no definition reaches the edge) get
no copy at all: materializing one would read an uninitialized register
and fault on paths where the original program never touched the
variable.  The destination simply stays uninitialized, so a genuine
use still faults exactly like the pre-SSA program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ir.iloc import Instr, Reg, Symbol, copy, ldm, stm
from ..resilience import faults
from .form import SSAError, SSAForm


@dataclass
class DestructResult:
    """Destructed linear code plus accounting for telemetry/certs."""

    code: List[Instr]
    #: copies (i2i/ldm/stm) inserted, over all edges
    copies: int = 0
    #: permutation cycles broken
    cycle_breaks: int = 0
    #: shuffle slot names used for allocated cycle breaks
    shuffle_slots: List[str] = field(default_factory=list)
    #: fresh temporaries created for unallocated cycle breaks
    temps: List[Reg] = field(default_factory=list)


class _Move:
    __slots__ = ("dval", "sval", "dloc", "sloc", "slot")

    def __init__(self, dval: Reg, sval: Reg, dloc, sloc):
        self.dval = dval
        self.sval = sval
        self.dloc = dloc
        self.sloc = sloc
        self.slot: Optional[Symbol] = None  # set when redirected to memory


def destruct(
    ssa: SSAForm, assignment: Optional[Dict[Reg, int]] = None
) -> DestructResult:
    """Lower ``ssa`` back to plain linear code.

    With ``assignment`` (SSA value -> color), moves are sequentialized
    at the *color* level — the emitted code stays correct after the
    physical rewrite even though two values sharing a color alias.
    Without it, values are their own locations (the pre-allocation
    round-trip used by tests).
    """
    if assignment is not None:
        missing = [
            value
            for phis in ssa.phis.values()
            for phi in phis
            for value in (phi.dest, *phi.args.values())
            if value not in assignment
        ]
        if missing:
            raise SSAError(
                f"{ssa.func_name}: phi operands missing from assignment: "
                f"{sorted(set(missing), key=lambda r: r.index)}"
            )

    def loc(value: Reg):
        return assignment[value] if assignment is not None else value

    result = DestructResult(code=[])
    blocks = {block.index: block for block in ssa.cfg.blocks}
    inserted: Dict[int, List[Instr]] = {}

    for succ_index in sorted(ssa.phis):
        phis = ssa.phis[succ_index]
        if not phis:
            continue
        succ = blocks[succ_index]
        for pred in succ.preds:
            if len(pred.succs) != 1:
                raise SSAError(
                    f"{ssa.func_name}: critical edge B{pred.index}->"
                    f"B{succ_index} survived construction"
                )
            window = _sequentialize(ssa, phis, pred.index, loc, result)
            if window:
                inserted.setdefault(pred.index, []).extend(window)

    out: List[Instr] = []
    code = ssa.code
    for block in ssa.cfg.blocks:
        end = block.end
        window = inserted.get(block.index, ())
        if not window:
            out.extend(code[block.start : end])
            continue
        has_term = end > block.start and code[end - 1].is_branch
        split = end - 1 if has_term else end
        out.extend(code[block.start : split])
        out.extend(window)
        out.extend(code[split:end])
    result.code = out
    return result


def _sequentialize(
    ssa: SSAForm,
    phis,
    pred_index: int,
    loc,
    result: DestructResult,
) -> List[Instr]:
    pending: List[_Move] = []
    out: List[Instr] = []
    for phi in phis:
        arg = phi.args[pred_index]
        if arg in ssa.undef:
            continue  # leave the destination uninitialized, like pre-SSA
        if loc(phi.dest) == loc(arg):
            # Location-identical move: the register already holds the
            # value, so this can go first (it clobbers nothing) — but it
            # is emitted rather than dropped so the destination keeps a
            # definition at the virtual level.  After the physical
            # rewrite it becomes a same-register copy and is deleted.
            out.append(copy(arg, phi.dest))
            result.copies += 1
            continue
        pending.append(_Move(phi.dest, arg, loc(phi.dest), loc(arg)))

    while pending:
        src_locs = {
            move.sloc for move in pending if move.slot is None
        }
        move = next(
            (m for m in pending if m.dloc not in src_locs), None
        )
        if move is not None:
            if move.slot is not None:
                out.append(ldm(move.slot, move.dval))
            else:
                out.append(copy(move.sval, move.dval))
            result.copies += 1
            pending.remove(move)
            continue

        # Every remaining move is part of a permutation cycle.  Save the
        # value occupying the first move's destination, then retry.
        move = pending[0]
        blockers = [
            m for m in pending if m.slot is None and m.sloc == move.dloc
        ]
        result.cycle_breaks += 1
        if faults.active() is not None and faults.should_fire(
            "ssa.destruct.lost-copy", ssa.func_name
        ):
            # Injected lost-copy bug: emit the clobbering move without
            # saving what its destination held.  The blocked moves then
            # read a location that no longer holds their value.
            out.append(copy(move.sval, move.dval))
            result.copies += 1
            pending.remove(move)
            continue
        saved = blockers[0].sval
        if isinstance(move.dloc, int):
            slot = Symbol(
                f"{ssa.func_name}.{saved}.swap{len(result.shuffle_slots)}",
                "spill",
            )
            result.shuffle_slots.append(slot.name)
            out.append(stm(slot, saved))
            result.copies += 1
            for blocked in blockers:
                blocked.slot = slot
        else:
            temp = ssa.new_value(ssa.origin.get(saved, saved))
            ssa.unspillable.add(temp)
            result.temps.append(temp)
            out.append(copy(saved, temp))
            result.copies += 1
            for blocked in blockers:
                blocked.sval = temp
                blocked.sloc = temp
    return out
