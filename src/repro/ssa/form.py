"""The SSA IR wrapper: phi nodes plus renamed linear code.

``SSAForm`` is not a new instruction set.  The linear ``Instr`` list is
ordinary iloc renamed in place; phi nodes live alongside it in a
per-block side table, keyed by the CFG block index.  That keeps every
downstream consumer (liveness, the spiller, destruction) working over
the same ``cfg``/``iloc`` machinery as the other allocators, and means
out-of-SSA destruction only has to delete the side table and insert
copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..cfg.dominators import DominatorTree
from ..cfg.graph import CFG
from ..ir.iloc import Instr, Reg, vreg


class SSAError(RuntimeError):
    """Raised when SSA construction or destruction cannot proceed."""


@dataclass
class Phi:
    """A phi node at the top of block ``block``: ``dest = phi(args)``.

    ``args`` maps *predecessor block index* to the SSA value flowing in
    along that edge.  ``origin`` is the pre-SSA register the phi merges.
    """

    dest: Reg
    block: int
    origin: Reg
    args: Dict[int, Reg] = field(default_factory=dict)

    def clone(self) -> "Phi":
        return Phi(self.dest, self.block, self.origin, dict(self.args))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"B{pred}:{value}" for pred, value in sorted(self.args.items())
        )
        return f"{self.dest} = phi({parts})"


# Def-site kinds stored in SSAForm.def_site.
DEF_INSTR = "instr"  # (DEF_INSTR, position in code)
DEF_PHI = "phi"  # (DEF_PHI, block index)
DEF_ENTRY = "entry"  # (DEF_ENTRY, -1): undef value, live from entry


class SSAForm:
    """Linear iloc code in SSA form plus the phi side table.

    Mutating passes (the spiller) insert plain instructions into
    ``code`` and must call :meth:`refresh` afterwards; block indices
    stay stable because insertions never add labels or branches.
    """

    def __init__(self, func_name: str, code: List[Instr], next_index: int):
        self.func_name = func_name
        self.code = code
        self.phis: Dict[int, List[Phi]] = {}
        #: SSA value -> the pre-SSA register it renames.
        self.origin: Dict[Reg, Reg] = {}
        #: SSA value -> (kind, position/block) of its unique definition.
        self.def_site: Dict[Reg, Tuple[str, int]] = {}
        #: Values that may not be spilled (spill temps, undef values).
        self.unspillable: Set[Reg] = set()
        #: Values with no definition (use before def on some path).
        self.undef: Set[Reg] = set()
        #: Aligned clone of ``code`` taken just before renaming; position
        #: ``i`` here is the pre-SSA image of ``code[i]`` at construction
        #: time (renaming never inserts or deletes instructions).
        self.pre_ssa: List[Instr] = []
        self._next_index = next_index
        self.cfg = CFG(code)
        self.dom = DominatorTree(self.cfg)

    # ------------------------------------------------------------------
    # value management

    def new_value(self, origin: Reg) -> Reg:
        value = vreg(self._next_index)
        self._next_index += 1
        self.origin[value] = origin
        return value

    @property
    def next_index(self) -> int:
        return self._next_index

    def values(self) -> List[Reg]:
        """Every SSA value, in index order."""
        return sorted(self.origin, key=lambda reg: reg.index)

    def phi_dests(self, block_index: int) -> Set[Reg]:
        return {phi.dest for phi in self.phis.get(block_index, ())}

    # ------------------------------------------------------------------
    # structure maintenance

    def refresh(self) -> None:
        """Recompute CFG, dominators, and instruction def positions after
        ``code`` was mutated.  Phi block indices survive because the
        spiller only inserts non-label, non-branch instructions."""
        self.cfg = CFG(self.code)
        self.dom = DominatorTree(self.cfg)
        site: Dict[Reg, Tuple[str, int]] = {}
        for value in self.undef:
            site[value] = (DEF_ENTRY, -1)
        for block_index, phis in self.phis.items():
            for phi in phis:
                site[phi.dest] = (DEF_PHI, block_index)
        for position, instr in enumerate(self.code):
            for dst in instr.defs:
                if dst in site:
                    raise SSAError(
                        f"{self.func_name}: value {dst} defined more than once"
                    )
                site[dst] = (DEF_INSTR, position)
        self.def_site = site

    def clone_phis(self) -> Dict[int, List[Phi]]:
        return {
            block: [phi.clone() for phi in phis]
            for block, phis in self.phis.items()
        }

    def check(self) -> None:
        """Structural SSA invariants; raises :class:`SSAError`.

        This is the subsystem's own cheap self-check (single defs, phi
        arity, known values).  The independent post-allocation recheck
        lives in :mod:`repro.resilience.validators`.
        """
        blocks = {block.index: block for block in self.cfg.blocks}
        for block_index, phis in self.phis.items():
            block = blocks.get(block_index)
            if block is None:
                raise SSAError(
                    f"{self.func_name}: phi block B{block_index} does not exist"
                )
            pred_indices = {pred.index for pred in block.preds}
            for phi in phis:
                if set(phi.args) != pred_indices:
                    raise SSAError(
                        f"{self.func_name}: phi {phi.dest} arity mismatch in "
                        f"B{block_index}: args for {sorted(phi.args)} vs "
                        f"preds {sorted(pred_indices)}"
                    )
                for value in phi.args.values():
                    if value.is_virtual and value not in self.origin:
                        raise SSAError(
                            f"{self.func_name}: phi arg {value} is not an SSA value"
                        )
        for instr in self.code:
            for reg in instr.regs():
                if reg.is_virtual and reg not in self.origin:
                    raise SSAError(
                        f"{self.func_name}: register {reg} in '{instr}' is not "
                        "an SSA value"
                    )
        # Every non-undef value has exactly one def site (refresh raised
        # on duplicates; here we catch values with none at all).
        for value in self.origin:
            if value not in self.def_site:
                raise SSAError(
                    f"{self.func_name}: value {value} has no definition"
                )

    def block_of_def(self, value: Reg) -> Optional[int]:
        """Block index containing ``value``'s definition (entry block for
        undef values)."""
        kind, where = self.def_site[value]
        if kind == DEF_PHI:
            return where
        if kind == DEF_ENTRY:
            return self.cfg.entry_block().index
        block = self.cfg.block_at[where]
        return block.index if block is not None else None
