#!/usr/bin/env python3
"""Rebuilds the paper's Figure 1: the PDG of the running example.

Prints the hierarchical region tree and emits Graphviz DOT (render with
``dot -Tpng figure1.dot -o figure1.png`` if graphviz is installed).

Run:  python examples/figure1_pdg.py [output.dot]
"""

import sys

from repro.compiler import compile_source
from repro.ir.printer import format_function
from repro.pdg.datadeps import region_level_dependences
from repro.pdg.dot import to_dot
from repro.pdg.liveness import FunctionAnalysis

# The program of Figure 1:
#   1: i := 1
#   2: while (i < 10) {
#   3:     j = i + 1
#   4:     if (j == 7)  5: ...  else  6: ...
#   7:     i = i + 1 }
#   8: ...
SOURCE = """
void example() {
    int i;
    int j;
    i = 1;
    while (i < 10) {
        j = i + 1;
        if (j == 7) { print(5); } else { print(6); }
        i = i + 1;
    }
    print(i);
}
"""


def main() -> None:
    func = compile_source(SOURCE).module.functions["example"]

    print("=== Region hierarchy (control dependence) ===")
    print(format_function(func))

    print("\n=== Region-level flow dependences (Figure 1's arrows) ===")
    analysis = FunctionAnalysis(func)
    for src, dst, kind in sorted(region_level_dependences(func, analysis)):
        marker = " (self-cycle)" if src == dst else ""
        print(f"  {src} -> {dst}  [{kind}]{marker}")

    dot = to_dot(func, include_data_deps=True)
    target = sys.argv[1] if len(sys.argv) > 1 else None
    if target:
        with open(target, "w") as handle:
            handle.write(dot)
        print(f"\nDOT written to {target}")
    else:
        print("\n=== DOT (pass a filename to save) ===")
        print(dot)


if __name__ == "__main__":
    main()
