#!/usr/bin/env python3
"""Demonstrates RAP's headline capability: *local* spilling.

"When it is determined that a variable needs to be spilled within a
region, it may be possible to spill the variable only locally, without
spilling it throughout the program.  For example, a variable may be
assigned to register R1 in one region, register R2 in another region, and
spilled in another region." (paper, §1)

The program below has a high-pressure block in the middle; the variable
``a`` is used before it, inside it, and after it.  GRA (Chaitin-style)
spills ``a`` *everywhere*: every use in the whole procedure goes through
memory.  RAP spills only where the pressure is, keeping ``a`` in a
register elsewhere.

Run:  python examples/local_spilling.py
"""

from repro.compiler import compile_source, param_slots
from repro.interp.machine import FunctionImage, ProgramImage, run_program
from repro.ir.iloc import Op
from repro.regalloc import allocate_gra, allocate_rap

SOURCE = """
void main() {
    int a;
    int i;
    int s;
    a = 42;
    s = a + 1;              /* a used here: low pressure */

    if (s > 0) {            /* high-pressure region */
        int p; int q; int r; int t; int u;
        p = 1; q = 2; r = 3; t = 4; u = 5;
        print(p + q + r + t + u);
        print(p * q - r * t + u);
        print(a + p);       /* a used under pressure */
    }

    for (i = 0; i < 8; i = i + 1) {
        s = s + a;          /* a used here: low pressure again */
    }
    print(s);
    print(a);
}
"""


def spill_traffic(code, name):
    loads = sum(
        1
        for instr in code
        if instr.op is Op.LDM and f"{name}.%v" in instr.addr.name
    )
    stores = sum(
        1
        for instr in code
        if instr.op is Op.STM and f"{name}.%v" in instr.addr.name
    )
    return loads, stores


def main() -> None:
    k = 4
    program = compile_source(SOURCE)
    reference = run_program(program.reference_image())

    for label, allocator in (("GRA", allocate_gra), ("RAP", allocate_rap)):
        module = program.fresh_module()
        result = allocator(module.functions["main"], k)
        image = ProgramImage(
            list(module.globals.values()),
            {"main": FunctionImage("main", result.code, param_slots(module.functions["main"]))},
        )
        stats = run_program(image)
        assert stats.output == reference.output
        static_loads, static_stores = spill_traffic(result.code, "main")
        print(f"{label} (k={k}):")
        print(f"  spilled registers      : {result.spilled}")
        print(f"  static spill loads/sts : {static_loads}/{static_stores}")
        print(
            f"  executed cycles        : {stats.total.cycles} "
            f"(loads={stats.total.loads}, stores={stats.total.stores})"
        )
        if hasattr(result, "spill_log") and result.spill_log:
            regions = sorted({region for region, _ in result.spill_log})
            print(f"  spill decisions taken in regions: {', '.join(regions)}")
        print()


if __name__ == "__main__":
    main()
