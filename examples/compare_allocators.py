#!/usr/bin/env python3
"""Head-to-head: GRA vs RAP on a register-hungry matrix kernel.

Sweeps register-set sizes 3..9 (the paper's Table 1 range) and prints the
executed-cycle comparison with the load/store/copy decomposition, plus the
effect of adding the coalescing extension to both allocators.

Run:  python examples/compare_allocators.py
"""

from repro.compiler import compile_source, param_slots
from repro.interp.machine import FunctionImage, ProgramImage, run_program
from repro.regalloc import allocate_gra, allocate_rap
from repro.regalloc.coalesce import coalesce_function

SOURCE = """
float a[16][16];
float b[16][16];
float c[16][16];

void fill() {
    int i;
    int j;
    for (i = 0; i < 12; i = i + 1) {
        for (j = 0; j < 12; j = j + 1) {
            a[i][j] = 0.5 * i + j;
            b[i][j] = 0.25 * j - i;
        }
    }
}

float matmul(int n) {
    int i;
    int j;
    int k;
    float sum;
    for (i = 0; i < n; i = i + 1) {
        for (j = 0; j < n; j = j + 1) {
            sum = 0.0;
            for (k = 0; k < n; k = k + 1) {
                sum = sum + a[i][k] * b[k][j];
            }
            c[i][j] = sum;
        }
    }
    return c[n - 1][n - 1];
}

void main() {
    fill();
    print(matmul(12));
}
"""


def measure(program, allocator, k, coalesce=False):
    module = program.fresh_module()
    functions = {}
    for name, func in module.functions.items():
        if coalesce:
            coalesce_function(func, k)
        result = allocator(func, k)
        functions[name] = FunctionImage(name, result.code, param_slots(func))
    image = ProgramImage(list(module.globals.values()), functions)
    return run_program(image)


def main() -> None:
    program = compile_source(SOURCE)
    reference = run_program(program.reference_image())
    print(f"reference: output={reference.output} cycles={reference.total.cycles}\n")

    header = (
        f"{'k':>2} | {'GRA cycles':>10} {'ld':>6} {'st':>5} {'cp':>5} |"
        f" {'RAP cycles':>10} {'ld':>6} {'st':>5} {'cp':>5} | {'RAP vs GRA':>10}"
    )
    print(header)
    print("-" * len(header))
    for k in (3, 4, 5, 6, 7, 8, 9):
        gra = measure(program, allocate_gra, k)
        rap = measure(program, allocate_rap, k)
        assert gra.output == reference.output
        assert rap.output == reference.output
        gain = 100.0 * (gra.total.cycles - rap.total.cycles) / gra.total.cycles
        print(
            f"{k:>2} | {gra.total.cycles:>10} {gra.total.loads:>6}"
            f" {gra.total.stores:>5} {gra.total.copies:>5} |"
            f" {rap.total.cycles:>10} {rap.total.loads:>6}"
            f" {rap.total.stores:>5} {rap.total.copies:>5} |"
            f" {gain:>+9.1f}%"
        )

    print("\nWith the coalescing extension (the paper's future work), k=5:")
    for name, allocator in (("GRA", allocate_gra), ("RAP", allocate_rap)):
        plain = measure(program, allocator, 5)
        coalesced = measure(program, allocator, 5, coalesce=True)
        print(
            f"  {name}: copies {plain.total.copies} -> "
            f"{coalesced.total.copies}, cycles {plain.total.cycles} -> "
            f"{coalesced.total.cycles}"
        )


if __name__ == "__main__":
    main()
