#!/usr/bin/env python3
"""Rebuilds the paper's Figure 3: interference-graph construction for a
region, step by step.

The scenario:

    S1: a = b             -- the parent region R1's own code
    S2: c = a + c
    if (P)
        S3: a = b + c     -- subregion R2
    else {
        S4: e = 10        -- subregion R3
        S5: a = e
        S6: a = a + b
    }

plus a register ``d`` that is live through the region but never referenced
in it.  The script prints each graph the paper draws: the subregion graphs
after their own allocation (with R3 combining ``a`` and ``e``), the parent
graph (with ``d`` deliberately absent), and the final merged region graph.

Run:  python examples/figure3_conflicts.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tests"))

from regalloc_rap.test_figure3 import (  # noqa: E402
    A,
    B,
    C,
    D,
    E,
    P,
    allocate_subregions,
    build_figure3,
)

from repro.pdg.liveness import FunctionAnalysis  # noqa: E402
from repro.regalloc.interference import InterferenceGraph  # noqa: E402
from repro.regalloc.rap.conflicts import (  # noqa: E402
    add_region_conflicts,
    add_subregion_conflicts,
)

NAMES = {A: "a", B: "b", C: "c", D: "d", E: "e", P: "P"}


def show(graph, title):
    print(f"\n{title}")
    for node in sorted(graph.nodes, key=lambda n: min(n.members)):
        members = "{" + ",".join(sorted(NAMES.get(r, str(r)) for r in node.members)) + "}"
        neighbors = sorted(
            "{" + ",".join(sorted(NAMES.get(r, str(r)) for r in n.members)) + "}"
            for n in node.adj
        )
        print(f"  {members:<10} -- {', '.join(neighbors) if neighbors else '(no conflicts)'}")


def main() -> None:
    func, r1, r2, r3 = build_figure3()
    ctx = allocate_subregions(func, r1, k=3)

    show(ctx.sub_graphs[id(r2)], "(a) combined graph of R2 (then branch):")
    print("      note: a and b stay apart — both are global to R2")
    show(ctx.sub_graphs[id(r3)], "(b) combined graph of R3 (else branch):")
    print("      note: a and e were colored together and combined")

    analysis = ctx.analysis()
    parent = InterferenceGraph()
    add_region_conflicts(r1, parent, analysis)
    show(parent, "(c) parent region R1's own conflicts:")
    print("      note: d is live through R1 but NOT a node — referenced")
    print("      registers get coloring priority (the paper's d rule)")

    add_subregion_conflicts(r1, parent, ctx.sub_graphs, analysis)
    show(parent, "(d) full region graph after merging the subregions:")
    print(f"\n      d in the region graph? {D in parent}  (enforced one level up)")


if __name__ == "__main__":
    main()
