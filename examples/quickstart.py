#!/usr/bin/env python3
"""Quickstart: compile a Mini-C program, allocate registers with RAP, and
compare against the unallocated reference execution.

Run:  python examples/quickstart.py
"""

from repro.compiler import compile_source, param_slots
from repro.interp.machine import FunctionImage, ProgramImage, run_program
from repro.ir.printer import format_code
from repro.regalloc import allocate_rap

SOURCE = """
int data[32];

int sum_squares(int n) {
    int i;
    int total;
    total = 0;
    for (i = 0; i < n; i = i + 1) {
        data[i] = i * i;
        total = total + data[i];
    }
    return total;
}

void main() {
    print(sum_squares(10));
}
"""


def main() -> None:
    # 1. Compile: Mini-C -> PDG with attached iloc (virtual registers).
    program = compile_source(SOURCE)

    # 2. The reference execution uses the infinite virtual register file.
    reference = run_program(program.reference_image())
    print(f"reference output : {reference.output}")
    print(f"reference cycles : {reference.total.cycles}")

    # 3. Allocate with RAP for a 4-register machine.
    module = program.fresh_module()
    functions = {}
    for name, func in module.functions.items():
        result = allocate_rap(func, k=4)
        functions[name] = FunctionImage(name, result.code, param_slots(func))
        print(
            f"\n{name}: spilled={result.spilled} "
            f"hoisted={len(result.motion.hoisted_slots)} "
            f"peephole_rewrites={result.peephole.total}"
        )

    # 4. Run the allocated program; behaviour is identical, and the
    #    counters show what allocation cost/saved.
    image = ProgramImage(list(module.globals.values()), functions)
    stats = run_program(image)
    assert stats.output == reference.output
    print(f"\nallocated output : {stats.output}")
    print(
        f"allocated cycles : {stats.total.cycles} "
        f"(loads={stats.total.loads}, stores={stats.total.stores}, "
        f"copies={stats.total.copies})"
    )

    # 5. Peek at the final code of sum_squares.
    print("\nallocated sum_squares:")
    print(format_code(functions["sum_squares"].code))


if __name__ == "__main__":
    main()
