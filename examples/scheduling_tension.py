#!/usr/bin/env python3
"""The phase-ordering tension behind the paper's research program.

§1: "Our original motivation for building a register allocator based on
the PDG was to have a common program representation for both the register
allocator and global instruction scheduler, as a first step towards
integrating these two phases."

This example makes that tension measurable with the local-scheduling
substrate: a dot-product kernel is allocated with few and with many
registers, then list-scheduled on an in-order pipeline with 3-cycle loads.
With few registers the allocator reuses registers aggressively, creating
anti/output dependences that the scheduler cannot break — the best
schedule gets longer.

Run:  python examples/scheduling_tension.py
"""

from repro.compiler import compile_source, param_slots
from repro.regalloc import allocate_gra, allocate_rap
from repro.sched import LatencyModel, schedule_code

SOURCE = """
float x[64];
float y[64];

float dot(int n) {
    int i;
    float s;
    s = 0.0;
    for (i = 0; i < n; i = i + 1) {
        s = s + x[i] * y[i];
    }
    return s;
}

void main() {
    int i;
    for (i = 0; i < 64; i = i + 1) { x[i] = i; y[i] = 64 - i; }
    print(dot(48));
}
"""


def main() -> None:
    model = LatencyModel()
    program = compile_source(SOURCE)

    print(f"{'alloc':>6} {'k':>3} | {'unscheduled':>11} | {'scheduled':>9} | gain")
    print("-" * 48)
    for label, allocator in (("GRA", allocate_gra), ("RAP", allocate_rap)):
        for k in (3, 4, 6, 16):
            module = program.fresh_module()
            before = after = 0
            for func in module.functions.values():
                result = allocator(func, k)
                _, report = schedule_code(result.code, model)
                before += report.length_before
                after += report.length_after
            gain = 100.0 * (before - after) / before
            print(f"{label:>6} {k:>3} | {before:>11} | {after:>9} | {gain:4.1f}%")
    print(
        "\nFewer registers -> more register reuse -> more anti/output\n"
        "dependences -> longer schedules even after list scheduling."
    )


if __name__ == "__main__":
    main()
