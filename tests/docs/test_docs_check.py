"""Docs stay honest: every intra-repo link resolves, and every ``--flag``
a doc mentions exists in some ``--help``.

This is the doc-drift tripwire behind the CI ``docs-check`` step.  The
known-flag universe is built from the *real* parsers — ``repro.cli``'s
argparse tree (recursively, through its subcommands), the five service
parser factories (``serve``/``router``/``request``/``loadgen``/
``router-admin`` bypass argparse dispatch in the CLI), and the
``--help`` text of the
``repro.bench`` entry points — so renaming or deleting a flag without
sweeping the docs fails here, not in a user's terminal.
"""

import argparse
import contextlib
import io
import re
from pathlib import Path

import pytest

from repro import cli
from repro.bench import ablations, micro, sweep, table1
from repro.service.admin import build_admin_parser
from repro.service.client import build_request_parser
from repro.service.loadgen import build_loadgen_parser
from repro.service.router import build_router_parser
from repro.service.server import build_serve_parser

REPO = Path(__file__).resolve().parents[2]

#: the documentation surface under check: the README plus everything in
#: docs/, and the two top-level record documents the README links to.
DOC_FILES = sorted(
    [REPO / "README.md", REPO / "DESIGN.md", REPO / "EXPERIMENTS.md"]
    + list((REPO / "docs").glob("*.md"))
)

#: flags that belong to tools outside this repository (documented
#: commands like ``pytest benchmarks/ --benchmark-only``).
EXTERNAL_FLAGS = {
    "--benchmark-only",  # pytest-benchmark
}

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FLAG = re.compile(r"(?<![\w-])--[a-z][a-z0-9]*(?:-[a-z0-9]+)*")


def _parser_flags(parser):
    """All ``--long`` option strings of *parser*, subcommands included."""
    flags = set()
    for action in parser._actions:
        flags.update(s for s in action.option_strings if s.startswith("--"))
        if isinstance(action, argparse._SubParsersAction):
            for sub in action.choices.values():
                flags.update(_parser_flags(sub))
    return flags


def _help_flags(main):
    """Flags as printed by an entry point's ``--help``."""
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        with pytest.raises(SystemExit):
            main(["--help"])
    return set(_FLAG.findall(buffer.getvalue()))


def known_flags():
    flags = set(EXTERNAL_FLAGS)
    for factory in (
        cli.build_parser,
        build_serve_parser,
        build_router_parser,
        build_request_parser,
        build_loadgen_parser,
        build_admin_parser,
    ):
        flags |= _parser_flags(factory())
    for entry in (table1.main, sweep.main, ablations.main, micro.main):
        flags |= _help_flags(entry)
    return flags


@pytest.fixture(scope="module")
def flag_universe():
    return known_flags()


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=[str(d.relative_to(REPO)) for d in DOC_FILES]
)
class TestDoc:
    def test_intra_repo_links_resolve(self, doc):
        broken = []
        for target in _LINK.findall(doc.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if not path:  # pure fragment, same-page anchor
                continue
            if not (doc.parent / path).exists():
                broken.append(target)
        assert not broken, f"{doc.name}: broken links {broken}"

    def test_mentioned_flags_exist(self, doc, flag_universe):
        mentioned = set(_FLAG.findall(doc.read_text(encoding="utf-8")))
        unknown = mentioned - flag_universe
        assert not unknown, (
            f"{doc.name} mentions flags absent from every --help: "
            f"{sorted(unknown)}"
        )


class TestUniverse:
    def test_universe_is_plausible(self, flag_universe):
        # a canary per parser source, so a silent enumeration failure
        # (refactored factory, renamed entry point) is caught here
        # rather than by the doc tests vacuously passing.
        for canary in (
            "--profile",        # cli table1 subparser
            "--persist-dir",    # serve factory
            "--backend",        # router factory
            "--retries",        # request factory
            "--saturate",       # loadgen factory
            "--expect-generation",  # router-admin factory
            "--jobs",           # bench --help
        ):
            assert canary in flag_universe, canary

    def test_doc_surface_is_complete(self):
        names = {doc.name for doc in DOC_FILES}
        assert {
            "README.md",
            "ARCHITECTURE.md",
            "SERVICE.md",
            "OPERATIONS.md",
            "BENCHMARKING.md",
            "ROBUSTNESS.md",
        } <= names
