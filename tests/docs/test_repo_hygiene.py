"""Repository hygiene tripwires.

Bytecode caches were once committed by accident (58 ``.pyc`` files under
``src/**/__pycache__/``); they churned every diff and could shadow
edited sources in subtle ways.  This test fails the build if any tracked
``.pyc``/``__pycache__`` entry reappears, and pins the ``.gitignore``
rules that keep them out.
"""

import subprocess
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


def _tracked_files():
    proc = subprocess.run(
        ["git", "ls-files"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        pytest.skip("not a git checkout")
    return proc.stdout.splitlines()


class TestNoTrackedBytecode:
    def test_no_pyc_or_pycache_is_tracked(self):
        offenders = [
            path
            for path in _tracked_files()
            if path.endswith((".pyc", ".pyo")) or "__pycache__" in path
        ]
        assert not offenders, (
            "bytecode committed to git (remove with `git rm --cached`): "
            f"{offenders[:10]}"
        )

    def test_gitignore_covers_bytecode_and_scratch(self):
        rules = (REPO / ".gitignore").read_text().split()
        for required in ("__pycache__/", "*.pyc", ".pytest_cache/"):
            assert required in rules, required
